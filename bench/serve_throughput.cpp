//===- bench/serve_throughput.cpp - Serving layer latency harness ---------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Measures what the serving layer buys: end-to-end request latency cold
// (dataset load + inspector schedules + kernel) versus warm (cache hit,
// schedules reused, kernel only).  The paper amortizes inspector cost
// across iterations of one run; the dataset cache extends that across
// requests, so a warm request should be dominated by kernel time alone.
//
// Part 1 reports cold/warm latency and the speedup for pagerank and
// sssp, one JSON line each.  Part 2 drives a sustained sequence of mixed
// requests across four applications through one Service instance and
// reports aggregate throughput plus the cache counters.  Part 3 is the
// overload contrast: the same burst of concurrent traffic against a
// small queue, once with shedding disabled and once with the queue
// watermark at 50%, reporting admitted-request p50/p95/p99 and the
// shed/rejected split -- the numbers behind "shedding trades a little
// goodput for bounded tail latency".
//
//   $ bench/serve_throughput
//   {"bench":"serve_cold_warm","app":"pagerank",...,"speedup":57.1}
//   {"bench":"serve_cold_warm","app":"sssp",...,"speedup":21.9}
//   {"bench":"serve_sustained","requests":120,...}
//   {"bench":"serve_overload","shedding":false,...,"p99_seconds":...}
//   {"bench":"serve_overload","shedding":true,...,"p99_seconds":...}
//
// Every line is one JSON object, so scripts/bench_collect.sh can fold
// the whole run into BENCH_<rev>.json unmodified.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "service/Service.h"
#include "util/Timer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace cfv;
using namespace cfv::service;

namespace {

ServeRequest makeRequest(const std::string &App, const std::string &Dataset,
                         double Scale, int Iters) {
  ServeRequest R;
  R.App = App;
  R.Dataset = Dataset;
  R.Scale = Scale;
  R.Iters = Iters;
  return R;
}

/// Submits \p R and returns end-to-end wall latency; aborts on errors so
/// the bench never reports numbers for failed work.
double timedRequest(Service &Svc, const ServeRequest &R, ServeResponse *Out) {
  WallTimer T;
  const ServeResponse Resp = Svc.submit(R).get();
  const double Seconds = T.seconds();
  if (!Resp.Ok) {
    std::fprintf(stderr, "error: %s %s: %s\n", R.App.c_str(),
                 R.Dataset.c_str(), Resp.Error.toString().c_str());
    std::exit(1);
  }
  if (Out)
    *Out = Resp;
  return Seconds;
}

/// Cold-vs-warm latency for one app: a fresh Service per app so the
/// first request pays the full load, then the same request again.  Few
/// kernel iterations keep the load dominant, the serving-relevant
/// regime.
void coldWarm(const std::string &App, double Scale) {
  Service::Config C;
  C.CacheBytes = 0; // unlimited; eviction is the cache test's business
  Service Svc(C);

  const ServeRequest R = makeRequest(App, "higgs-twitter-sim", Scale, 2);
  ServeResponse Cold, Warm;
  const double ColdSeconds = timedRequest(Svc, R, &Cold);
  const double WarmSeconds = timedRequest(Svc, R, &Warm);

  std::printf("{\"bench\":\"serve_cold_warm\",\"app\":\"%s\","
              "\"scale\":%g,"
              "\"cold_seconds\":%.6f,\"warm_seconds\":%.6f,"
              "\"cold_load_seconds\":%.6f,\"warm_load_seconds\":%.6f,"
              "\"warm_cache_hit\":%s,\"speedup\":%.2f}\n",
              App.c_str(), Scale, ColdSeconds, WarmSeconds,
              Cold.LoadSeconds, Warm.LoadSeconds,
              Warm.CacheHit ? "true" : "false",
              WarmSeconds > 0.0 ? ColdSeconds / WarmSeconds : 0.0);
  std::fflush(stdout);
}

/// A sustained mixed-app sequence through one warm service: the steady
/// state a long-lived cfv_serve process reaches.
void sustained(int Requests, double Scale) {
  Service::Config C;
  C.CacheBytes = 0;
  Service Svc(C);

  const std::vector<ServeRequest> Mix = {
      makeRequest("pagerank", "higgs-twitter-sim", Scale, 3),
      makeRequest("sssp", "higgs-twitter-sim", Scale, 0),
      makeRequest("wcc", "soc-pokec-sim", Scale, 0),
      makeRequest("bfs", "amazon0312-sim", Scale, 0),
  };

  WallTimer T;
  double KernelSeconds = 0.0, LoadSeconds = 0.0;
  bench::LatencyRecorder Latency;
  for (int I = 0; I < Requests; ++I) {
    ServeResponse Resp;
    Latency.add(
        timedRequest(Svc, Mix[static_cast<size_t>(I) % Mix.size()], &Resp));
    KernelSeconds += Resp.KernelSeconds;
    LoadSeconds += Resp.LoadSeconds;
  }
  const double Wall = T.seconds();

  const CacheStats S = Svc.cacheStats();
  std::printf("{\"bench\":\"serve_sustained\",\"requests\":%d,"
              "\"apps\":%d,\"scale\":%g,"
              "\"wall_seconds\":%.6f,\"requests_per_second\":%.1f,"
              "\"kernel_seconds\":%.6f,\"load_seconds\":%.6f,"
              "\"p50_seconds\":%.6f,\"p95_seconds\":%.6f,"
              "\"p99_seconds\":%.6f,"
              "\"cache_hits\":%lld,\"cache_misses\":%lld,"
              "\"cache_resident_bytes\":%lld}\n",
              Requests, static_cast<int>(Mix.size()), Scale, Wall,
              Wall > 0.0 ? Requests / Wall : 0.0, KernelSeconds, LoadSeconds,
              Latency.quantile(0.50), Latency.quantile(0.95),
              Latency.quantile(0.99), static_cast<long long>(S.Hits),
              static_cast<long long>(S.Misses),
              static_cast<long long>(S.ResidentBytes));
  std::fflush(stdout);
}

/// The overload contrast: \p Requests submitted with up to 3x the queue
/// depth outstanding, against a deliberately small queue.  With
/// \p ShedQueuePct = 100 shedding never engages (only the hard
/// queue-full bound rejects); at 50 the watermark sheds early and the
/// admitted requests see a short queue.  Latencies are recorded for
/// admitted-and-completed requests only -- the tail the caller actually
/// waits on.
void overload(int Requests, double Scale, int ShedQueuePct) {
  Service::Config C;
  C.CacheBytes = 0;
  C.QueueDepth = 16;
  C.Workers = 2;
  C.ShedQueuePct = ShedQueuePct;
  C.ShedLatencyMs = 0.0;
  Service Svc(C);

  const std::vector<ServeRequest> Mix = {
      makeRequest("pagerank", "higgs-twitter-sim", Scale, 3),
      makeRequest("sssp", "higgs-twitter-sim", Scale, 0),
      makeRequest("wcc", "soc-pokec-sim", Scale, 0),
      makeRequest("bfs", "amazon0312-sim", Scale, 0),
  };
  // Warm every dataset first so the burst measures queueing, not load.
  for (const ServeRequest &R : Mix)
    timedRequest(Svc, R, nullptr);

  struct Pending {
    WallTimer T;
    std::future<ServeResponse> F;
  };
  std::vector<Pending> InFlight;
  bench::LatencyRecorder Latency;
  int64_t Ok = 0, Dropped = 0;
  auto reap = [&](Pending &P) {
    const ServeResponse Resp = P.F.get();
    const double Seconds = P.T.seconds();
    if (Resp.Ok) {
      ++Ok;
      Latency.add(Seconds);
    } else {
      ++Dropped; // shed or queue-full; the split comes from Stats below
    }
  };

  WallTimer Wall;
  const size_t MaxInFlight = static_cast<size_t>(3 * C.QueueDepth);
  for (int I = 0; I < Requests; ++I) {
    if (InFlight.size() >= MaxInFlight) {
      reap(InFlight.front()); // FIFO admission: the front resolves first
      InFlight.erase(InFlight.begin());
    }
    Pending P;
    P.F = Svc.submit(Mix[static_cast<size_t>(I) % Mix.size()]);
    InFlight.push_back(std::move(P));
  }
  for (Pending &P : InFlight)
    reap(P);
  const double WallSeconds = Wall.seconds();

  const RequestScheduler::Stats S = Svc.schedulerStats();
  std::printf("{\"bench\":\"serve_overload\",\"shedding\":%s,"
              "\"shed_queue_pct\":%d,\"queue_depth\":%d,\"workers\":%d,"
              "\"requests\":%d,\"scale\":%g,\"ok\":%lld,"
              "\"shed\":%lld,\"rejected\":%lld,"
              "\"wall_seconds\":%.6f,\"goodput_rps\":%.1f,"
              "\"p50_seconds\":%.6f,\"p95_seconds\":%.6f,"
              "\"p99_seconds\":%.6f}\n",
              ShedQueuePct < 100 ? "true" : "false", ShedQueuePct,
              C.QueueDepth, C.Workers, Requests, Scale,
              static_cast<long long>(Ok), static_cast<long long>(S.Shed),
              static_cast<long long>(S.Rejected), WallSeconds,
              WallSeconds > 0.0 ? Ok / WallSeconds : 0.0,
              Latency.quantile(0.50), Latency.quantile(0.95),
              Latency.quantile(0.99));
  std::fflush(stdout);
  (void)Dropped;
}

} // namespace

int main(int Argc, char **Argv) {
  // Fixed small scale by default: the cold/warm contrast is about load
  // amortization, not kernel size.  argv[1] overrides the request count.
  const double Scale = 0.25;
  const int Requests = Argc > 1 ? std::atoi(Argv[1]) : 120;

  coldWarm("pagerank", Scale);
  coldWarm("sssp", Scale);
  sustained(Requests > 0 ? Requests : 120, Scale);
  overload(Requests > 0 ? 2 * Requests : 240, Scale, 100); // shedding off
  overload(Requests > 0 ? 2 * Requests : 240, Scale, 50);  // shedding on
  return 0;
}
