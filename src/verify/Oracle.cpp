//===-- verify/Oracle.cpp - Metamorphic differential oracle ---------------===//

#include "verify/Oracle.h"

#include "core/Api.h"
#include "core/Dispatch.h"
#include "graph/Io.h"
#include "graph/MappedCsr.h"
#include "graph/Prepared.h"
#include "numa/Topology.h"
#include "pattern/Classify.h"
#include "service/Json.h"
#include "service/Service.h"
#include "simd/Ops.h"

#include <cfloat>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <future>

namespace cfv {
namespace verify {

namespace {

//===----------------------------------------------------------------------===//
// Kernel tier: scalar double reference + tolerance model
//===----------------------------------------------------------------------===//

struct Mismatch {
  int64_t Slot = -1;
  double Want = 0.0;
  double Got = 0.0;
};

/// ULP budget for reassociated float sums: the reference is an in-order
/// double fold, so the divergence of any vectorized/privatized association
/// is bounded by the classic |err| <= (depth) * eps * sum(|x_i|) with a
/// small constant margin, plus an absolute floor covering denormal
/// rounding (each partial can be off by a few FLT_TRUE_MIN even when the
/// relative term vanishes).
inline double addToleranceF32(double SumAbs, int64_t Count) {
  return SumAbs * static_cast<double>(FLT_EPSILON) *
             (8.0 + 2.0 * static_cast<double>(Count)) +
         static_cast<double>(Count + 1) * 4.0 *
             static_cast<double>(FLT_TRUE_MIN);
}

/// In-order double-precision reference fold; \p Inexact selects the
/// tolerance compare (float add), everything else must agree as numbers
/// exactly (which deliberately treats -0.0 == +0.0: IEEE min/max are
/// order-dependent on signed zeros, so both are correct answers).
template <typename Op, typename T>
std::optional<Mismatch> compareTyped(const CaseSpec &Spec,
                                     const int32_t *Idx, const T *Payload,
                                     const T *Got, bool Inexact) {
  const int32_t U = Spec.Universe;
  std::vector<double> Ref(static_cast<size_t>(U),
                          static_cast<double>(Op::template identity<T>()));
  std::vector<double> SumAbs(static_cast<size_t>(U), 0.0);
  std::vector<int64_t> Count(static_cast<size_t>(U), 0);
  for (int64_t I = 0; I < Spec.N; ++I) {
    const auto S = static_cast<size_t>(Idx[I]);
    const double V = static_cast<double>(Payload[I]);
    Ref[S] = Op::template apply<double>(Ref[S], V);
    SumAbs[S] += std::fabs(V);
    ++Count[S];
  }
  for (int32_t S = 0; S < U; ++S) {
    const double Want = Ref[static_cast<size_t>(S)];
    const double G = static_cast<double>(Got[S]);
    if (Inexact) {
      const double Tol = addToleranceF32(SumAbs[static_cast<size_t>(S)],
                                         Count[static_cast<size_t>(S)]);
      if (std::fabs(G - Want) > Tol)
        return Mismatch{S, Want, G};
    } else if (!(G == Want)) {
      return Mismatch{S, Want, G};
    }
  }
  return std::nullopt;
}

std::optional<Mismatch> compareF32(const Workload &W, OpKind Op,
                                   const AlignedVector<float> &Got) {
  const int32_t *Idx = W.Idx.data();
  const float *Val = W.Val.data();
  switch (Op) {
  case OpKind::Add:
    return compareTyped<simd::OpAdd, float>(W.Spec, Idx, Val, Got.data(),
                                            /*Inexact=*/true);
  case OpKind::Min:
    return compareTyped<simd::OpMin, float>(W.Spec, Idx, Val, Got.data(),
                                            false);
  case OpKind::Max:
    return compareTyped<simd::OpMax, float>(W.Spec, Idx, Val, Got.data(),
                                            false);
  }
  return std::nullopt;
}

std::optional<Mismatch> compareI32(const Workload &W,
                                   const AlignedVector<int32_t> &Payload,
                                   OpKind Op,
                                   const AlignedVector<int32_t> &Got) {
  const int32_t *Idx = W.Idx.data();
  const int32_t *Val = Payload.data();
  switch (Op) {
  case OpKind::Add:
    return compareTyped<simd::OpAdd, int32_t>(W.Spec, Idx, Val, Got.data(),
                                              false);
  case OpKind::Min:
    return compareTyped<simd::OpMin, int32_t>(W.Spec, Idx, Val, Got.data(),
                                              false);
  case OpKind::Max:
    return compareTyped<simd::OpMax, int32_t>(W.Spec, Idx, Val, Got.data(),
                                              false);
  }
  return std::nullopt;
}

using F32Fn = AlignedVector<float> (*)(Pipeline, OpKind, const Workload &,
                                       int, InjectedBug);
using I32Fn = AlignedVector<int32_t> (*)(Pipeline, OpKind, const Workload &,
                                         int, InjectedBug);

struct KernelBackend {
  const char *Name;
  F32Fn F32;
  I32Fn I32;
};

std::vector<KernelBackend> kernelBackends(const OracleOptions &O) {
  std::vector<KernelBackend> Out;
  Out.push_back({"scalar", &b_scalar::runPipelineF32,
                 &b_scalar::runPipelineI32});
#if CFV_BUILD_AVX2
  if (O.UseAvx2 && core::avx2Available())
    Out.push_back({"avx2", &b_avx2::runPipelineF32,
                   &b_avx2::runPipelineI32});
#endif
#if CFV_BUILD_AVX512
  if (O.UseAvx512 && core::avx512Available())
    Out.push_back({"avx512", &b_avx512::runPipelineF32,
                   &b_avx512::runPipelineI32});
#endif
  (void)O;
  return Out;
}

std::string corpusPathFor(const OracleOptions &O, const OracleFailure &F) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%016" PRIx64, F.Spec.Seed);
  return O.CorpusDir + "/cfv-repro-" + Buf + "-" + F.Where + "-" +
         F.Backend + "-" + F.Pipeline +
         (F.Op.empty() ? std::string() : "-" + F.Op) + ".snap";
}

std::optional<OracleFailure> checkKernels(const Workload &W,
                                          const OracleOptions &O) {
  const AlignedVector<int32_t> IPayload = intPayload(W);
  for (const KernelBackend &KB : kernelBackends(O)) {
    for (int PI = 0; PI < kNumPipelines; ++PI) {
      const auto P = static_cast<Pipeline>(PI);
      for (int OI = 0; OI < kNumOpKinds; ++OI) {
        const auto Op = static_cast<OpKind>(OI);
        for (int Chunks : O.ChunkCounts) {
          for (int FloatPass = 1; FloatPass >= 0; --FloatPass) {
            const bool IsFloat = FloatPass == 1;
            std::optional<Mismatch> M;
            if (IsFloat)
              M = compareF32(W, Op, KB.F32(P, Op, W, Chunks, O.Bug));
            else
              M = compareI32(W, IPayload, Op,
                             KB.I32(P, Op, W, Chunks, O.Bug));
            if (!M)
              continue;

            // A combination disagreed: shrink on exactly that
            // combination, then report the minimal case.
            auto StillFails = [&](const Workload &S) {
              if (IsFloat)
                return compareF32(S, Op, KB.F32(P, Op, S, Chunks, O.Bug))
                    .has_value();
              return compareI32(S, intPayload(S), Op,
                                KB.I32(P, Op, S, Chunks, O.Bug))
                  .has_value();
            };
            Workload Small = shrinkWorkload(W, StillFails);
            std::optional<Mismatch> SM;
            if (IsFloat)
              SM = compareF32(Small, Op,
                              KB.F32(P, Op, Small, Chunks, O.Bug));
            else
              SM = compareI32(Small, intPayload(Small), Op,
                              KB.I32(P, Op, Small, Chunks, O.Bug));
            if (!SM)
              SM = M; // defensive: shrinker guarantees this holds

            OracleFailure F;
            F.Spec = W.Spec;
            F.Where = "kernel";
            F.Pipeline = pipelineName(P);
            F.Backend = KB.Name;
            F.Op = std::string(opKindName(Op)) + (IsFloat ? "_f32" : "_i32");
            F.Chunks = Chunks;
            F.Elements = Small.Spec.N;
            F.Slot = SM->Slot;
            F.Want = SM->Want;
            F.Got = SM->Got;
            F.Detail = "pipeline result disagrees with in-order scalar "
                       "reference beyond the ULP budget";
            if (!O.CorpusDir.empty()) {
              const std::string Path = corpusPathFor(O, F);
              if (writeCorpus(Path, Small).ok())
                F.CorpusPath = Path;
            }
            return F;
          }
        }
      }
    }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Classifier tier: production classifier vs. the naive reference
//===----------------------------------------------------------------------===//

std::optional<OracleFailure> checkClassifier(const Workload &W,
                                             const OracleOptions &O) {
  // The single-scan classifier (pattern::classifyRange) must agree with
  // the std::set/std::map reference the workload was tagged with at
  // generation time; a threshold drift between them is a verification
  // failure even when every kernel still computes the right numbers.
  const pattern::TileClass Got =
      pattern::classifyRange(W.Idx.data(), W.Spec.N).Class;
  if (Got == W.Expected)
    return std::nullopt;

  auto Disagrees = [](const Workload &S) {
    return pattern::classifyRange(S.Idx.data(), S.Spec.N).Class !=
           expectedClass(S.Idx.data(), S.Spec.N);
  };
  const Workload Small = shrinkWorkload(W, Disagrees);
  OracleFailure F;
  F.Spec = W.Spec;
  F.Where = "classifier";
  F.Pipeline = "classify";
  F.Backend = "scalar";
  F.Elements = Small.Spec.N;
  F.Detail = std::string("pattern classifier says ") +
             pattern::tileClassName(Got) +
             " but the naive reference says " +
             pattern::tileClassName(W.Expected);
  if (!O.CorpusDir.empty()) {
    const std::string Path = corpusPathFor(O, F);
    if (writeCorpus(Path, Small).ok())
      F.CorpusPath = Path;
  }
  return F;
}

//===----------------------------------------------------------------------===//
// System tier: cfv::run differential over the lifted graph
//===----------------------------------------------------------------------===//

bool systemValuesAgree(float A, float B, bool Exact) {
  if (std::isinf(A) || std::isinf(B))
    return A == B;
  if (Exact)
    return A == B;
  const double Da = static_cast<double>(A), Db = static_cast<double>(B);
  const double Mag = std::max(std::fabs(Da), std::fabs(Db));
  return std::fabs(Da - Db) <= 1e-5 + 1e-4 * Mag;
}

OracleFailure systemFailure(const Workload &W, const std::string &Tag,
                            const std::string &Backend,
                            const std::string &Detail) {
  OracleFailure F;
  F.Spec = W.Spec;
  F.Where = "system";
  F.Pipeline = Tag;
  F.Backend = Backend;
  F.Elements = W.Spec.N;
  F.Detail = Detail;
  return F;
}

std::optional<OracleFailure> checkSystem(const Workload &W,
                                         const OracleOptions &O) {
  if (W.Spec.N == 0)
    return std::nullopt;
  const graph::EdgeList G = toEdgeList(W, /*Weighted=*/true);

  struct SysApp {
    AppId App;
    std::vector<AppVersion> Versions;
    int Iters;
    bool Exact;
  };
  const SysApp Apps[] = {
      {AppId::PageRank,
       {AppVersion::TilingSerial, AppVersion::Grouping, AppVersion::Mask,
        AppVersion::Invec},
       3,
       false},
      {AppId::Sssp,
       {AppVersion::Mask, AppVersion::Invec, AppVersion::Grouping},
       0,
       true},
      {AppId::Spmv,
       {AppVersion::CsrSerial, AppVersion::Mask, AppVersion::Invec,
        AppVersion::Grouping},
       0,
       false},
  };

  std::vector<core::BackendChoice> BackendChoices = {
      core::BackendChoice::Scalar};
  if (O.UseAvx2 && core::avx2Available())
    BackendChoices.push_back(core::BackendChoice::Avx2);
  if (O.UseAvx512 && core::avx512Available())
    BackendChoices.push_back(core::BackendChoice::Avx512);

  for (const SysApp &A : Apps) {
    AppRequest Ref;
    Ref.App = A.App;
    Ref.Version = AppVersion::Serial;
    Ref.Options.Backend = core::BackendChoice::Scalar;
    Ref.Options.Threads = 1;
    Ref.Options.MaxIterations = A.Iters;
    Ref.Graph = &G;
    Ref.Source = 0;
    Expected<AppResult> RefRes = cfv::run(Ref);
    if (!RefRes)
      return systemFailure(W, std::string(appIdName(A.App)) + "/serial",
                           "scalar",
                           "reference run rejected: " +
                               RefRes.status().message());

    for (AppVersion V : A.Versions) {
      for (core::BackendChoice BC : BackendChoices) {
        for (int Threads : {1, 2}) {
          AppRequest R = Ref;
          R.Version = V;
          R.Options.Backend = BC;
          R.Options.Threads = Threads;
          Expected<AppResult> Res = cfv::run(R);
          const std::string BackTag =
              std::string(BC == core::BackendChoice::Avx512  ? "avx512"
                          : BC == core::BackendChoice::Avx2 ? "avx2"
                                                            : "scalar") +
              "/t" + std::to_string(Threads);
          if (!Res)
            return systemFailure(
                W, std::string(appIdName(A.App)) + "/?", BackTag,
                "run rejected: " + Res.status().message());
          const std::string Tag =
              std::string(appIdName(A.App)) + "/" + Res->VersionName;
          if (Res->Values.size() != RefRes->Values.size())
            return systemFailure(W, Tag, BackTag,
                                 "result size disagrees with serial run");
          for (size_t I = 0; I < Res->Values.size(); ++I) {
            if (!systemValuesAgree(Res->Values[I], RefRes->Values[I],
                                   A.Exact)) {
              OracleFailure F = systemFailure(
                  W, Tag, BackTag,
                  "values disagree with the serial scalar run");
              F.Slot = static_cast<int64_t>(I);
              F.Want = RefRes->Values[I];
              F.Got = Res->Values[I];
              if (!O.CorpusDir.empty()) {
                const std::string Path = corpusPathFor(O, F);
                if (writeCorpus(Path, W).ok())
                  F.CorpusPath = Path;
              }
              return F;
            }
          }
        }
      }
    }
  }

  // Pattern on-vs-off leg: the specialized per-class kernels must be
  // numerically interchangeable with the adaptive path they replace, on
  // every backend, over the same lifted graph.
  for (AppId App : {AppId::PageRank, AppId::Spmv}) {
    for (core::BackendChoice BC : BackendChoices) {
      AppResult Runs[2];
      for (int OnPass = 0; OnPass < 2; ++OnPass) {
        AppRequest R;
        R.App = App;
        R.Version = AppVersion::Invec;
        R.Options.Backend = BC;
        R.Options.Threads = 1;
        R.Options.MaxIterations = App == AppId::PageRank ? 3 : 0;
        R.Options.Pattern =
            OnPass ? core::PatternMode::On : core::PatternMode::Off;
        R.Graph = &G;
        R.Source = 0;
        Expected<AppResult> Res = cfv::run(R);
        const std::string Tag =
            std::string(appIdName(App)) + "/invec+pattern";
        if (!Res)
          return systemFailure(W, Tag, "pattern",
                               "pattern on/off run rejected: " +
                                   Res.status().message());
        Runs[OnPass] = std::move(*Res);
      }
      const std::string Tag = std::string(appIdName(App)) + "/" +
                              Runs[1].VersionName + "+pattern";
      if (Runs[1].Values.size() != Runs[0].Values.size())
        return systemFailure(W, Tag, "pattern",
                             "pattern=on result size disagrees with "
                             "pattern=off");
      for (size_t I = 0; I < Runs[1].Values.size(); ++I) {
        if (!systemValuesAgree(Runs[1].Values[I], Runs[0].Values[I],
                               /*Exact=*/false)) {
          OracleFailure F = systemFailure(
              W, Tag, "pattern",
              "pattern=on values disagree with pattern=off");
          F.Slot = static_cast<int64_t>(I);
          F.Want = Runs[0].Values[I];
          F.Got = Runs[1].Values[I];
          if (!O.CorpusDir.empty()) {
            const std::string Path = corpusPathFor(O, F);
            if (writeCorpus(Path, W).ok())
              F.CorpusPath = Path;
          }
          return F;
        }
      }
    }
  }

  // Out-of-core leg, armed by CFV_MAP_BYTES like the production path it
  // verifies: the same graph streamed from the CFVM backing must match
  // the in-core serial reference bit-for-bit at one thread (identical
  // edges in identical order) and within tolerance at two.
  if (graph::mapBytesBudget() > 0) {
    graph::PreparedGraph Prep{graph::EdgeList(G)};
    const std::shared_ptr<const graph::MappedCsr> Mapped = Prep.mappedCsr();
    if (Mapped) {
      for (AppId App : {AppId::PageRank, AppId::Spmv}) {
        for (int Threads : {1, 2}) {
          // The contract is pointer substitution, so the reference is
          // the SAME version, backend, and thread count run in-core:
          // identical edges in identical order must mean bit-identical
          // values, not merely tolerance-equal ones.
          AppRequest Ref;
          Ref.App = App;
          Ref.Version = AppVersion::Invec;
          Ref.Options.Threads = Threads;
          Ref.Options.MaxIterations = App == AppId::PageRank ? 3 : 0;
          Ref.Graph = &G;
          Expected<AppResult> RefRes = cfv::run(Ref);
          AppRequest R = Ref;
          R.Mapped = Mapped.get();
          Expected<AppResult> Res = cfv::run(R);
          const std::string Tag =
              std::string(appIdName(App)) + "/invec+mapped";
          if (!RefRes || !Res)
            return systemFailure(W, Tag, "mapped",
                                 "mapped run rejected: " +
                                     (!RefRes ? RefRes.status().message()
                                              : Res.status().message()));
          if (!Res->UsedMappedCsr)
            return systemFailure(W, Tag, "mapped",
                                 "run ignored the mapped backing");
          if (Res->Values.size() != RefRes->Values.size())
            return systemFailure(W, Tag, "mapped",
                                 "mapped result size disagrees with the "
                                 "in-core run");
          for (size_t I = 0; I < Res->Values.size(); ++I) {
            if (!systemValuesAgree(Res->Values[I], RefRes->Values[I],
                                   /*Exact=*/true)) {
              OracleFailure F = systemFailure(
                  W, Tag, "mapped/t" + std::to_string(Threads),
                  "mapped values disagree with the in-core run");
              F.Slot = static_cast<int64_t>(I);
              F.Want = RefRes->Values[I];
              F.Got = Res->Values[I];
              return F;
            }
          }
        }
      }
    }
  }

  // NUMA-sharded leg under a synthetic 2-node topology: the node-major
  // tile assignment and two-level merge must agree with the flat serial
  // reference.  SSSP's frontier min is exact at any sharding; PageRank
  // and SpMV get the float-add tolerance the threaded legs above use.
  {
    numa::Topology Topo;
    Topo.NodeCpus = {{0}, {1}};
    numa::setTopologyForTest(&Topo);
    numa::ScopedMode Guard(numa::Mode::Auto);
    for (const SysApp &A : Apps) {
      AppRequest Ref;
      Ref.App = A.App;
      Ref.Version = AppVersion::Serial;
      Ref.Options.Backend = core::BackendChoice::Scalar;
      Ref.Options.Threads = 1;
      Ref.Options.MaxIterations = A.Iters;
      Ref.Options.Numa = core::NumaChoice::Off;
      Ref.Graph = &G;
      Ref.Source = 0;
      Expected<AppResult> RefRes = cfv::run(Ref);
      AppRequest R = Ref;
      R.Version = A.Versions.front();
      R.Options.Threads = 2;
      R.Options.Numa = core::NumaChoice::Auto;
      Expected<AppResult> Res = cfv::run(R);
      const std::string Tag = std::string(appIdName(A.App)) + "/numa";
      if (!RefRes || !Res) {
        numa::setTopologyForTest(nullptr);
        return systemFailure(W, Tag, "numa",
                             "numa-sharded run rejected: " +
                                 (!RefRes ? RefRes.status().message()
                                          : Res.status().message()));
      }
      if (Res->Values.size() != RefRes->Values.size()) {
        numa::setTopologyForTest(nullptr);
        return systemFailure(W, Tag, "numa",
                             "sharded result size disagrees with flat "
                             "serial run");
      }
      for (size_t I = 0; I < Res->Values.size(); ++I) {
        if (!systemValuesAgree(Res->Values[I], RefRes->Values[I],
                               A.Exact)) {
          numa::setTopologyForTest(nullptr);
          OracleFailure F = systemFailure(
              W, Tag, "numa/2node",
              "sharded values disagree with the flat serial run");
          F.Slot = static_cast<int64_t>(I);
          F.Want = RefRes->Values[I];
          F.Got = Res->Values[I];
          return F;
        }
      }
    }
    numa::setTopologyForTest(nullptr);
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Service tier: cold vs. cached serving against the direct facade call
//===----------------------------------------------------------------------===//

std::optional<OracleFailure> checkService(const Workload &W,
                                          const OracleOptions &O) {
  if (W.Spec.N == 0)
    return std::nullopt;
  std::string Dir = O.ScratchDir;
  if (Dir.empty())
    Dir = O.CorpusDir.empty() ? std::string("/tmp") : O.CorpusDir;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%016" PRIx64, W.Spec.Seed);
  const std::string Path = Dir + "/cfv-verify-service-" + Buf + ".snap";

  const graph::EdgeList G = toEdgeList(W, /*Weighted=*/true);
  if (Status S = graph::writeSnapEdgeList(Path, G); !S.ok())
    return systemFailure(W, "pagerank/serve", "file",
                         "cannot write scratch SNAP file: " + S.message());

  auto fail = [&](const std::string &Detail) {
    std::remove(Path.c_str());
    OracleFailure F = systemFailure(W, "pagerank/serve", "service", Detail);
    F.Where = "service";
    return F;
  };

  service::ServeRequest Req;
  Req.App = "pagerank";
  Req.File = Path;
  Req.Iters = 2;
  Req.Threads = 1;

  service::Service Svc{service::Service::Config{}};
  std::future<service::ServeResponse> Cold = Svc.submit(Req);
  service::ServeResponse ColdR = Cold.get();
  std::future<service::ServeResponse> Warm = Svc.submit(Req);
  service::ServeResponse WarmR = Warm.get();
  Svc.drain();

  if (!ColdR.Ok)
    return fail("cold serve failed: " + ColdR.Error.message());
  if (!WarmR.Ok)
    return fail("cached serve failed: " + WarmR.Error.message());
  if (!WarmR.CacheHit)
    return fail("second identical request missed the dataset cache");

  // The served graph is re-read through graph I/O, so the direct run uses
  // the same round-tripped edge list the service saw.
  Expected<graph::EdgeList> Loaded = graph::readSnapEdgeList(Path);
  if (!Loaded)
    return fail("cannot re-read scratch SNAP file: " +
                Loaded.status().message());
  AppRequest Direct;
  Direct.App = AppId::PageRank;
  Direct.Version = AppVersion::Default;
  Direct.Options.Threads = 1;
  Direct.Options.MaxIterations = 2;
  Direct.Graph = &*Loaded;
  Expected<AppResult> DirectRes = cfv::run(Direct);
  if (!DirectRes)
    return fail("direct run rejected: " + DirectRes.status().message());
  const double DirectSum = resultChecksum(*DirectRes);

  auto close = [](double A, double B) {
    return std::fabs(A - B) <=
           1e-9 * std::max(1.0, std::max(std::fabs(A), std::fabs(B)));
  };
  if (!close(ColdR.Checksum, WarmR.Checksum))
    return fail("cold and cached serve checksums disagree");
  if (!close(ColdR.Checksum, DirectSum))
    return fail("serve checksum disagrees with the direct facade run");
  std::remove(Path.c_str());
  return std::nullopt;
}

} // namespace

//===----------------------------------------------------------------------===//
// Shrinker
//===----------------------------------------------------------------------===//

Workload
shrinkWorkload(Workload W,
               const std::function<bool(const Workload &)> &StillFails) {
  int Evals = 0;
  auto tryCandidate = [&](const Workload &C) {
    if (Evals >= 3000)
      return false;
    ++Evals;
    return StillFails(C);
  };

  // Phase 1: greedy segment deletion, halving segment sizes down to
  // single elements; rescan at the same size after any success.
  int64_t Seg = std::max<int64_t>(1, W.Spec.N / 2);
  while (Seg >= 1) {
    bool Removed = false;
    int64_t Start = 0;
    while (Start < W.Spec.N) {
      const int64_t End = std::min<int64_t>(W.Spec.N, Start + Seg);
      Workload C = W;
      C.Idx.erase(C.Idx.begin() + Start, C.Idx.begin() + End);
      C.Val.erase(C.Val.begin() + Start, C.Val.begin() + End);
      C.Spec.N = static_cast<int64_t>(C.Idx.size());
      if (tryCandidate(C)) {
        W = std::move(C);
        Removed = true; // stay at Start: the next segment slid into place
      } else {
        Start = End;
      }
    }
    if (Seg == 1) {
      if (!Removed)
        break;
    } else {
      Seg /= 2;
    }
  }

  // Phase 2: compact the universe to the indices that remain, in order of
  // first use (preserves the conflict structure exactly).
  {
    Workload C = W;
    std::vector<int32_t> Map(static_cast<size_t>(W.Spec.Universe), -1);
    int32_t Next = 0;
    for (size_t I = 0; I < C.Idx.size(); ++I) {
      int32_t &Slot = Map[static_cast<size_t>(C.Idx[I])];
      if (Slot < 0)
        Slot = Next++;
      C.Idx[I] = Slot;
    }
    C.Spec.Universe = std::max<int32_t>(1, Next);
    if (C.Spec.Universe < W.Spec.Universe && tryCandidate(C))
      W = std::move(C);
  }
  return W;
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

std::string OracleFailure::toJson() const {
  json::ObjectWriter J;
  J.field("ok", false)
      .field("error", "oracle_mismatch")
      .field("tier", Where)
      .field("spec", Spec.toString())
      .field("pipeline", Pipeline)
      .field("backend", Backend)
      .field("op", Op)
      .field("chunks", Chunks)
      .field("elements", Elements)
      .field("slot", Slot)
      .field("want", Want)
      .field("got", Got)
      .field("detail", Detail)
      .field("reproducer", CorpusPath);
  return J.str();
}

std::optional<OracleFailure> checkWorkload(const Workload &W,
                                           const OracleOptions &O) {
  // The classifier check is one scan; it runs for every enabled tier
  // combination since both the kernel and system tiers trust the
  // classes it assigns.
  if (auto F = checkClassifier(W, O))
    return F;
  if (O.KernelTier)
    if (auto F = checkKernels(W, O))
      return F;
  if (O.SystemTier)
    if (auto F = checkSystem(W, O))
      return F;
  if (O.ServiceTier)
    if (auto F = checkService(W, O))
      return F;
  return std::nullopt;
}

} // namespace verify
} // namespace cfv
