//===- tests/simd_vec_test.cpp - Vec type semantics, both backends -------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Every operation of VecI32/VecF32 is checked on every backend in the
// build, with emphasis on the semantics the algorithms depend on: masked
// gather/scatter defaults, scatter lane ordering under index overlap, and
// compress/expand packing.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "simd/Vec.h"

#include <cmath>
#include <numeric>

using namespace cfv;
using namespace cfv::simd;
using namespace cfv::test;

template <typename B> class VecTest : public ::testing::Test {};
TYPED_TEST_SUITE(VecTest, AllBackends, );

TYPED_TEST(VecTest, BroadcastAndStore) {
  using B = TypeParam;
  const Lane16i L = toArray(VecI32<B>::broadcast(7));
  for (int32_t X : L)
    EXPECT_EQ(X, 7);
  const Lane16f Lf = toArray(VecF32<B>::broadcast(2.5f));
  for (float X : Lf)
    EXPECT_EQ(X, 2.5f);
}

TYPED_TEST(VecTest, IotaAndLoadRoundTrip) {
  using B = TypeParam;
  const Lane16i L = toArray(VecI32<B>::iota());
  for (int I = 0; I < kMaxLanes; ++I)
    EXPECT_EQ(L[I], I);

  Lane16i Src;
  std::iota(Src.begin(), Src.end(), 100);
  EXPECT_EQ(toArray(loadIdx<B>(Src)), Src);
}

TYPED_TEST(VecTest, MaskLoadKeepsUnselectedLanes) {
  using B = TypeParam;
  Lane16i Src;
  std::iota(Src.begin(), Src.end(), 0);
  const Mask16 M = 0x00FF;
  const Lane16i L =
      toArray(VecI32<B>::maskLoad(VecI32<B>::broadcast(-9), M, Src.data()));
  for (int I = 0; I < kMaxLanes; ++I)
    EXPECT_EQ(L[I], I < 8 ? I : -9);
}

TYPED_TEST(VecTest, GatherReadsIndexedElements) {
  using B = TypeParam;
  alignas(64) int32_t Base[32];
  for (int I = 0; I < 32; ++I)
    Base[I] = I * 10;
  Lane16i Idx = {31, 0, 5, 5, 7, 2, 30, 1, 9, 9, 9, 4, 3, 6, 8, 10};
  const Lane16i L = toArray(VecI32<B>::gather(Base, loadIdx<B>(Idx)));
  for (int I = 0; I < kMaxLanes; ++I)
    EXPECT_EQ(L[I], Idx[I] * 10);
}

TYPED_TEST(VecTest, MaskGatherDefaultsUnselectedLanes) {
  using B = TypeParam;
  alignas(64) float Base[16];
  for (int I = 0; I < 16; ++I)
    Base[I] = static_cast<float>(I);
  Lane16i Idx{};
  for (int I = 0; I < kMaxLanes; ++I)
    Idx[I] = 15 - I;
  const Mask16 M = 0x5555;
  const Lane16f L = toArray(VecF32<B>::maskGather(
      VecF32<B>::broadcast(-1.0f), M, Base, loadIdx<B>(Idx)));
  for (int I = 0; I < kMaxLanes; ++I)
    EXPECT_EQ(L[I], testLane(M, I) ? static_cast<float>(15 - I) : -1.0f);
}

TYPED_TEST(VecTest, ScatterHighestLaneWinsOnOverlap) {
  using B = TypeParam;
  alignas(64) int32_t Out[8] = {0};
  // Lanes 3, 7 and 12 all write slot 4; vpscatterdd keeps the highest.
  Lane16i Idx = {0, 1, 2, 4, 3, 5, 6, 4, 7, 0, 1, 2, 4, 3, 5, 6};
  Lane16i Val;
  std::iota(Val.begin(), Val.end(), 100);
  loadIdx<B>(Val).scatter(Out, loadIdx<B>(Idx));
  EXPECT_EQ(Out[4], 112) << "lane 12 wrote last";
  EXPECT_EQ(Out[0], 109);
  EXPECT_EQ(Out[7], 108);
}

TYPED_TEST(VecTest, MaskScatterWritesOnlySelected) {
  using B = TypeParam;
  alignas(64) float Out[16];
  for (float &X : Out)
    X = -1.0f;
  Lane16i Idx;
  std::iota(Idx.begin(), Idx.end(), 0);
  const Mask16 M = 0x0F0F;
  VecF32<B>::broadcast(3.0f).maskScatter(M, Out, loadIdx<B>(Idx));
  for (int I = 0; I < kMaxLanes; ++I)
    EXPECT_EQ(Out[I], testLane(M, I) ? 3.0f : -1.0f);
}

TYPED_TEST(VecTest, MaskStoreWritesOnlySelected) {
  using B = TypeParam;
  alignas(64) int32_t Out[16];
  for (int32_t &X : Out)
    X = 5;
  VecI32<B>::broadcast(9).maskStore(0x8001, Out);
  EXPECT_EQ(Out[0], 9);
  EXPECT_EQ(Out[15], 9);
  for (int I = 1; I < 15; ++I)
    EXPECT_EQ(Out[I], 5);
}

TYPED_TEST(VecTest, BlendTakesSecondWhereMaskSet) {
  using B = TypeParam;
  const auto A = VecI32<B>::broadcast(1);
  const auto Bv = VecI32<B>::broadcast(2);
  const Lane16i L = toArray(VecI32<B>::blend(0x00F0, A, Bv));
  for (int I = 0; I < kMaxLanes; ++I)
    EXPECT_EQ(L[I], (I >= 4 && I < 8) ? 2 : 1);
}

TYPED_TEST(VecTest, CompressPacksSelectedLanesLow) {
  using B = TypeParam;
  Lane16i Src;
  std::iota(Src.begin(), Src.end(), 0);
  const Mask16 M = 0x8421; // lanes 0, 5, 10, 15
  const Lane16i L = toArray(VecI32<B>::compress(M, loadIdx<B>(Src)));
  EXPECT_EQ(L[0], 0);
  EXPECT_EQ(L[1], 5);
  EXPECT_EQ(L[2], 10);
  EXPECT_EQ(L[3], 15);
  for (int I = 4; I < kMaxLanes; ++I)
    EXPECT_EQ(L[I], 0) << "zero-masked compress must clear the rest";
}

TYPED_TEST(VecTest, ExpandDistributesLowLanes) {
  using B = TypeParam;
  Lane16i Src;
  std::iota(Src.begin(), Src.end(), 50);
  const Mask16 M = 0x0109; // lanes 0, 3, 8
  const Lane16i L = toArray(VecI32<B>::expand(M, loadIdx<B>(Src)));
  EXPECT_EQ(L[0], 50);
  EXPECT_EQ(L[3], 51);
  EXPECT_EQ(L[8], 52);
  EXPECT_EQ(L[1], 0);
  EXPECT_EQ(L[15], 0);
}

TYPED_TEST(VecTest, ExpandInvertsCompress) {
  using B = TypeParam;
  Xoshiro256 Rng(0xC0FFEE);
  for (int Trial = 0; Trial < 50; ++Trial) {
    const Mask16 M = randomMask(Rng);
    const Lane16i Src = randomInts(Rng);
    const auto V = loadIdx<B>(Src);
    const auto Round = VecI32<B>::expand(M, VecI32<B>::compress(M, V));
    const Lane16i L = toArray(Round);
    for (int I = 0; I < kMaxLanes; ++I) {
      if (testLane(M, I)) {
        EXPECT_EQ(L[I], Src[I]) << "trial " << Trial << " lane " << I;
      }
    }
  }
}

TYPED_TEST(VecTest, CompressStoreWritesContiguously) {
  using B = TypeParam;
  Lane16f Src;
  for (int I = 0; I < kMaxLanes; ++I)
    Src[I] = static_cast<float>(I);
  alignas(64) float Out[kMaxLanes];
  for (float &X : Out)
    X = -1.0f;
  const int N = loadF<B>(Src).compressStore(0x0880, Out); // lanes 7, 11
  EXPECT_EQ(N, 2);
  EXPECT_EQ(Out[0], 7.0f);
  EXPECT_EQ(Out[1], 11.0f);
  EXPECT_EQ(Out[2], -1.0f);
}

TYPED_TEST(VecTest, IntArithmetic) {
  using B = TypeParam;
  const auto A = VecI32<B>::broadcast(6);
  const auto Bv = VecI32<B>::broadcast(4);
  EXPECT_EQ(toArray(A + Bv)[3], 10);
  EXPECT_EQ(toArray(A - Bv)[3], 2);
  EXPECT_EQ(toArray(A * Bv)[3], 24);
  EXPECT_EQ(toArray(A & Bv)[3], 4);
  EXPECT_EQ(toArray(A | Bv)[3], 6);
  EXPECT_EQ(toArray(VecI32<B>::min(A, Bv))[0], 4);
  EXPECT_EQ(toArray(VecI32<B>::max(A, Bv))[0], 6);
}

TYPED_TEST(VecTest, FloatArithmetic) {
  using B = TypeParam;
  const auto A = VecF32<B>::broadcast(6.0f);
  const auto Bv = VecF32<B>::broadcast(4.0f);
  EXPECT_EQ(toArray(A + Bv)[0], 10.0f);
  EXPECT_EQ(toArray(A - Bv)[0], 2.0f);
  EXPECT_EQ(toArray(A * Bv)[0], 24.0f);
  EXPECT_EQ(toArray(A / Bv)[0], 1.5f);
  EXPECT_EQ(toArray(VecF32<B>::min(A, Bv))[0], 4.0f);
  EXPECT_EQ(toArray(VecF32<B>::max(A, Bv))[0], 6.0f);
}

TYPED_TEST(VecTest, ComparisonsProduceLaneMasks) {
  using B = TypeParam;
  const auto A = VecI32<B>::iota();
  const auto Bv = VecI32<B>::broadcast(8);
  EXPECT_EQ(A.lt(Bv), 0x00FF);
  EXPECT_EQ(A.gt(Bv), 0xFE00);
  EXPECT_EQ(A.eq(Bv), 0x0100);
  EXPECT_EQ(A.maskEq(0x0000, Bv), 0x0000);
  EXPECT_EQ(A.maskEq(0xFFFF, Bv), 0x0100);

  const auto Fa = toFloat(A);
  const auto Fb = VecF32<B>::broadcast(8.0f);
  EXPECT_EQ(Fa.lt(Fb), 0x00FF);
  EXPECT_EQ(Fa.gt(Fb), 0xFE00);
  EXPECT_EQ(Fa.eq(Fb), 0x0100);
}

TYPED_TEST(VecTest, BroadcastLaneReplicatesOneLane) {
  using B = TypeParam;
  Lane16i Src;
  std::iota(Src.begin(), Src.end(), 40);
  for (int L : {0, 5, 15}) {
    const Lane16i Out = toArray(loadIdx<B>(Src).broadcastLane(L));
    for (int I = 0; I < kMaxLanes; ++I)
      EXPECT_EQ(Out[I], 40 + L);
  }
  Lane16f SrcF;
  for (int I = 0; I < kMaxLanes; ++I)
    SrcF[I] = static_cast<float>(I) * 0.5f;
  const Lane16f OutF = toArray(loadF<B>(SrcF).broadcastLane(9));
  for (int I = 0; I < kMaxLanes; ++I)
    EXPECT_EQ(OutF[I], 4.5f);
}

TYPED_TEST(VecTest, ExtractReadsOneLane) {
  using B = TypeParam;
  Lane16i Src;
  std::iota(Src.begin(), Src.end(), -3);
  const auto V = loadIdx<B>(Src);
  EXPECT_EQ(V.extract(0), -3);
  EXPECT_EQ(V.extract(15), 12);
}

TYPED_TEST(VecTest, Shifts) {
  using B = TypeParam;
  const auto V = VecI32<B>::broadcast(static_cast<int32_t>(0x80000010u));
  EXPECT_EQ(toArray(V.shrl(4))[0], 0x08000001);
  EXPECT_EQ(toArray(VecI32<B>::broadcast(3).shl(2))[0], 12);
}

TYPED_TEST(VecTest, RoundTiesToEven) {
  using B = TypeParam;
  Lane16f Src = {0.5f, 1.5f, 2.5f, -0.5f, -1.5f, 2.4f, 2.6f, -2.4f,
                 0.0f, 7.0f, -7.0f, 3.49f, -3.49f, 100.5f, 0.1f, -0.1f};
  const Lane16f L = toArray(loadF<B>(Src).round());
  const Lane16f Want = {0.0f, 2.0f, 2.0f, -0.0f, -2.0f, 2.0f, 3.0f, -2.0f,
                        0.0f, 7.0f, -7.0f, 3.0f, -3.0f, 100.0f, 0.0f, -0.0f};
  for (int I = 0; I < kMaxLanes; ++I)
    EXPECT_EQ(L[I], Want[I]) << "lane " << I;
}

TYPED_TEST(VecTest, Conversions) {
  using B = TypeParam;
  const Lane16f F = {1.9f, -1.9f, 0.0f, 2.0f, -2.0f, 100.7f, -0.4f, 0.4f,
                     3.5f, -3.5f, 7.99f, -7.99f, 12.0f, 15.0f, 1.0f, -1.0f};
  const Lane16i L = toArray(toInt(loadF<B>(F)));
  // vcvttps2dq truncates toward zero.
  const Lane16i Want = {1, -1, 0, 2, -2, 100, 0, 0,
                        3, -3, 7, -7, 12, 15, 1, -1};
  EXPECT_EQ(L, Want);

  const Lane16f Back = toArray(toFloat(loadIdx<B>(Want)));
  for (int I = 0; I < kMaxLanes; ++I)
    EXPECT_EQ(Back[I], static_cast<float>(Want[I]));
}

#if CFV_HAVE_AVX512
// Differential check: the AVX-512 backend must agree with the scalar
// emulation on random inputs for every operation with nontrivial
// semantics.
TEST(BackendEquivalence, RandomOpsAgree) {
  using S = backend::Scalar;
  using A = backend::Avx512;
  Xoshiro256 Rng(0xABCD);
  alignas(64) int32_t Base[64];
  for (int I = 0; I < 64; ++I)
    Base[I] = I * 3 - 10;

  for (int Trial = 0; Trial < 200; ++Trial) {
    const Lane16i Idx = randomIndices(Rng, 64);
    const Lane16i Val = randomInts(Rng);
    const Mask16 M = randomMask(Rng);

    EXPECT_EQ(toArray(VecI32<S>::gather(Base, loadIdx<S>(Idx))),
              toArray(VecI32<A>::gather(Base, loadIdx<A>(Idx))));
    EXPECT_EQ(toArray(VecI32<S>::compress(M, loadIdx<S>(Val))),
              toArray(VecI32<A>::compress(M, loadIdx<A>(Val))));
    EXPECT_EQ(toArray(VecI32<S>::expand(M, loadIdx<S>(Val))),
              toArray(VecI32<A>::expand(M, loadIdx<A>(Val))));
    EXPECT_EQ(loadIdx<S>(Val).lt(loadIdx<S>(Idx)),
              loadIdx<A>(Val).lt(loadIdx<A>(Idx)));

    alignas(64) int32_t OutS[64], OutA[64];
    for (int I = 0; I < 64; ++I)
      OutS[I] = OutA[I] = -1;
    loadIdx<S>(Val).maskScatter(M, OutS, loadIdx<S>(Idx));
    loadIdx<A>(Val).maskScatter(M, OutA, loadIdx<A>(Idx));
    for (int I = 0; I < 64; ++I)
      ASSERT_EQ(OutS[I], OutA[I]) << "scatter mismatch at " << I;
  }
}
#endif
