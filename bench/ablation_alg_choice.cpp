//===- bench/ablation_alg_choice.cpp - §3.3/3.4 cost-model ablation -------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Validates the paper's analytic overhead model (Algorithm 1 ~ 2 + 8*D1
// instructions, Algorithm 2 ~ 7 + 8*D2) and the adaptive switching policy
// of §3.4 empirically: sweeps the duplicate density of the index stream,
// measures wall time per vector for Algorithm 1, Algorithm 2 and the
// adaptive reducer, and reports the observed D1/D2 together with the
// model's predicted winner.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Adaptive.h"
#include "core/CostModel.h"
#include "core/InvecReduce.h"
#include "simd/Traits.h"
#include "util/AlignedAlloc.h"
#include "util/Prng.h"
#include "util/TablePrinter.h"
#include "util/Timer.h"

using namespace cfv;
using namespace cfv::bench;
using namespace cfv::core;
using namespace cfv::simd;

namespace {

using B = NativeBackend;
using IVec = VecI32<B>;
using FVec = VecF32<B>;

constexpr int kL = B::kLanes;
constexpr Mask16 kFull = BackendTraits<B>::kFullMask;

constexpr int64_t kVectors = 100000;
constexpr int kArr = 4096;

struct StreamData {
  AlignedVector<int32_t> Idx;
  AlignedVector<float> Val;
};

StreamData makeStream(uint32_t Universe, uint64_t Seed) {
  Xoshiro256 Rng(Seed);
  StreamData S;
  S.Idx.resize(kVectors * kL);
  S.Val.resize(kVectors * kL);
  for (int64_t I = 0; I < kVectors * kL; ++I) {
    S.Idx[I] = static_cast<int32_t>(Rng.nextBounded(Universe));
    S.Val[I] = Rng.nextFloat();
  }
  return S;
}

struct RunStats {
  double NsPerVector;
  double MeanDistinct;
};

/// Algorithm 1 over the whole stream.
RunStats runAlg1(const StreamData &S, AlignedVector<float> &Main) {
  uint64_t DistinctSum = 0;
  WallTimer W;
  for (int64_t V = 0; V < kVectors; ++V) {
    const IVec Idx = IVec::load(S.Idx.data() + V * kL);
    FVec Data = FVec::load(S.Val.data() + V * kL);
    const InvecResult R = invecReduce<OpAdd>(kFull, Idx, Data);
    accumulateScatter<OpAdd>(R.Ret, Idx, Data, Main.data());
    DistinctSum += static_cast<uint64_t>(R.Distinct);
  }
  const double Sec = W.seconds();
  return {Sec / kVectors * 1e9,
          static_cast<double>(DistinctSum) / kVectors};
}

/// Algorithm 2 with the auxiliary-array protocol.
RunStats runAlg2(const StreamData &S, AlignedVector<float> &Main) {
  AlignedVector<float> Aux(kArr, 0.0f);
  uint64_t DistinctSum = 0;
  WallTimer W;
  for (int64_t V = 0; V < kVectors; ++V) {
    const IVec Idx = IVec::load(S.Idx.data() + V * kL);
    FVec Data = FVec::load(S.Val.data() + V * kL);
    const Invec2Result R = invecReduce2<OpAdd>(kFull, Idx, Data);
    accumulateScatter<OpAdd>(R.Ret1, Idx, Data, Main.data());
    accumulateScatter<OpAdd>(R.Ret2, Idx, Data, Aux.data());
    DistinctSum += static_cast<uint64_t>(R.Distinct);
  }
  mergeAux<OpAdd>(Main.data(), Aux.data(), kArr);
  const double Sec = W.seconds();
  return {Sec / kVectors * 1e9,
          static_cast<double>(DistinctSum) / kVectors};
}

/// The §3.4 adaptive dispatcher.
RunStats runAdaptive(const StreamData &S, AlignedVector<float> &Main,
                     bool &UsedAlg2) {
  AlignedVector<float> Aux(kArr, 0.0f);
  AdaptiveReducer<OpAdd, float, B> Red(Aux.data(), Aux.size());
  WallTimer W;
  for (int64_t V = 0; V < kVectors; ++V) {
    const IVec Idx = IVec::load(S.Idx.data() + V * kL);
    FVec Data = FVec::load(S.Val.data() + V * kL);
    const Mask16 M = Red.reduce(kFull, Idx, Data);
    accumulateScatter<OpAdd>(M, Idx, Data, Main.data());
  }
  Red.mergeInto(Main.data());
  const double Sec = W.seconds();
  UsedAlg2 = Red.usingAlg2();
  return {Sec / kVectors * 1e9, Red.meanD1()};
}

} // namespace

int main() {
  banner("Ablation (§3.3/§3.4)",
         "Algorithm 1 vs Algorithm 2 vs adaptive policy across duplicate "
         "densities");
  std::printf("%lld vectors of %d lanes (%s backend) per cell; reduction "
              "array of %d floats\n",
              static_cast<long long>(kVectors), kL, B::kName, kArr);

  TablePrinter T({"universe", "D1", "D2", "alg1 ns/vec", "alg2 ns/vec",
                  "adaptive ns/vec", "adaptive chose", "model 2+8*D1",
                  "model 7+8*D2", "model prefers"});

  for (const uint32_t Universe : {1u, 2u, 3u, 4u, 6u, 8u, 16u, 32u, 128u,
                                  1024u, 4096u}) {
    const StreamData S = makeStream(Universe, bench::benchSeed() ^ (Universe * 1337));
    AlignedVector<float> M1(kArr, 0.0f), M2(kArr, 0.0f), M3(kArr, 0.0f);
    const RunStats A1 = runAlg1(S, M1);
    const RunStats A2 = runAlg2(S, M2);
    bool UsedAlg2 = false;
    const RunStats Ad = runAdaptive(S, M3, UsedAlg2);

    T.addRow({std::to_string(Universe), TablePrinter::fmt(A1.MeanDistinct, 3),
              TablePrinter::fmt(A2.MeanDistinct, 3),
              TablePrinter::fmt(A1.NsPerVector, 1),
              TablePrinter::fmt(A2.NsPerVector, 1),
              TablePrinter::fmt(Ad.NsPerVector, 1),
              UsedAlg2 ? "Alg2" : "Alg1",
              TablePrinter::fmt(alg1Cost(A1.MeanDistinct), 1),
              TablePrinter::fmt(alg2Cost(A2.MeanDistinct), 1),
              alg2Profitable(A1.MeanDistinct, A2.MeanDistinct) ? "Alg2"
                                                               : "Alg1"});
  }
  T.print();

  paperNote("Algorithm 2 wins when D1 > D2 + 0.625 (equivalently, the "
            "simplified policy D1 > 1); for graph-like tiny D1 Algorithm 1 "
            "is cheaper, for aggregation-like D1 ~ 4 Algorithm 2 wins with "
            "D2 ~ 1");
  return 0;
}
