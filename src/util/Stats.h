//===- util/Stats.h - Runtime counters and statistics -----------*- C++ -*-===//
//
// Part of the cfv project (see AlignedAlloc.h for the project banner).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters used to reproduce the paper's reported metrics: the SIMD
/// utilization of the conflict-masking approach (Figures 8-12 annotate
/// "simd_util = ...%") and the average number of distinct conflicting
/// lanes D1/D2 that drives the Algorithm 1 / Algorithm 2 choice (§3.4).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_UTIL_STATS_H
#define CFV_UTIL_STATS_H

#ifndef CFV_OBS
#define CFV_OBS 1
#endif

#include <cstdint>

namespace cfv {

/// Histogram over lane counts 0..16 as a plain local array -- the hot
/// kernels bump a slot per vector pass without atomics or registry
/// traffic, and the run facade flushes the totals into the shared
/// observability registry once per run.  17 slots cover every quantity
/// the paper distributes over lanes: D1, D2, and useful lanes per pass
/// all live in [0, 16] for the 512-bit backends.
class LaneHistogram {
public:
  static constexpr unsigned kSlots = 17;

  void add(unsigned Lanes) { ++Counts[Lanes < kSlots ? Lanes : kSlots - 1]; }

  /// Bulk form: \p Times passes that all carried \p Lanes useful lanes
  /// (pattern dispatch tallies a whole tile in O(1) instead of one call
  /// per vector).
  void add(unsigned Lanes, uint64_t Times) {
    Counts[Lanes < kSlots ? Lanes : kSlots - 1] += Times;
  }

  uint64_t count(unsigned Slot) const {
    return Slot < kSlots ? Counts[Slot] : 0;
  }

  uint64_t total() const {
    uint64_t Sum = 0;
    for (uint64_t C : Counts)
      Sum += C;
    return Sum;
  }

  void merge(const LaneHistogram &O) {
    for (unsigned I = 0; I < kSlots; ++I)
      Counts[I] += O.Counts[I];
  }

  void reset() {
    for (uint64_t &C : Counts)
      C = 0;
  }

private:
  uint64_t Counts[kSlots] = {};
};

/// Tracks SIMD utilization: the fraction of lane slots that carried useful
/// work over all vector passes executed.  The conflict-masking approach
/// re-runs a vector until all lanes commit, so its utilization is
/// (lanes committed) / (passes * width); in-vector reduction commits every
/// active lane in one pass.
class SimdUtilCounter {
public:
  void recordPass(unsigned UsefulLanes, unsigned Width) {
    Useful += UsefulLanes;
    Slots += Width;
#if CFV_OBS
    Lanes.add(UsefulLanes);
#endif
  }

  /// Utilization in [0, 1]; 1.0 when nothing was recorded.
  double utilization() const {
    return Slots == 0 ? 1.0 : static_cast<double>(Useful) /
                                  static_cast<double>(Slots);
  }

  uint64_t passes(unsigned Width) const { return Slots / Width; }

  /// Folds another counter in (used to combine per-worker counters after
  /// a parallel region; merge order does not affect the result).
  void merge(const SimdUtilCounter &O) {
    Useful += O.Useful;
    Slots += O.Slots;
#if CFV_OBS
    Lanes.merge(O.Lanes);
#endif
  }

  void reset() {
    Useful = Slots = 0;
#if CFV_OBS
    Lanes.reset();
#endif
  }

  /// Distribution of useful lanes per pass (empty when compiled out).
  const LaneHistogram &laneHistogram() const { return Lanes; }

private:
  uint64_t Useful = 0;
  uint64_t Slots = 0;
  LaneHistogram Lanes; // zero-cost empty shell when CFV_OBS=0
};

/// Incremental mean without storing samples.
class RunningMean {
public:
  void add(double X) {
    ++N;
    Mean += (X - Mean) / static_cast<double>(N);
  }

  double mean() const { return Mean; }
  uint64_t count() const { return N; }

  /// Count-weighted combine of two means (per-worker statistics are
  /// merged in thread-id order after a parallel region, keeping the
  /// result deterministic at a fixed thread count).
  void merge(const RunningMean &O) {
    if (O.N == 0)
      return;
    const uint64_t Total = N + O.N;
    Mean += (O.Mean - Mean) * (static_cast<double>(O.N) /
                               static_cast<double>(Total));
    N = Total;
  }

  void reset() {
    N = 0;
    Mean = 0.0;
  }

private:
  uint64_t N = 0;
  double Mean = 0.0;
};

/// RunningMean plus a lane-count distribution: the paper's D1/D2
/// statistics need both the mean (it drives the Algorithm 1/2 policy)
/// and the shape (an operator watching live traffic wants to see whether
/// "mean D1 = 1.2" is uniform light conflict or a bimodal mix).  Same
/// add/mean/count/merge surface as RunningMean so kernels can swap it in
/// without restructuring; the histogram side compiles to nothing under
/// CFV_OBS=0.
class ConflictCounter {
public:
  void add(unsigned Lanes) {
    Mean.add(static_cast<double>(Lanes));
#if CFV_OBS
    Hist.add(Lanes);
#endif
  }

  double mean() const { return Mean.mean(); }
  uint64_t count() const { return Mean.count(); }

  void merge(const ConflictCounter &O) {
    Mean.merge(O.Mean);
#if CFV_OBS
    Hist.merge(O.Hist);
#endif
  }

  void reset() {
    Mean.reset();
#if CFV_OBS
    Hist.reset();
#endif
  }

  const LaneHistogram &histogram() const { return Hist; }

private:
  RunningMean Mean;
  LaneHistogram Hist;
};

} // namespace cfv

#endif // CFV_UTIL_STATS_H
