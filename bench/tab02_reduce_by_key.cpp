//===- bench/tab02_reduce_by_key.cpp - Table 2 harness --------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 2: repeated reductions over all edges of the three
// graphs ("reductions conducted on the columns of the sparse matrices"),
// comparing in-vector reduction against the Thrust-style reduce_by_key
// baseline.  The paper runs 1000 iterations; the default here is scaled
// down and the table reports both measured seconds and the
// per-1000-iteration extrapolation next to the paper's numbers.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/rbk/ReduceByKey.h"
#include "graph/Datasets.h"
#include "util/TablePrinter.h"

#include <algorithm>

using namespace cfv;
using namespace cfv::bench;

int main() {
  banner("Table 2",
         "1000-iteration edge reductions: in-vector reduction vs "
         "(Thrust-like) reduce_by_key");
  const double Scale = graph::envScale();
  const int Iterations =
      std::max(10, static_cast<int>(100 * Scale));
  std::printf("iterations per run: %d (paper: 1000; scale with "
              "CFV_SCALE)\n",
              Iterations);

  struct PaperRow {
    const char *Graph;
    double InvecSec;
    double ThrustSec;
  };
  const PaperRow Paper[] = {{"higgs-twitter", 6.99, 57.97},
                            {"amazon0312", 14.73, 123.77},
                            {"soc-pokec", 1.52, 13.59}};

  TablePrinter T({"dataset", "invec(s)", "thrust-like(s)", "ratio",
                  "fused-serial(s)", "per-1000 invec(s)",
                  "per-1000 thrust(s)", "paper invec(s)",
                  "paper Thrust(s)"});

  const std::vector<std::string> Names = graph::graphDatasetNames();
  for (std::size_t I = 0; I < Names.size(); ++I) {
    const graph::Dataset D = *graph::makeGraphDataset(Names[I], Scale, true);
    const apps::RbkResult R = apps::runRbkComparison(D.Edges, Iterations);
    // Paper rows are listed in a different order than Table 1; match by
    // name, falling back to position.
    const PaperRow *P = &Paper[std::min(I, std::size(Paper) - 1)];
    for (const PaperRow &Row : Paper)
      if (D.Name.find(Row.Graph) != std::string::npos)
        P = &Row;
    const double Per1000 = 1000.0 / Iterations;
    T.addRow({D.Name, TablePrinter::fmt(R.InvecSeconds),
              TablePrinter::fmt(R.ThrustLikeSeconds),
              speedup(R.ThrustLikeSeconds, R.InvecSeconds),
              TablePrinter::fmt(R.FusedSerialSeconds),
              TablePrinter::fmt(R.InvecSeconds * Per1000, 1),
              TablePrinter::fmt(R.ThrustLikeSeconds * Per1000, 1),
              TablePrinter::fmt(P->InvecSec, 2),
              TablePrinter::fmt(P->ThrustSec, 2)});
  }
  T.print();

  paperNote("in-vector reduction ~8.5x faster than Thrust reduce_by_key "
            "across the three graphs (thrust-like = library-style "
            "multi-pass decomposition; fused-serial is a best-case scalar "
            "loop no generic library achieves, shown for context)");
  return 0;
}
