//===- tools/cfv_metrics_check.cpp - Prometheus exposition validator ------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Validates Prometheus text exposition format (version 0.0.4) as emitted
// by cfv_serve's /metrics scrape, {"cmd":"metrics"}, and cfv_run
// --metrics.  CI pipes a live scrape through this tool so a malformed
// exposition -- bad metric name, sample before its TYPE line, histogram
// missing its +Inf bucket, non-monotone bucket counts -- fails the build
// instead of failing the first real Prometheus server pointed at us.
//
//   cfv_serve --port 9095 & curl -s localhost:9095/metrics | \
//       cfv_metrics_check --require cfv_runs_total
//
// Reads stdin (or a file argument).  Exits 0 on a valid exposition that
// contains every --require'd metric family, 1 otherwise (with one
// diagnostic per problem on stderr).
//
//===----------------------------------------------------------------------===//

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace {

[[noreturn]] void usage(int Code) {
  std::fprintf(Code ? stderr : stdout,
               "usage: cfv_metrics_check [--require <metric>]... [file]\n"
               "\n"
               "Validates Prometheus text exposition (0.0.4) from <file> or\n"
               "stdin.  --require (repeatable) additionally demands that the\n"
               "named metric family appears with at least one sample.\n");
  std::exit(Code);
}

bool isMetricNameStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == ':';
}
bool isMetricNameChar(char C) {
  return isMetricNameStart(C) || std::isdigit(static_cast<unsigned char>(C));
}
bool isLabelNameStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
bool isLabelNameChar(char C) {
  return isLabelNameStart(C) || std::isdigit(static_cast<unsigned char>(C));
}

struct Checker {
  int Errors = 0;
  int Samples = 0;
  int LineNo = 0;
  /// family -> declared TYPE ("counter" | "gauge" | "histogram" | ...).
  std::map<std::string, std::string> Types;
  std::set<std::string> SeenFamilies;
  /// histogram family -> per-label-set running state for bucket checks.
  struct BucketState {
    double LastLe = 0.0;
    double LastCount = 0.0;
    bool Any = false;
    bool SawInf = false;
  };
  std::map<std::string, BucketState> Buckets;

  void fail(const char *Fmt, const std::string &Arg = "") {
    std::fprintf(stderr, "cfv_metrics_check: line %d: ", LineNo);
    std::fprintf(stderr, Fmt, Arg.c_str());
    std::fputc('\n', stderr);
    ++Errors;
  }

  /// The family a sample belongs to: histogram series drop the
  /// _bucket/_sum/_count suffix.
  std::string familyOf(const std::string &Name) {
    static const char *Suffixes[] = {"_bucket", "_sum", "_count"};
    for (const char *S : Suffixes) {
      const std::size_t L = std::strlen(S);
      if (Name.size() > L && Name.compare(Name.size() - L, L, S) == 0) {
        const std::string Base = Name.substr(0, Name.size() - L);
        const auto It = Types.find(Base);
        if (It != Types.end() && It->second == "histogram")
          return Base;
      }
    }
    return Name;
  }

  void checkComment(const std::string &Line) {
    // "# HELP name text" / "# TYPE name type"; any other comment is fine.
    if (Line.rfind("# HELP ", 0) != 0 && Line.rfind("# TYPE ", 0) != 0)
      return;
    const bool IsType = Line.rfind("# TYPE ", 0) == 0;
    std::size_t P = 7;
    std::size_t NameEnd = P;
    while (NameEnd < Line.size() && Line[NameEnd] != ' ')
      ++NameEnd;
    const std::string Name = Line.substr(P, NameEnd - P);
    if (Name.empty() || !isMetricNameStart(Name[0])) {
      fail("bad metric name '%s' in HELP/TYPE", Name);
      return;
    }
    for (char C : Name)
      if (!isMetricNameChar(C)) {
        fail("bad metric name '%s' in HELP/TYPE", Name);
        return;
      }
    if (!IsType)
      return;
    const std::string Kind =
        NameEnd < Line.size() ? Line.substr(NameEnd + 1) : "";
    if (Kind != "counter" && Kind != "gauge" && Kind != "histogram" &&
        Kind != "summary" && Kind != "untyped") {
      fail("unknown TYPE '%s'", Kind);
      return;
    }
    if (SeenFamilies.count(Name))
      fail("TYPE for '%s' after its samples", Name);
    if (!Types.emplace(Name, Kind).second)
      fail("duplicate TYPE for '%s'", Name);
  }

  /// Parses `{k="v",...}` starting at \p P (pointing at '{').  Returns
  /// false on malformed labels.  \p Le receives the le= value if present;
  /// \p KeyLabels accumulates every other label as `name=value;` so a
  /// histogram's bucket series can be keyed without its le.
  bool parseLabels(const std::string &Line, std::size_t &P, std::string &Le,
                   std::string &KeyLabels) {
    ++P; // '{'
    bool First = true;
    while (P < Line.size() && Line[P] != '}') {
      if (!First) {
        if (Line[P] != ',')
          return false;
        ++P;
        if (P < Line.size() && Line[P] == '}')
          break; // trailing comma is tolerated by Prometheus
      }
      First = false;
      std::size_t NameStart = P;
      if (P >= Line.size() || !isLabelNameStart(Line[P]))
        return false;
      while (P < Line.size() && isLabelNameChar(Line[P]))
        ++P;
      const std::string LName = Line.substr(NameStart, P - NameStart);
      if (P >= Line.size() || Line[P] != '=')
        return false;
      ++P;
      if (P >= Line.size() || Line[P] != '"')
        return false;
      ++P;
      std::string Value;
      while (P < Line.size() && Line[P] != '"') {
        if (Line[P] == '\\') {
          ++P;
          if (P >= Line.size())
            return false;
          switch (Line[P]) {
          case 'n':
            Value += '\n';
            break;
          case '\\':
          case '"':
            Value += Line[P];
            break;
          default:
            return false; // only \n \\ \" are legal escapes
          }
        } else {
          Value += Line[P];
        }
        ++P;
      }
      if (P >= Line.size())
        return false; // unterminated value
      ++P; // closing quote
      if (LName == "le")
        Le = Value;
      else
        KeyLabels += LName + "=" + Value + ";";
    }
    if (P >= Line.size())
      return false; // no closing brace
    ++P;            // '}'
    return true;
  }

  static bool parseValue(const std::string &Text, double &V) {
    if (Text == "+Inf" || Text == "Inf") {
      V = 1.0 / 0.0;
      return true;
    }
    if (Text == "-Inf") {
      V = -1.0 / 0.0;
      return true;
    }
    if (Text == "NaN") {
      V = 0.0;
      return true;
    }
    char *End = nullptr;
    V = std::strtod(Text.c_str(), &End);
    return End != Text.c_str() && *End == '\0';
  }

  void checkSample(const std::string &Line) {
    std::size_t P = 0;
    if (!isMetricNameStart(Line[0])) {
      fail("sample line must start with a metric name: '%s'", Line);
      return;
    }
    while (P < Line.size() && isMetricNameChar(Line[P]))
      ++P;
    const std::string Name = Line.substr(0, P);
    std::string Le;
    std::string KeyLabels;
    if (P < Line.size() && Line[P] == '{') {
      if (!parseLabels(Line, P, Le, KeyLabels)) {
        fail("malformed labels on '%s'", Name);
        return;
      }
    }
    if (P >= Line.size() || Line[P] != ' ') {
      fail("missing value after '%s'", Name);
      return;
    }
    ++P;
    // "name value" or "name value timestamp".
    std::size_t ValEnd = Line.find(' ', P);
    const std::string ValText =
        Line.substr(P, ValEnd == std::string::npos ? std::string::npos
                                                   : ValEnd - P);
    double Value = 0.0;
    if (!parseValue(ValText, Value)) {
      fail("unparsable sample value '%s'", ValText);
      return;
    }
    const std::string Family = familyOf(Name);
    SeenFamilies.insert(Family);
    ++Samples;
    const auto TypeIt = Types.find(Family);
    if (TypeIt == Types.end()) {
      fail("sample '%s' has no preceding TYPE line", Name);
      return;
    }
    if (TypeIt->second == "counter" && Value < 0.0)
      fail("counter '%s' has a negative value", Name);
    if (TypeIt->second == "histogram" && Name.size() > 7 &&
        Name.compare(Name.size() - 7, 7, "_bucket") == 0) {
      if (Le.empty()) {
        fail("histogram bucket '%s' lacks an le label", Name);
        return;
      }
      // Key bucket runs by family + labels-minus-le so interleaved
      // label sets (e.g. per-app) check independently.  The registry
      // emits each series' buckets contiguously in ascending le order.
      BucketState &S = Buckets[Family + "|" + KeyLabels];
      double LeV = 0.0;
      if (Le == "+Inf") {
        S.SawInf = true;
      } else if (!parseValue(Le, LeV)) {
        fail("unparsable le value '%s'", Le);
        return;
      } else if (S.Any && LeV <= S.LastLe) {
        fail("bucket le values not increasing in '%s'", Name);
      }
      if (S.Any && Value + 1e-9 < S.LastCount)
        fail("bucket counts decreasing in '%s'", Name);
      S.LastLe = Le == "+Inf" ? S.LastLe : LeV;
      S.LastCount = Value;
      S.Any = true;
    }
  }

  void finish() {
    for (const auto &KV : Buckets)
      if (KV.second.Any && !KV.second.SawInf) {
        ++LineNo;
        fail("histogram series '%s' never emitted an le=\"+Inf\" bucket",
             KV.first);
      }
  }
};

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Required;
  std::FILE *In = stdin;
  std::string Path = "<stdin>";
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--require") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --require needs a metric name\n");
        usage(2);
      }
      Required.push_back(Argv[++I]);
    } else if (Arg == "--help" || Arg == "-h") {
      usage(0);
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      usage(2);
    } else {
      In = std::fopen(Arg.c_str(), "r");
      if (!In) {
        std::fprintf(stderr, "error: cannot open '%s'\n", Arg.c_str());
        return 1;
      }
      Path = Arg;
    }
  }

  Checker C;
  std::string Line;
  int Ch;
  bool SawAnyLine = false;
  while (true) {
    Ch = std::fgetc(In);
    if (Ch == EOF || Ch == '\n') {
      if (!Line.empty() || Ch == '\n') {
        ++C.LineNo;
        SawAnyLine = true;
        if (!Line.empty()) {
          if (Line[0] == '#')
            C.checkComment(Line);
          else
            C.checkSample(Line);
        }
      }
      Line.clear();
      if (Ch == EOF)
        break;
    } else if (Ch != '\r') {
      Line.push_back(static_cast<char>(Ch));
    }
  }
  if (In != stdin)
    std::fclose(In);
  C.finish();

  if (!SawAnyLine) {
    std::fprintf(stderr, "cfv_metrics_check: %s: empty input\n", Path.c_str());
    return 1;
  }
  for (const std::string &R : Required)
    if (!C.SeenFamilies.count(R)) {
      std::fprintf(stderr,
                   "cfv_metrics_check: required metric '%s' missing\n",
                   R.c_str());
      ++C.Errors;
    }
  if (C.Errors) {
    std::fprintf(stderr, "cfv_metrics_check: %s: %d problem%s\n", Path.c_str(),
                 C.Errors, C.Errors == 1 ? "" : "s");
    return 1;
  }
  std::fprintf(stderr, "cfv_metrics_check: %s: OK (%d samples, %d families)\n",
               Path.c_str(), C.Samples,
               static_cast<int>(C.SeenFamilies.size()));
  return 0;
}
