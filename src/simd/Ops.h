//===- simd/Ops.h - Associative reduction operators -------------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Traits for the associative operators the paper's applications reduce
/// with: add (PageRank, Moldyn, aggregation sums), min (SSSP, WCC label
/// propagation), max (SSWP widest path), and mul (completeness).  Each
/// trait supplies the identity element, a scalar apply, and a lane-wise
/// vector combine; the masked horizontal reductions live in
/// simd/Reduce.h because they are backend-specific.
///
/// Note on floating point: add and mul are only associative up to
/// rounding, so vectorized results may differ from serial results in the
/// last bits.  This is inherent to the paper's technique (it reassociates
/// the reduction) and the tests account for it with tolerances.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SIMD_OPS_H
#define CFV_SIMD_OPS_H

#include "simd/Vec.h"

#include <cstdint>
#include <limits>

namespace cfv {
namespace simd {

struct OpAdd {
  static constexpr const char *name() { return "add"; }

  template <typename T> static constexpr T identity() { return T(0); }

  template <typename T> static T apply(T A, T B) { return A + B; }

  template <typename V> static V combine(V A, V B) { return A + B; }
};

struct OpMul {
  static constexpr const char *name() { return "mul"; }

  template <typename T> static constexpr T identity() { return T(1); }

  template <typename T> static T apply(T A, T B) { return A * B; }

  template <typename V> static V combine(V A, V B) { return A * B; }
};

struct OpMin {
  static constexpr const char *name() { return "min"; }

  /// +infinity for float (matching AVX-512's masked reduce blend value),
  /// INT32_MAX for int32_t.
  template <typename T> static constexpr T identity() {
    if constexpr (std::numeric_limits<T>::has_infinity)
      return std::numeric_limits<T>::infinity();
    else
      return std::numeric_limits<T>::max();
  }

  template <typename T> static T apply(T A, T B) { return B < A ? B : A; }

  template <typename V> static V combine(V A, V B) { return V::min(A, B); }
};

struct OpMax {
  static constexpr const char *name() { return "max"; }

  template <typename T> static constexpr T identity() {
    if constexpr (std::numeric_limits<T>::has_infinity)
      return -std::numeric_limits<T>::infinity();
    else
      return std::numeric_limits<T>::lowest();
  }

  template <typename T> static T apply(T A, T B) { return B > A ? B : A; }

  template <typename V> static V combine(V A, V B) { return V::max(A, B); }
};

/// Bitwise AND over integer lanes (e.g. intersecting permission or
/// reachability bitsets keyed by vertex).  Integer payloads only.
struct OpAnd {
  static constexpr const char *name() { return "and"; }

  template <typename T> static constexpr T identity() { return T(~T(0)); }

  template <typename T> static T apply(T A, T B) { return A & B; }

  template <typename V> static V combine(V A, V B) { return A & B; }
};

/// Bitwise OR over integer lanes (e.g. accumulating label or flag sets).
struct OpOr {
  static constexpr const char *name() { return "or"; }

  template <typename T> static constexpr T identity() { return T(0); }

  template <typename T> static T apply(T A, T B) { return A | B; }

  template <typename V> static V combine(V A, V B) { return A | B; }
};

} // namespace simd
} // namespace cfv

#endif // CFV_SIMD_OPS_H
