//===- net/Batcher.cpp - same-dataset micro-batching ----------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "net/Batcher.h"

#include <utility>

using namespace cfv;
using namespace cfv::net;
using cfv::service::Service;

void Batcher::emit(Group &&G, const Sink &Out) {
  PendingCount -= G.Items.size();
  ++FlushedBatches;
  FlushedRequests += static_cast<int64_t>(G.Items.size());
  Out(std::move(G.Items));
}

void Batcher::add(service::ServeRequest Req, Service::Completion Done,
                  double Now, const Sink &Out) {
  const service::DatasetKey Key = Service::datasetKeyFor(Req);
  Group &G = Groups[Key];
  if (G.Items.empty())
    G.Deadline = Now + Cfg.WindowSeconds;
  G.Items.push_back(Service::BatchItem{std::move(Req), std::move(Done)});
  ++PendingCount;
  if (static_cast<int>(G.Items.size()) >= Cfg.MaxBatch) {
    Group Full = std::move(G);
    Groups.erase(Key);
    emit(std::move(Full), Out);
  }
}

void Batcher::flushReady(double Now, const Sink &Out) {
  for (auto It = Groups.begin(); It != Groups.end();) {
    if (It->second.Deadline <= Now) {
      Group Ready = std::move(It->second);
      It = Groups.erase(It);
      emit(std::move(Ready), Out);
    } else {
      ++It;
    }
  }
}

void Batcher::flushAll(const Sink &Out) {
  for (auto It = Groups.begin(); It != Groups.end();) {
    Group Ready = std::move(It->second);
    It = Groups.erase(It);
    emit(std::move(Ready), Out);
  }
}

double Batcher::nextDeadline() const {
  double Earliest = 0.0;
  for (const auto &KV : Groups)
    if (Earliest == 0.0 || KV.second.Deadline < Earliest)
      Earliest = KV.second.Deadline;
  return Earliest;
}
