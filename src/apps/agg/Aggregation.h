//===- apps/agg/Aggregation.h - Hash-based group-by aggregation -*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-based aggregation computing the paper's §4.4 query
///
///   SELECT G, count(*), sum(V), sum(V*V) FROM R GROUP BY G
///
/// over two table designs and three vectorization strategies (Figure 13):
///
///   linear_serial  scalar build on a linear-probing table (baseline)
///   linear_mask    conflict-masking vectorized probing on the same table
///   bucket_mask    conflict-masking on a bucketized table whose 16 slots
///                  per bucket are claimed by SIMD lane id, so identical
///                  keys in one vector land in different slots (the
///                  conflict-mitigation design of Jiang & Agrawal ICS'17,
///                  reconstructed; see DESIGN.md §5.7)
///   linear_invec   in-vector reduction of the 16 incoming rows by key,
///                  then probing with only the distinct-key lanes
///   bucket_invec   in-vector reduction + the bucketized table
///
/// Aggregates are kept as floats (counts are exact to 2^24); the build
/// phase is timed, the per-group results are collected afterwards for
/// validation.  Keys must be non-negative (the table reserves -1/-2).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_APPS_AGG_AGGREGATION_H
#define CFV_APPS_AGG_AGGREGATION_H

#include "core/RunOptions.h"
#include "util/AlignedAlloc.h"
#include "util/Stats.h"

#include <cstdint>
#include <vector>

namespace cfv {
namespace apps {

/// The five versions of Figure 13.
enum class AggVersion {
  LinearSerial,
  LinearMask,
  BucketMask,
  LinearInvec,
  BucketInvec,
};

const char *versionName(AggVersion V);

/// One output group of the query.
struct GroupAgg {
  int32_t Key = 0;
  float Cnt = 0.0f;
  float Sum = 0.0f;
  float SumSq = 0.0f;
};

struct AggResult {
  /// Build-phase wall time (the measured quantity of Figure 13).
  double Seconds = 0.0;
  /// Millions of input rows aggregated per second.
  double MRowsPerSec = 0.0;
  /// Final groups, sorted by key (collected outside the timed region).
  std::vector<GroupAgg> Groups;
  double SimdUtil = 1.0; ///< mask versions
  double MeanD1 = 0.0;   ///< invec versions
  /// Per-pass D1 / useful-lane distributions (empty unless the version
  /// that ran records them and observability is compiled in).
  LaneHistogram D1Hist;
  LaneHistogram UtilHist;
  /// Pseudo-tiles of the key stream per pattern class, indexed by
  /// pattern::TileClass order (ConflictFree, Monotone, SmallAlphabet,
  /// HotBucket, General); all zero when classification was off or the
  /// version does not consult it.
  int64_t PatternTiles[5] = {};

  int64_t numGroups() const { return static_cast<int64_t>(Groups.size()); }
};

/// Aggregates \p N rows of (Keys, Vals) with strategy \p V, honoring the
/// thread count and invec policy in \p O.
AggResult runAggregation(const int32_t *Keys, const float *Vals, int64_t N,
                         int64_t Cardinality, AggVersion V,
                         const core::RunOptions &O);

/// Deprecated single-core convenience overload (adaptive policy); prefer
/// the RunOptions overload or cfv::run (core/Api.h).
AggResult runAggregation(const int32_t *Keys, const float *Vals, int64_t N,
                         int64_t Cardinality, AggVersion V);

/// The Algorithm 1/2 policy enum now lives in core/RunOptions.h; this
/// alias keeps the historical apps::InvecPolicy spelling working.
using InvecPolicy = core::InvecPolicy;

/// LinearInvec with an explicit Algorithm 1/2 policy (ablation entry
/// point; other versions ignore the policy).
AggResult runAggregationWithPolicy(const int32_t *Keys, const float *Vals,
                                   int64_t N, int64_t Cardinality,
                                   InvecPolicy Policy);

} // namespace apps
} // namespace cfv

#endif // CFV_APPS_AGG_AGGREGATION_H
