//===- bench/micro_invec.cpp - google-benchmark microbenchmarks -----------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Per-invocation overhead of the in-vector reduction primitives (§3.2's
// "about eight instructions per iteration, two for line 1"), measured
// with google-benchmark across duplicate densities, on every backend
// this build supports (scalar, AVX2, AVX-512).
// The benchmark argument is the index universe: smaller universe =>
// denser duplicates => larger D1.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/InvecReduce.h"
#include "masking/ConflictMask.h"
#include "simd/Traits.h"
#include "util/AlignedAlloc.h"
#include "util/Prng.h"

#include <benchmark/benchmark.h>

using namespace cfv;
using namespace cfv::core;
using namespace cfv::simd;

namespace {

constexpr int64_t kVectors = 4096;

/// Pre-generated index/value stream at a given duplicate density, sized
/// for the backend's own lane width.
template <typename B> struct Stream {
  static constexpr int kL = B::kLanes;
  static constexpr Mask16 kFull = BackendTraits<B>::kFullMask;

  AlignedVector<int32_t> Idx;
  AlignedVector<float> Val;

  explicit Stream(uint32_t Universe) {
    Xoshiro256 Rng(bench::benchSeed() ^ (Universe * 7919 + 1));
    Idx.resize(kVectors * kL);
    Val.resize(kVectors * kL);
    for (int64_t I = 0; I < kVectors * kL; ++I) {
      Idx[I] = static_cast<int32_t>(Rng.nextBounded(Universe));
      Val[I] = Rng.nextFloat();
    }
  }
};

template <typename B> void bmConflictFreeSubset(benchmark::State &State) {
  const Stream<B> S(static_cast<uint32_t>(State.range(0)));
  int64_t V = 0;
  for (auto _ : State) {
    const auto Idx =
        VecI32<B>::load(S.Idx.data() + (V % kVectors) * Stream<B>::kL);
    benchmark::DoNotOptimize(conflictFreeSubset(Stream<B>::kFull, Idx));
    ++V;
  }
}

template <typename B> void bmInvecReduce(benchmark::State &State) {
  const Stream<B> S(static_cast<uint32_t>(State.range(0)));
  int64_t V = 0;
  uint64_t Distinct = 0;
  for (auto _ : State) {
    const auto Idx =
        VecI32<B>::load(S.Idx.data() + (V % kVectors) * Stream<B>::kL);
    auto Data =
        VecF32<B>::load(S.Val.data() + (V % kVectors) * Stream<B>::kL);
    const InvecResult R = invecReduce<OpAdd>(Stream<B>::kFull, Idx, Data);
    benchmark::DoNotOptimize(Data);
    Distinct += static_cast<uint64_t>(R.Distinct);
    ++V;
  }
  State.counters["meanD1"] =
      static_cast<double>(Distinct) / static_cast<double>(State.iterations());
}

template <typename B> void bmInvecReduce2(benchmark::State &State) {
  const Stream<B> S(static_cast<uint32_t>(State.range(0)));
  int64_t V = 0;
  uint64_t Distinct = 0;
  for (auto _ : State) {
    const auto Idx =
        VecI32<B>::load(S.Idx.data() + (V % kVectors) * Stream<B>::kL);
    auto Data =
        VecF32<B>::load(S.Val.data() + (V % kVectors) * Stream<B>::kL);
    const Invec2Result R = invecReduce2<OpAdd>(Stream<B>::kFull, Idx, Data);
    benchmark::DoNotOptimize(Data);
    Distinct += static_cast<uint64_t>(R.Distinct);
    ++V;
  }
  State.counters["meanD2"] =
      static_cast<double>(Distinct) / static_cast<double>(State.iterations());
}

template <typename B> void bmMaskedReduceAdd(benchmark::State &State) {
  const Stream<B> S(16);
  int64_t V = 0;
  // Alternating half-active mask, clipped to the backend's lanes.
  const Mask16 M = static_cast<Mask16>(0x5A5A & Stream<B>::kFull);
  for (auto _ : State) {
    const auto Data =
        VecF32<B>::load(S.Val.data() + (V % kVectors) * Stream<B>::kL);
    benchmark::DoNotOptimize(maskedReduce<OpAdd>(M, Data));
    ++V;
  }
}

template <typename B> void bmAccumulateScatter(benchmark::State &State) {
  // Distinct indices so accumulateScatter's precondition holds.
  AlignedVector<float> Arr(B::kLanes * 4, 0.0f);
  alignas(64) int32_t IdxA[B::kLanes];
  for (int I = 0; I < B::kLanes; ++I)
    IdxA[I] = I * 4;
  const auto Idx = VecI32<B>::load(IdxA);
  const auto Data = VecF32<B>::broadcast(1.0f);
  for (auto _ : State) {
    accumulateScatter<OpAdd>(Stream<B>::kFull, Idx, Data, Arr.data());
    benchmark::DoNotOptimize(Arr.data());
  }
}

/// End-to-end histogram vector step: invec versus conflict-masking, the
/// §3.3 overhead in its application context.
template <typename B> void bmHistogramInvec(benchmark::State &State) {
  const Stream<B> S(static_cast<uint32_t>(State.range(0)));
  AlignedVector<float> Arr(4096, 0.0f);
  int64_t V = 0;
  for (auto _ : State) {
    const auto Idx =
        VecI32<B>::load(S.Idx.data() + (V % kVectors) * Stream<B>::kL);
    auto Data = VecF32<B>::broadcast(1.0f);
    const InvecResult R = invecReduce<OpAdd>(Stream<B>::kFull, Idx, Data);
    accumulateScatter<OpAdd>(R.Ret, Idx, Data, Arr.data());
    ++V;
  }
  benchmark::DoNotOptimize(Arr.data());
}

template <typename B> void bmHistogramMask(benchmark::State &State) {
  const Stream<B> S(static_cast<uint32_t>(State.range(0)));
  AlignedVector<float> Arr(4096, 0.0f);
  using IVec = VecI32<B>;
  using FVec = VecF32<B>;
  int64_t V = 0;
  for (auto _ : State) {
    // One conflict-masked "round" over a single vector (process until
    // every lane commits), the unit the masking approach repeats.
    const auto Idx =
        IVec::load(S.Idx.data() + (V % kVectors) * Stream<B>::kL);
    Mask16 Todo = Stream<B>::kFull;
    while (Todo) {
      const Mask16 Safe = conflictFreeSubset(Todo, Idx);
      const FVec Old = FVec::maskGather(FVec::zero(), Safe, Arr.data(), Idx);
      (Old + FVec::broadcast(1.0f)).maskScatter(Safe, Arr.data(), Idx);
      Todo = static_cast<Mask16>(Todo & ~Safe);
    }
    ++V;
  }
  benchmark::DoNotOptimize(Arr.data());
}

} // namespace

#define CFV_BENCH_ALL(Fn)                                                    \
  BENCHMARK_TEMPLATE(Fn, backend::Scalar)                                    \
      ->Arg(2)                                                               \
      ->Arg(8)                                                               \
      ->Arg(4096);                                                           \
  CFV_BENCH_AVX2(Fn)                                                         \
  CFV_BENCH_AVX512(Fn)

#if CFV_HAVE_AVX2
#define CFV_BENCH_AVX2(Fn)                                                   \
  BENCHMARK_TEMPLATE(Fn, backend::Avx2)->Arg(2)->Arg(8)->Arg(4096);
#else
#define CFV_BENCH_AVX2(Fn)
#endif

#if CFV_HAVE_AVX512
#define CFV_BENCH_AVX512(Fn)                                                 \
  BENCHMARK_TEMPLATE(Fn, backend::Avx512)->Arg(2)->Arg(8)->Arg(4096);
#else
#define CFV_BENCH_AVX512(Fn)
#endif

CFV_BENCH_ALL(bmConflictFreeSubset)
CFV_BENCH_ALL(bmInvecReduce)
CFV_BENCH_ALL(bmInvecReduce2)
CFV_BENCH_ALL(bmHistogramInvec)
CFV_BENCH_ALL(bmHistogramMask)

BENCHMARK_TEMPLATE(bmMaskedReduceAdd, backend::Scalar);
BENCHMARK_TEMPLATE(bmAccumulateScatter, backend::Scalar);
#if CFV_HAVE_AVX2
BENCHMARK_TEMPLATE(bmMaskedReduceAdd, backend::Avx2);
BENCHMARK_TEMPLATE(bmAccumulateScatter, backend::Avx2);
#endif
#if CFV_HAVE_AVX512
BENCHMARK_TEMPLATE(bmMaskedReduceAdd, backend::Avx512);
BENCHMARK_TEMPLATE(bmAccumulateScatter, backend::Avx512);
#endif
