//===- workload/KeyGen.cpp - Skewed group-by key generators --------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "workload/KeyGen.h"

#include "util/Prng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

using namespace cfv;
using namespace cfv::workload;

const char *workload::distName(KeyDist D) {
  switch (D) {
  case KeyDist::HeavyHitter:
    return "heavy hitter";
  case KeyDist::Zipf:
    return "Zipf";
  case KeyDist::MovingCluster:
    return "moving cluster";
  case KeyDist::Uniform:
    return "uniform";
  }
  return "unknown";
}

namespace {

AlignedVector<int32_t> genHeavyHitter(int64_t N, int32_t C,
                                      Xoshiro256 &Rng) {
  // "one value account[s] for 50% of the group-by keys, while the other
  // values are chosen uniformly from the other group-by keys."
  AlignedVector<int32_t> Keys(N);
  const int32_t Hot = 0;
  for (int64_t I = 0; I < N; ++I) {
    if (Rng.nextFloat() < 0.5f || C == 1)
      Keys[I] = Hot;
    else
      Keys[I] = 1 + static_cast<int32_t>(
                        Rng.nextBounded(static_cast<uint32_t>(C - 1)));
  }
  return Keys;
}

AlignedVector<int32_t> genZipf(int64_t N, int32_t C, Xoshiro256 &Rng) {
  // Zipf with exponent 0.5 via CDF inversion (binary search).  The CDF
  // is built once per call; C is at most a few hundred thousand in the
  // Figure 13 sweep.
  constexpr double S = 0.5;
  std::vector<double> Cdf(C);
  double Acc = 0.0;
  for (int32_t K = 0; K < C; ++K) {
    Acc += 1.0 / std::pow(static_cast<double>(K + 1), S);
    Cdf[K] = Acc;
  }
  const double Total = Acc;
  AlignedVector<int32_t> Keys(N);
  for (int64_t I = 0; I < N; ++I) {
    const double U = Rng.nextDouble() * Total;
    const auto It = std::lower_bound(Cdf.begin(), Cdf.end(), U);
    Keys[I] = static_cast<int32_t>(It - Cdf.begin());
  }
  return Keys;
}

AlignedVector<int32_t> genMovingCluster(int64_t N, int32_t C,
                                        Xoshiro256 &Rng) {
  // Keys come from a window of 64 consecutive values that slides
  // linearly from the bottom to the top of the domain.
  constexpr int32_t kWindow = 64;
  AlignedVector<int32_t> Keys(N);
  const int32_t Span = C > kWindow ? C - kWindow : 0;
  for (int64_t I = 0; I < N; ++I) {
    const int32_t Base = static_cast<int32_t>(
        N > 1 ? (static_cast<double>(I) / static_cast<double>(N - 1)) * Span
              : 0);
    const int32_t Width = std::min<int32_t>(kWindow, C);
    Keys[I] =
        Base + static_cast<int32_t>(
                   Rng.nextBounded(static_cast<uint32_t>(Width)));
  }
  return Keys;
}

AlignedVector<int32_t> genUniformKeys(int64_t N, int32_t C,
                                      Xoshiro256 &Rng) {
  AlignedVector<int32_t> Keys(N);
  for (int64_t I = 0; I < N; ++I)
    Keys[I] = static_cast<int32_t>(
        Rng.nextBounded(static_cast<uint32_t>(C)));
  return Keys;
}

} // namespace

AlignedVector<int32_t> workload::genKeys(KeyDist D, int64_t N,
                                         int32_t Cardinality,
                                         uint64_t Seed) {
  assert(Cardinality > 0 && "cardinality must be positive");
  Xoshiro256 Rng(Seed);
  switch (D) {
  case KeyDist::HeavyHitter:
    return genHeavyHitter(N, Cardinality, Rng);
  case KeyDist::Zipf:
    return genZipf(N, Cardinality, Rng);
  case KeyDist::MovingCluster:
    return genMovingCluster(N, Cardinality, Rng);
  case KeyDist::Uniform:
    return genUniformKeys(N, Cardinality, Rng);
  }
  return {};
}

AlignedVector<float> workload::genValues(int64_t N, uint64_t Seed) {
  Xoshiro256 Rng(Seed);
  AlignedVector<float> Vals(N);
  for (float &V : Vals)
    V = Rng.nextFloat();
  return Vals;
}
