//===- tests/inspector_test.cpp - Tiling and grouping inspectors ---------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "inspector/Grouping.h"
#include "inspector/Tiling.h"

#include <algorithm>
#include <set>

using namespace cfv;
using namespace cfv::inspector;
// The grouping tests below exercise the default (widest) schedule width.
constexpr int kLanes = cfv::simd::kMaxLanes;

namespace {

AlignedVector<int32_t> randomDsts(int64_t M, int32_t N, uint64_t Seed) {
  Xoshiro256 Rng(Seed);
  AlignedVector<int32_t> Dst(M);
  for (int32_t &D : Dst)
    D = static_cast<int32_t>(Rng.nextBounded(static_cast<uint32_t>(N)));
  return Dst;
}

/// Every edge id appears exactly once in Order.
void expectPermutation(const AlignedVector<int32_t> &Order, int64_t M) {
  ASSERT_EQ(static_cast<int64_t>(Order.size()), M);
  std::vector<bool> Seen(M, false);
  for (int32_t E : Order) {
    ASSERT_GE(E, 0);
    ASSERT_LT(E, M);
    ASSERT_FALSE(Seen[E]) << "edge " << E << " duplicated";
    Seen[E] = true;
  }
}

} // namespace

TEST(Tiling, ProducesAPermutation) {
  const auto Dst = randomDsts(5000, 1 << 12, 0xA);
  const TilingResult T = tileByDestination(Dst.data(), 5000, 1 << 12, 8);
  expectPermutation(T.Order, 5000);
}

TEST(Tiling, TilesAreDestinationBlocks) {
  const int32_t N = 1 << 10;
  const auto Dst = randomDsts(8000, N, 0xB);
  const int BlockBits = 7;
  const TilingResult T = tileByDestination(Dst.data(), 8000, N, BlockBits);
  ASSERT_EQ(T.numTiles(), N >> BlockBits);
  for (int64_t Tile = 0; Tile < T.numTiles(); ++Tile)
    for (int64_t P = T.TileBegin[Tile]; P < T.TileBegin[Tile + 1]; ++P)
      ASSERT_EQ(Dst[T.Order[P]] >> BlockBits, Tile)
          << "edge in wrong tile";
}

TEST(Tiling, IsStableWithinTiles) {
  // Counting sort is stable: original order preserved inside a tile.
  const auto Dst = randomDsts(3000, 256, 0xC);
  const TilingResult T = tileByDestination(Dst.data(), 3000, 256, 4);
  for (int64_t Tile = 0; Tile < T.numTiles(); ++Tile)
    for (int64_t P = T.TileBegin[Tile] + 1; P < T.TileBegin[Tile + 1]; ++P)
      ASSERT_LT(T.Order[P - 1], T.Order[P]);
}

TEST(Tiling, EmptyEdgeList) {
  const TilingResult T = tileByDestination(nullptr, 0, 64, 4);
  EXPECT_EQ(T.Order.size(), 0u);
  EXPECT_EQ(T.TileBegin.front(), 0);
  EXPECT_EQ(T.TileBegin.back(), 0);
}

TEST(Tiling, ApplyPermutationReordersPayloads) {
  AlignedVector<int32_t> Order = {2, 0, 1};
  const float Vals[3] = {10.0f, 20.0f, 30.0f};
  const auto Out = applyPermutation(Order, Vals);
  EXPECT_EQ(Out[0], 30.0f);
  EXPECT_EQ(Out[1], 10.0f);
  EXPECT_EQ(Out[2], 20.0f);
}

namespace {

/// Structural validation shared by all grouping tests.
void validateGrouping(const GroupingResult &G,
                      const AlignedVector<int32_t> &Dst, int64_t M) {
  // Every edge placed exactly once; padding slots are -1.
  std::vector<bool> Seen(M, false);
  int64_t Placed = 0;
  ASSERT_EQ(static_cast<int64_t>(G.Slot.size()), G.NumGroups * kLanes);
  for (int64_t Gi = 0; Gi < G.NumGroups; ++Gi) {
    std::set<int32_t> DstsInGroup;
    for (int L = 0; L < kLanes; ++L) {
      const int32_t E = G.Slot[Gi * kLanes + L];
      const bool Valid = simd::testLane(G.GroupMask[Gi], L);
      ASSERT_EQ(Valid, E >= 0) << "mask/slot mismatch";
      if (E < 0)
        continue;
      ASSERT_LT(E, M);
      ASSERT_FALSE(Seen[E]);
      Seen[E] = true;
      ++Placed;
      // The defining invariant: destinations distinct within a group.
      ASSERT_TRUE(DstsInGroup.insert(Dst[E]).second)
          << "group " << Gi << " has duplicate destination " << Dst[E];
    }
  }
  ASSERT_EQ(Placed, M);
  ASSERT_EQ(G.NumEdges, M);
}

} // namespace

TEST(Grouping, SingleTileRandomInput) {
  for (const uint32_t N : {2u, 16u, 256u, 4096u}) {
    const int64_t M = 4000;
    const auto Dst = randomDsts(M, static_cast<int32_t>(N), N);
    const GroupingResult G =
        groupConflictFree(Dst.data(), M, static_cast<int32_t>(N));
    validateGrouping(G, Dst, M);
  }
}

TEST(Grouping, AllSameDestinationGivesOneLaneGroups) {
  AlignedVector<int32_t> Dst(64, 5);
  const GroupingResult G = groupConflictFree(Dst.data(), 64, 16);
  validateGrouping(G, Dst, 64);
  EXPECT_EQ(G.NumGroups, 64);
  EXPECT_NEAR(G.packingEfficiency(), 1.0 / 16.0, 1e-9);
}

TEST(Grouping, DistinctDestinationsPackFully) {
  AlignedVector<int32_t> Dst(64);
  for (int I = 0; I < 64; ++I)
    Dst[I] = I;
  const GroupingResult G = groupConflictFree(Dst.data(), 64, 64);
  validateGrouping(G, Dst, 64);
  EXPECT_EQ(G.NumGroups, 4);
  EXPECT_DOUBLE_EQ(G.packingEfficiency(), 1.0);
}

TEST(Grouping, RespectsTileBoundaries) {
  const int32_t N = 256;
  const int64_t M = 3000;
  const auto Dst = randomDsts(M, N, 0xD);
  const TilingResult T = tileByDestination(Dst.data(), M, N, 5);
  const GroupingResult G = groupConflictFree(Dst.data(), N, T);
  validateGrouping(G, Dst, M);
  // Groups must not mix destinations from different tiles.
  for (int64_t Gi = 0; Gi < G.NumGroups; ++Gi) {
    int32_t Tile = -1;
    for (int L = 0; L < kLanes; ++L) {
      const int32_t E = G.Slot[Gi * kLanes + L];
      if (E < 0)
        continue;
      const int32_t MyTile = Dst[E] >> 5;
      if (Tile < 0)
        Tile = MyTile;
      ASSERT_EQ(MyTile, Tile) << "group spans tiles";
    }
  }
}

TEST(Grouping, ApplyGroupingPadsWithGivenValue) {
  AlignedVector<int32_t> Dst(3, 7); // three identical dsts -> 3 groups
  const GroupingResult G = groupConflictFree(Dst.data(), 3, 8);
  const int32_t Payload[3] = {100, 200, 300};
  const auto Out = applyGrouping(G, Payload, int32_t(-7));
  ASSERT_EQ(Out.size(), static_cast<std::size_t>(G.NumGroups) * kLanes);
  int64_t Pads = 0, Reals = 0;
  for (int32_t X : Out) {
    if (X == -7)
      ++Pads;
    else
      ++Reals;
  }
  EXPECT_EQ(Reals, 3);
  EXPECT_EQ(Pads, G.NumGroups * kLanes - 3);
}

TEST(Grouping, EmptyInput) {
  const GroupingResult G = groupConflictFree(nullptr, 0, 8);
  EXPECT_EQ(G.NumGroups, 0);
  EXPECT_EQ(G.NumEdges, 0);
  EXPECT_DOUBLE_EQ(G.packingEfficiency(), 1.0);
}

TEST(PairGrouping, AtomsUniqueAcrossBothEndpointVectors) {
  const int32_t N = 64;
  const int64_t M = 2000;
  Xoshiro256 Rng(0xE);
  AlignedVector<int32_t> I(M), J(M);
  for (int64_t P = 0; P < M; ++P) {
    I[P] = static_cast<int32_t>(Rng.nextBounded(N));
    J[P] = static_cast<int32_t>(Rng.nextBounded(N));
  }
  TilingResult T;
  T.BlockBits = 31;
  T.Order.resize(M);
  for (int64_t P = 0; P < M; ++P)
    T.Order[P] = static_cast<int32_t>(P);
  T.TileBegin = {0, M};

  const GroupingResult G = groupConflictFreePairs(I.data(), J.data(), N, T);
  ASSERT_EQ(G.NumEdges, M);
  std::vector<bool> Seen(M, false);
  int64_t Placed = 0;
  for (int64_t Gi = 0; Gi < G.NumGroups; ++Gi) {
    std::set<int32_t> Atoms;
    for (int L = 0; L < kLanes; ++L) {
      const int32_t E = G.Slot[Gi * kLanes + L];
      if (E < 0)
        continue;
      ASSERT_FALSE(Seen[E]);
      Seen[E] = true;
      ++Placed;
      // Both endpoints must be new to the group (unless a self-pair).
      if (I[E] != J[E]) {
        ASSERT_TRUE(Atoms.insert(I[E]).second)
            << "group " << Gi << ": endpoint " << I[E] << " repeated";
        ASSERT_TRUE(Atoms.insert(J[E]).second)
            << "group " << Gi << ": endpoint " << J[E] << " repeated";
      }
    }
  }
  EXPECT_EQ(Placed, M);
}
