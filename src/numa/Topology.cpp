//===- numa/Topology.cpp - NUMA topology probe and shard plans ------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "numa/Topology.h"

#include "obs/Metrics.h"
#include "util/Env.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

using namespace cfv;
using namespace cfv::numa;

namespace {

Status parseError(std::string Msg) {
  return Status::error(ErrorCode::ParseError, std::move(Msg));
}

/// Parses one sysfs cpulist ("0-3,8,10-11") into CPU ids.
Expected<std::vector<int>> parseCpuList(const std::string &List) {
  std::vector<int> Cpus;
  std::stringstream In(List);
  std::string Piece;
  while (std::getline(In, Piece, ',')) {
    if (Piece.empty())
      return parseError("empty cpulist element in '" + List + "'");
    char *End = nullptr;
    const long Lo = std::strtol(Piece.c_str(), &End, 10);
    long Hi = Lo;
    if (End == Piece.c_str() || Lo < 0)
      return parseError("bad cpu id in '" + Piece + "'");
    if (*End == '-') {
      const char *HiStr = End + 1;
      Hi = std::strtol(HiStr, &End, 10);
      if (End == HiStr || Hi < Lo)
        return parseError("bad cpu range '" + Piece + "'");
    }
    if (*End != '\0')
      return parseError("trailing junk in cpulist element '" + Piece + "'");
    // Cap insane ranges so a typo cannot allocate gigabytes.
    if (Hi - Lo >= 4096)
      return parseError("cpu range '" + Piece + "' too wide");
    for (long C = Lo; C <= Hi; ++C)
      Cpus.push_back(static_cast<int>(C));
  }
  if (Cpus.empty())
    return parseError("empty cpulist '" + List + "'");
  return Cpus;
}

/// One node spanning every hardware thread: the portable fallback.
Topology singleNodeTopology() {
  const unsigned H = std::thread::hardware_concurrency();
  Topology T;
  T.NodeCpus.emplace_back();
  for (unsigned C = 0; C < std::max(H, 1u); ++C)
    T.NodeCpus[0].push_back(static_cast<int>(C));
  return T;
}

/// Probes /sys/devices/system/node/node<k>/cpulist, libnuma-free.
/// Missing sysfs (non-Linux, masked /sys) or a single exposed node both
/// land on the single-node fallback.
Topology probeSysfs() {
  Topology T;
  for (int Node = 0;; ++Node) {
    char Path[128];
    std::snprintf(Path, sizeof(Path),
                  "/sys/devices/system/node/node%d/cpulist", Node);
    std::ifstream In(Path);
    if (!In.is_open())
      break;
    std::string Line;
    std::getline(In, Line);
    // Memory-only nodes (CXL expanders) expose an empty cpulist; they
    // hold no workers, so skip them rather than planning an empty shard.
    if (Line.empty())
      continue;
    Expected<std::vector<int>> Cpus = parseCpuList(Line);
    if (!Cpus.ok())
      continue;
    T.NodeCpus.push_back(std::move(*Cpus));
  }
  if (T.NodeCpus.empty())
    return singleNodeTopology();
  return T;
}

std::mutex OverrideMu;
std::shared_ptr<const Topology> TestOverride; // guarded by OverrideMu

/// Cache for the CFV_NUMA_TOPOLOGY spec: re-parsed only when the value
/// changes (tests flip it between cases).
struct SpecCache {
  std::string Spec;
  bool Valid = false;
  Topology T;
};
SpecCache EnvCache; // guarded by OverrideMu

thread_local bool ModeOverrideSet = false;
thread_local Mode ModeOverride = Mode::Auto;

} // namespace

Expected<Topology> numa::parseTopologySpec(const std::string &Spec) {
  Topology T;
  std::stringstream In(Spec);
  std::string NodeList;
  while (std::getline(In, NodeList, ';')) {
    Expected<std::vector<int>> Cpus = parseCpuList(NodeList);
    if (!Cpus.ok())
      return Cpus.status();
    T.NodeCpus.push_back(std::move(*Cpus));
  }
  if (T.NodeCpus.empty())
    return parseError("CFV_NUMA_TOPOLOGY spec is empty");
  return T;
}

Topology numa::currentTopology() {
  {
    std::lock_guard<std::mutex> Lock(OverrideMu);
    if (TestOverride)
      return *TestOverride;
    if (const char *Spec = std::getenv("CFV_NUMA_TOPOLOGY");
        Spec && *Spec) {
      if (EnvCache.Spec != Spec) {
        EnvCache.Spec = Spec;
        Expected<Topology> T = parseTopologySpec(Spec);
        EnvCache.Valid = T.ok();
        if (T.ok())
          EnvCache.T = std::move(*T);
        else
          env::detail::noteOnce("CFV_NUMA_TOPOLOGY",
                                std::string("CFV_NUMA_TOPOLOGY ignored: ") +
                                    T.status().message());
      }
      if (EnvCache.Valid)
        return EnvCache.T;
    }
  }
  static const Topology Probed = probeSysfs();
  return Probed;
}

void numa::setTopologyForTest(const Topology *T) {
  std::lock_guard<std::mutex> Lock(OverrideMu);
  TestOverride = T ? std::make_shared<const Topology>(*T) : nullptr;
}

const char *numa::modeName(Mode M) {
  switch (M) {
  case Mode::Off:
    return "off";
  case Mode::Auto:
    return "auto";
  case Mode::Interleave:
    return "interleave";
  }
  return "unknown";
}

Mode numa::resolveMode() {
  if (ModeOverrideSet)
    return ModeOverride;
  const char *V = std::getenv("CFV_NUMA");
  if (!V || !*V)
    return Mode::Auto;
  if (!std::strcmp(V, "off") || !std::strcmp(V, "0"))
    return Mode::Off;
  if (!std::strcmp(V, "auto"))
    return Mode::Auto;
  if (!std::strcmp(V, "interleave"))
    return Mode::Interleave;
  env::detail::noteOnce("CFV_NUMA", std::string("CFV_NUMA='") + V +
                                        "' is not off|auto|interleave; "
                                        "using auto");
  return Mode::Auto;
}

ScopedMode::ScopedMode() = default;

ScopedMode::ScopedMode(Mode M)
    : Engaged(true), HadPrev(ModeOverrideSet), Prev(ModeOverride) {
  ModeOverrideSet = true;
  ModeOverride = M;
}

ScopedMode::~ScopedMode() {
  if (!Engaged)
    return;
  ModeOverrideSet = HadPrev;
  ModeOverride = Prev;
}

ShardPlan numa::planShards(int Threads, const Topology &T, Mode M) {
  ShardPlan P;
  P.Threads = std::max(Threads, 1);
  P.PlanMode = M;
  P.NodeOfWorker.assign(P.Threads, 0);
  P.CpuOfWorker.assign(P.Threads, -1);
  const int AvailNodes = std::max(T.nodes(), 1);
  if (M == Mode::Off || P.Threads <= 1 || AvailNodes <= 1) {
    P.Nodes = 1;
    P.WorkersOfNode.resize(1);
    for (int W = 0; W < P.Threads; ++W)
      P.WorkersOfNode[0].push_back(W);
    return P;
  }
  // Never spread fewer workers than nodes: tiny runs stay on one node.
  const int Nodes = std::min(AvailNodes, P.Threads);
  P.Nodes = Nodes;
  P.WorkersOfNode.resize(Nodes);
  std::vector<int> NextCpu(Nodes, 0);
  for (int W = 0; W < P.Threads; ++W) {
    // Auto: contiguous runs of workers per node (node n owns workers
    // [n*T/N, (n+1)*T/N), hence one contiguous tile shard).  Interleave:
    // round-robin, spreading consecutive shards across nodes.
    const int Node = M == Mode::Interleave
                         ? W % Nodes
                         : std::min(Nodes - 1, W * Nodes / P.Threads);
    P.NodeOfWorker[W] = Node;
    P.WorkersOfNode[Node].push_back(W);
    const std::vector<int> &Cpus = T.NodeCpus[Node];
    if (!Cpus.empty())
      P.CpuOfWorker[W] =
          Cpus[static_cast<size_t>(NextCpu[Node]++ % Cpus.size())];
  }
  // Worker 0 is the caller; the engine never pins it.
  P.CpuOfWorker[0] = -1;
  return P;
}

std::shared_ptr<const ShardPlan> numa::currentPlan(int Threads) {
  if (Threads <= 1)
    return nullptr;
  const Mode M = resolveMode();
  if (M == Mode::Off)
    return nullptr;
  ShardPlan P = planShards(Threads, currentTopology(), M);
  if (!P.active())
    return nullptr;
  return std::make_shared<const ShardPlan>(std::move(P));
}

bool numa::pinThreadToCpu(int Cpu) {
#if defined(__linux__)
  if (Cpu < 0)
    return false;
  cpu_set_t Set;
  CPU_ZERO(&Set);
  CPU_SET(static_cast<unsigned>(Cpu) % CPU_SETSIZE, &Set);
  return sched_setaffinity(0, sizeof(Set), &Set) == 0;
#else
  (void)Cpu;
  return false;
#endif
}

void numa::unpinThread() {
#if defined(__linux__)
  cpu_set_t Set;
  CPU_ZERO(&Set);
  const unsigned H = std::max(std::thread::hardware_concurrency(), 1u);
  for (unsigned C = 0; C < H && C < CPU_SETSIZE; ++C)
    CPU_SET(C, &Set);
  (void)sched_setaffinity(0, sizeof(Set), &Set);
#endif
}

std::vector<int64_t>
numa::shardedBoundsFromTiles(const std::vector<int64_t> &TileBegin,
                             const ShardPlan &Plan) {
  const int Threads = Plan.Threads;
  const int64_t NumTiles = static_cast<int64_t>(TileBegin.size()) - 1;
  const int64_t N = TileBegin.empty() ? 0 : TileBegin.back();
  std::vector<int64_t> Bounds(static_cast<size_t>(Threads) + 1, 0);
  Bounds[Threads] = N;
  if (NumTiles <= 0 || Threads <= 1)
    return Bounds;

  // Level 1: contiguous node shards, proportional to worker counts,
  // boundaries snapped to tile starts.  Level 2: each node's workers
  // split their shard the same way.  Worker bounds are emitted in
  // *worker-id* order; under Auto that order walks the node shards
  // contiguously, under Interleave the node shards themselves interleave
  // across worker ids (the chunker still sees monotone bounds because
  // interleave keeps the flat worker-order split, only the CPUs rotate).
  if (Plan.PlanMode == Mode::Interleave) {
    // Flat split; node interleaving comes from the CPU assignment.
    int64_t Tile = 0;
    for (int W = 1; W < Threads; ++W) {
      const int64_t Target = N * W / Threads;
      while (Tile < NumTiles && TileBegin[Tile] < Target)
        ++Tile;
      Bounds[W] = std::max(TileBegin[Tile], Bounds[W - 1]);
    }
    return Bounds;
  }

  // Auto: node shard n covers tiles so that its element share matches
  // its worker share; within the shard, even element split over the
  // node's workers, snapped to tile starts.
  int64_t Tile = 0;
  int WorkersSeen = 0;
  int64_t ShardLo = 0;
  for (int Node = 0; Node < Plan.Nodes; ++Node) {
    const int NodeWorkers =
        static_cast<int>(Plan.WorkersOfNode[Node].size());
    WorkersSeen += NodeWorkers;
    // Node shard upper bound (element index, snapped up to a tile start).
    int64_t ShardHi = N;
    if (Node + 1 < Plan.Nodes) {
      const int64_t Target = N * WorkersSeen / Threads;
      while (Tile < NumTiles && TileBegin[Tile] < Target)
        ++Tile;
      ShardHi = std::max(TileBegin[Tile], ShardLo);
    }
    // Split [ShardLo, ShardHi) over this node's workers.
    int64_t InnerTile = 0;
    while (InnerTile < NumTiles && TileBegin[InnerTile] < ShardLo)
      ++InnerTile;
    int64_t Prev = ShardLo;
    for (int K = 0; K < NodeWorkers; ++K) {
      const int W = Plan.WorkersOfNode[Node][K];
      Bounds[W] = Prev;
      if (K + 1 < NodeWorkers) {
        const int64_t Target =
            ShardLo + (ShardHi - ShardLo) * (K + 1) / NodeWorkers;
        while (InnerTile < NumTiles && TileBegin[InnerTile] < Target)
          ++InnerTile;
        Prev = std::min(ShardHi, std::max(TileBegin[InnerTile], Prev));
      } else {
        Prev = ShardHi;
      }
    }
    ShardLo = ShardHi;
  }
  Bounds[Threads] = N;
  return Bounds;
}

void numa::recordShardMetrics(const ShardPlan &Plan,
                              const std::vector<int64_t> &Bounds) {
  if (!obs::enabled())
    return;
  static const bool GaugeRegistered = [] {
    obs::MetricsRegistry::instance().gauge(
        "cfv_numa_nodes",
        [] { return static_cast<double>(currentTopology().nodes()); }, "",
        "NUMA nodes the topology probe (or synthetic seam) reports");
    return true;
  }();
  (void)GaugeRegistered;
  static obs::Counter &Shards = obs::MetricsRegistry::instance().counter(
      "cfv_numa_sharded_runs_total", "",
      "Kernel runs executed under an active NUMA shard plan");
  Shards.inc();
  static obs::Histogram &Span = obs::MetricsRegistry::instance().histogram(
      "cfv_numa_shard_elements",
      {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}, "",
      "Elements per NUMA node shard under an active plan");
  for (int Node = 0; Node < Plan.Nodes; ++Node) {
    int64_t Lo = -1, Hi = -1;
    for (const int W : Plan.WorkersOfNode[Node]) {
      if (W + 1 >= static_cast<int>(Bounds.size()))
        continue;
      Lo = Lo < 0 ? Bounds[W] : std::min(Lo, Bounds[W]);
      Hi = std::max(Hi, Bounds[W + 1]);
    }
    if (Hi > Lo && Lo >= 0)
      Span.observe(static_cast<double>(Hi - Lo));
  }
}

void numa::noteCrossNodeMerge(double Seconds, int64_t Bytes) {
  if (!obs::enabled())
    return;
  static obs::Counter &Merges = obs::MetricsRegistry::instance().counter(
      "cfv_numa_crossnode_merges_total", "",
      "Cross-node merge folds performed by the two-level tree merge");
  static obs::Counter &Ns = obs::MetricsRegistry::instance().counter(
      "cfv_numa_crossnode_merge_ns_total", "",
      "Nanoseconds spent folding node heads across nodes");
  static obs::Counter &Remote = obs::MetricsRegistry::instance().counter(
      "cfv_numa_remote_bytes_total", "",
      "Estimated bytes moved across NUMA nodes by cross-node merges");
  Merges.inc();
  Ns.inc(static_cast<uint64_t>(Seconds * 1e9));
  Remote.inc(static_cast<uint64_t>(Bytes > 0 ? Bytes : 0));
}

void numa::notePin(bool Ok) {
  if (!obs::enabled())
    return;
  static obs::Counter &Pins = obs::MetricsRegistry::instance().counter(
      "cfv_numa_pins_total", "",
      "Worker-thread CPU pin attempts under an active NUMA plan");
  static obs::Counter &Fails = obs::MetricsRegistry::instance().counter(
      "cfv_numa_pin_failures_total", "",
      "Worker pin attempts rejected by the OS (run continues unpinned)");
  Pins.inc();
  if (!Ok)
    Fails.inc();
}
