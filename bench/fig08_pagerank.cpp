//===- bench/fig08_pagerank.cpp - Figure 8 harness ------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 8 (a-c): overall execution time of the five PageRank
// versions on the three graph datasets, decomposed into computing /
// tiling / grouping, with the SIMD utilization of the mask version
// annotated as in the paper.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/pagerank/PageRank.h"
#include "graph/Datasets.h"
#include "util/TablePrinter.h"

using namespace cfv;
using namespace cfv::apps;
using namespace cfv::bench;

int main() {
  banner("Figure 8", "PageRank: overall performance of five versions");
  const double Scale = graph::envScale();
  std::printf("workload scale: %.2f (set CFV_SCALE to change)\n", Scale);

  const PrVersion Versions[] = {
      PrVersion::NontilingSerial, PrVersion::TilingSerial,
      PrVersion::TilingGrouping, PrVersion::TilingMask,
      PrVersion::TilingInvec};

  const char *PanelOf[] = {"(a)", "(c)", "(b)"};
  int Panel = 0;
  for (const auto &Name : graph::graphDatasetNames()) {
    const graph::Dataset D = *graph::makeGraphDataset(Name, Scale, false);
    PageRankOptions O;
    // The scaled-down synthetic graphs mix much faster than the SNAP
    // inputs (which take 110-125 iterations to converge); run a fixed 40
    // iterations so the one-time tiling/grouping costs amortize the way
    // the paper's figures show them.
    O.MaxIterations = 40;
    O.Tolerance = 0.0f;

    double SerialTotal = 0.0;
    double MaskUtil = 1.0;
    int ConvIter = 0;

    TablePrinter T({"version", "computing(s)", "tiling(s)", "grouping(s)",
                    "total(s)", "vs tiling_serial", "notes"});
    std::vector<PageRankResult> Results;
    for (const PrVersion V : Versions)
      Results.push_back(runPageRank(D.Edges, V, O));

    const double TilingSerialTotal = Results[1].totalSeconds();
    for (std::size_t I = 0; I < Results.size(); ++I) {
      const PageRankResult &R = Results[I];
      std::string Notes;
      if (Versions[I] == PrVersion::TilingMask) {
        MaskUtil = R.SimdUtil;
        Notes = "simd_util=" + percent(R.SimdUtil);
      }
      if (Versions[I] == PrVersion::TilingInvec)
        Notes = "mean D1=" + TablePrinter::fmt(R.MeanD1, 4) +
                (R.UsedAlg2 ? " (Alg2)" : " (Alg1)");
      if (Versions[I] == PrVersion::NontilingSerial) {
        SerialTotal = R.totalSeconds();
        ConvIter = R.Iterations;
      }
      T.addRow({versionName(Versions[I]),
                TablePrinter::fmt(R.ComputeSeconds),
                TablePrinter::fmt(R.TilingSeconds),
                TablePrinter::fmt(R.GroupingSeconds),
                TablePrinter::fmt(R.totalSeconds()),
                speedup(TilingSerialTotal, R.totalSeconds()), Notes});
    }

    sectionHeader(std::string(PanelOf[Panel]) + " " + D.Name +
                  "  [stand-in for " + D.PaperName + ", " + D.PaperDims +
                  ", NNZ " + D.PaperNnz + "]  conv_iter=" +
                  std::to_string(ConvIter));
    T.print();
    std::printf("nontiling_serial total: %ss; mask simd_util %s\n",
                TablePrinter::fmt(SerialTotal).c_str(),
                percent(MaskUtil).c_str());
    ++Panel;
  }

  paperNote(
      "tiling_serial 1.5-2.5x over nontiling_serial; grouping overhead "
      "dwarfs its computing win; tiling_and_mask ~1.5x over tiling_serial "
      "on skewed graphs but slower on amazon0312 (low SIMD util); "
      "tiling_and_invec beats mask by 1.4-1.8x and reaches 1.5-2.3x over "
      "tiling_serial, near grouping's compute-only speed");
  return 0;
}
