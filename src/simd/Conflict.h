//===- simd/Conflict.h - vpconflictd and conflict-free subsets --*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conflict-detection primitive at the heart of the paper (§2.1):
/// vpconflictd "tests each element in the index vector for equality with
/// all preceding elements"; lane i's result has bit j set iff j < i and
/// idx[j] == idx[i].  conflictFreeSubset() is the paper's
/// v_get_conflict_free_subset: the active lanes with no preceding *active*
/// duplicate, i.e. the first occurrence of every distinct index.  These
/// lanes can absorb partial reduction results and then be scattered to
/// memory without write conflicts.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SIMD_CONFLICT_H
#define CFV_SIMD_CONFLICT_H

#include "simd/Mask.h"
#include "simd/Vec.h"
#include "simd/Vec64.h"

namespace cfv {
namespace simd {

/// Emulation of vpconflictd: lane i's value has bit j set iff j < i and
/// Idx[j] == Idx[i].
inline VecI32<backend::Scalar> conflictBits(VecI32<backend::Scalar> Idx) {
  VecI32<backend::Scalar> R;
  for (int I = 0; I < backend::Scalar::kLanes; ++I) {
    int32_t Bits = 0;
    for (int J = 0; J < I; ++J)
      if (Idx.Lane[J] == Idx.Lane[I])
        Bits |= 1 << J;
    R.Lane[I] = Bits;
  }
  return R;
}

/// Emulation of the 64-bit vpconflictq, same bit semantics over 8 lanes.
inline VecI64<backend::Scalar> conflictBits(VecI64<backend::Scalar> Idx) {
  VecI64<backend::Scalar> R;
  for (int I = 0; I < backend::Scalar::kLanes64; ++I) {
    int64_t Bits = 0;
    for (int J = 0; J < I; ++J)
      if (Idx.Lane[J] == Idx.Lane[I])
        Bits |= int64_t(1) << J;
    R.Lane[I] = Bits;
  }
  return R;
}

#if CFV_HAVE_AVX2
/// AVX2 has no vpconflictd; synthesize it with a rotate/compare network.
/// For each rotation distance D in 1..7, lane I is compared against lane
/// I-D (a vpermd rotate followed by vpcmpeqd); on a match, bit I-D is
/// recorded in lane I.  The per-distance bit constants carry zeros in
/// lanes I < D, which kills the wrapped-around comparisons, so the result
/// matches vpconflictd bit for bit: lane I has bit J set iff J < I and
/// Idx[J] == Idx[I].  7 rotate+compare+and+or rounds for 8 lanes.
inline VecI32<backend::Avx2> conflictBits(VecI32<backend::Avx2> Idx) {
  __m256i R = _mm256_setzero_si256();
  const __m256i Iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  for (int D = 1; D < backend::Avx2::kLanes; ++D) {
    // Rotation index vector: lane I reads source lane (I - D) mod 8.
    __m256i Rot = _mm256_and_si256(
        _mm256_sub_epi32(Iota, _mm256_set1_epi32(D)), _mm256_set1_epi32(7));
    __m256i Shifted = _mm256_permutevar8x32_epi32(Idx.Raw, Rot);
    __m256i EqMask = _mm256_cmpeq_epi32(Idx.Raw, Shifted);
    // Bit constant: lane I contributes 1 << (I - D), zero when I < D.
    alignas(32) int32_t C[backend::Avx2::kLanes];
    for (int I = 0; I < backend::Avx2::kLanes; ++I)
      C[I] = I >= D ? (1 << (I - D)) : 0;
    __m256i Bits = _mm256_load_si256(reinterpret_cast<const __m256i *>(C));
    R = _mm256_or_si256(R, _mm256_and_si256(EqMask, Bits));
  }
  return VecI32<backend::Avx2>(R);
}

/// 64-bit variant over 4 lanes: three fixed vpermq rotations (the
/// immediate encodes (I - D) mod 4 per destination lane).
inline VecI64<backend::Avx2> conflictBits(VecI64<backend::Avx2> Idx) {
  __m256i R = _mm256_setzero_si256();
  __m256i Eq1 =
      _mm256_cmpeq_epi64(Idx.Raw, _mm256_permute4x64_epi64(Idx.Raw, 0x93));
  __m256i Eq2 =
      _mm256_cmpeq_epi64(Idx.Raw, _mm256_permute4x64_epi64(Idx.Raw, 0x4E));
  __m256i Eq3 =
      _mm256_cmpeq_epi64(Idx.Raw, _mm256_permute4x64_epi64(Idx.Raw, 0x39));
  R = _mm256_or_si256(
      R, _mm256_and_si256(Eq1, _mm256_setr_epi64x(0, 1, 2, 4)));
  R = _mm256_or_si256(
      R, _mm256_and_si256(Eq2, _mm256_setr_epi64x(0, 0, 1, 2)));
  R = _mm256_or_si256(
      R, _mm256_and_si256(Eq3, _mm256_setr_epi64x(0, 0, 0, 1)));
  return VecI64<backend::Avx2>(R);
}
#endif

#if CFV_HAVE_AVX512
inline VecI32<backend::Avx512> conflictBits(VecI32<backend::Avx512> Idx) {
  return VecI32<backend::Avx512>(_mm512_conflict_epi32(Idx.Raw));
}

inline VecI64<backend::Avx512> conflictBits(VecI64<backend::Avx512> Idx) {
  return VecI64<backend::Avx512>(_mm512_conflict_epi64(Idx.Raw));
}
#endif

/// The paper's v_get_conflict_free_subset(active, vindex): returns the
/// subset of \p Active lanes whose index does not appear in any preceding
/// active lane.  Implemented exactly as described in §3.2 -- vpconflictd
/// followed by a compare with the zero vector -- with the conflict bits of
/// inactive lanes masked off first so that retired lanes cannot shadow
/// live ones.
template <typename B>
inline Mask16 conflictFreeSubset(Mask16 Active, VecI32<B> Idx) {
  VecI32<B> Conf = conflictBits(Idx);
  // Drop conflict bits that refer to inactive lanes.
  Conf = Conf & VecI32<B>::broadcast(static_cast<int32_t>(Active));
  return Conf.maskEq(Active, VecI32<B>::zero());
}

/// 64-bit variant (vpconflictq path); only the low 8 bits of the masks
/// are significant.
template <typename B>
inline Mask16 conflictFreeSubset(Mask16 Active, VecI64<B> Idx) {
  VecI64<B> Conf = conflictBits(Idx);
  Conf = Conf & VecI64<B>::broadcast(static_cast<int64_t>(Active));
  return Conf.maskEq(Active, VecI64<B>::zero());
}

} // namespace simd
} // namespace cfv

#endif // CFV_SIMD_CONFLICT_H
