//===- service/DatasetCache.cpp - Memoized dataset registry ---------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "service/DatasetCache.h"

#include "graph/Datasets.h"
#include "graph/Io.h"
#include "obs/Metrics.h"
#include "util/Env.h"
#include "util/Prng.h"
#include "util/Timer.h"

#include <cstdio>
#include <vector>

using namespace cfv;
using namespace cfv::service;

namespace {

/// Process-wide mirrors of the per-instance CacheStats: stats() keeps its
/// per-cache zero-based semantics (the serve protocol and tests depend on
/// it) while the registry view aggregates every cache in the process for
/// scraping.  Resolved once; the hot path is a relaxed fetch_add.
struct CacheCounters {
  obs::Counter &Hits;
  obs::Counter &Misses;
  obs::Counter &Coalesced;
  obs::Counter &Evictions;

  static CacheCounters &get() {
    static CacheCounters C{
        obs::MetricsRegistry::instance().counter(
            "cfv_cache_hits_total", "", "Dataset cache hits"),
        obs::MetricsRegistry::instance().counter(
            "cfv_cache_misses_total", "",
            "Dataset cache misses (loads performed or waited on)"),
        obs::MetricsRegistry::instance().counter(
            "cfv_cache_coalesced_total", "",
            "Requests that waited on another request's in-flight load"),
        obs::MetricsRegistry::instance().counter(
            "cfv_cache_evictions_total", "", "Dataset cache LRU evictions")};
    return C;
  }
};

} // namespace

std::string DatasetKey::toString() const {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), " scale=%g %s seed=%llu", Scale,
                Weighted ? "weighted" : "unweighted",
                static_cast<unsigned long long>(WeightSeed));
  return (FromFile ? "file:" : "") + Source + Buf;
}

DatasetCache::DatasetCache(int64_t ByteBudget, Loader L)
    : Budget(ByteBudget), Load(std::move(L)) {
  // Live gauges: scrapes read the cache's current state through these
  // callbacks (which take Mu), not a mirrored value that could go stale.
  obs::MetricsRegistry::instance().gauge(
      "cfv_cache_resident_bytes",
      [this] {
        std::lock_guard<std::mutex> Lock(Mu);
        return static_cast<double>(residentBytesLocked());
      },
      "", "Bytes of datasets resident in the cache");
  obs::MetricsRegistry::instance().gauge(
      "cfv_cache_entries",
      [this] {
        std::lock_guard<std::mutex> Lock(Mu);
        return static_cast<double>(Entries.size());
      },
      "", "Datasets resident (or loading) in the cache");
}

DatasetCache::~DatasetCache() {
  // The callbacks capture `this`; they must not outlive the cache.
  obs::MetricsRegistry::instance().removeGauge("cfv_cache_resident_bytes");
  obs::MetricsRegistry::instance().removeGauge("cfv_cache_entries");
}

int64_t DatasetCache::envCacheBytes() {
  return env::intVar("CFV_CACHE_BYTES", int64_t(256) << 20, 0,
                     int64_t(1) << 46);
}

DatasetCache::Loader DatasetCache::defaultLoader() {
  return [](const DatasetKey &Key) -> Expected<graph::EdgeList> {
    if (Key.FromFile) {
      Expected<graph::EdgeList> G = graph::readSnapEdgeList(Key.Source);
      if (!G.ok())
        return G.status();
      if (Key.Weighted && !G->isWeighted()) {
        // Attach deterministic weights so path algorithms work on
        // unweighted SNAP files, matching cfv_run's behavior.
        Xoshiro256 Rng(Key.WeightSeed);
        G->Weight.resize(G->numEdges());
        for (float &W : G->Weight)
          W = 1.0f + Rng.nextFloat() * 63.0f;
      }
      return G;
    }
    Expected<graph::Dataset> D =
        graph::makeGraphDataset(Key.Source, Key.Scale, Key.Weighted);
    if (!D.ok())
      return D.status();
    return std::move(D->Edges);
  };
}

Expected<CacheLookup> DatasetCache::get(const DatasetKey &Key) {
  WallTimer T;
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    auto It = Entries.find(Key);
    if (It == Entries.end())
      break; // miss: this call becomes the loader
    std::shared_ptr<Entry> E = It->second;
    if (E->St == Entry::State::Ready) {
      E->LastUse = ++Tick;
      ++Counters.Hits;
      CacheCounters::get().Hits.inc();
      CacheLookup R;
      R.Graph = E->Graph;
      R.Hit = true;
      R.LoadSeconds = 0.0;
      return R;
    }
    // Another request is loading this key: wait for it to publish, then
    // re-check (the entry is erased on load failure, so we may become
    // the next loader).
    ++Counters.Coalesced;
    CacheCounters::get().Coalesced.inc();
    Cv.wait(Lock, [&] {
      auto At = Entries.find(Key);
      return At == Entries.end() || At->second->St == Entry::State::Ready;
    });
    auto At = Entries.find(Key);
    if (At != Entries.end() && At->second->St == Entry::State::Ready) {
      At->second->LastUse = ++Tick;
      ++Counters.Misses; // coalesced counts as a miss that paid wait time
      CacheCounters::get().Misses.inc();
      CacheLookup R;
      R.Graph = At->second->Graph;
      R.Hit = false;
      R.LoadSeconds = T.seconds();
      return R;
    }
    if (At == Entries.end())
      break; // the load failed; retry as the loader ourselves
  }

  // Publish the Loading placeholder, then load without the lock so other
  // keys (and coalesced waiters) are not serialized behind the I/O.
  ++Counters.Misses;
  CacheCounters::get().Misses.inc();
  std::shared_ptr<Entry> E = std::make_shared<Entry>();
  Entries[Key] = E;
  Lock.unlock();

  Expected<graph::EdgeList> G = Load(Key);

  Lock.lock();
  if (!G.ok()) {
    // Failed loads are not cached: drop the placeholder and wake every
    // coalesced waiter so one of them (or the next request) retries.
    Entries.erase(Key);
    Cv.notify_all();
    return G.status();
  }
  E->Graph = std::make_shared<graph::PreparedGraph>(std::move(*G));
  E->LoadSeconds = T.seconds();
  E->St = Entry::State::Ready;
  E->LastUse = ++Tick;
  evictLocked(Key);
  Cv.notify_all();

  CacheLookup R;
  R.Graph = E->Graph;
  R.Hit = false;
  R.LoadSeconds = E->LoadSeconds;
  return R;
}

int64_t DatasetCache::residentBytesLocked() const {
  int64_t Bytes = 0;
  for (const auto &[K, E] : Entries)
    if (E->St == Entry::State::Ready)
      Bytes += E->Graph->approxBytes();
  return Bytes;
}

void DatasetCache::evictLocked(const DatasetKey &Keep) {
  if (Budget <= 0)
    return;
  while (residentBytesLocked() > Budget) {
    // Pick the least-recently-used Ready entry other than Keep.
    auto Victim = Entries.end();
    for (auto It = Entries.begin(); It != Entries.end(); ++It) {
      if (It->second->St != Entry::State::Ready || It->first == Keep)
        continue;
      if (Victim == Entries.end() ||
          It->second->LastUse < Victim->second->LastUse)
        Victim = It;
    }
    if (Victim == Entries.end())
      return; // only Keep (or in-flight loads) remain; keep serving it
    Entries.erase(Victim);
    ++Counters.Evictions;
    CacheCounters::get().Evictions.inc();
  }
}

CacheStats DatasetCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  CacheStats S = Counters;
  S.ResidentBytes = residentBytesLocked();
  S.Entries = static_cast<int64_t>(Entries.size());
  return S;
}

void DatasetCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto It = Entries.begin(); It != Entries.end();) {
    if (It->second->St == Entry::State::Ready) {
      It = Entries.erase(It);
      ++Counters.Evictions;
      CacheCounters::get().Evictions.inc();
    } else {
      ++It;
    }
  }
}
