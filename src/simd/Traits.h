//===- simd/Traits.h - BackendTraits facade ---------------------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BackendTraits<B>: the one-stop description of a SIMD backend that all
/// lane-width-generic algorithm code (src/core, src/apps, src/masking,
/// src/verify/Kernels.cpp) programs against.  A backend declares
///
///   - its lane counts (kLanes 32-bit lanes, kLanes64 64-bit lanes) and
///     the matching full-vector masks (kFullMask, kFullMask64),
///   - its vector types (I32/F32/I64/F64, plus VecT<T> element-type
///     dispatch) and mask type (Mask16 universally: one bit per lane,
///     so masks convert freely between backends), and
///   - the full primitive set as static members: the load/store/gather/
///     scatter and masked ops live on the vector types; the cross-cutting
///     primitives (conflictBits, conflictFreeSubset, maskedReduce) are
///     re-exported here so generic code never has to name the free
///     functions' overload set.
///
/// Kernels templated on a backend B should derive every width-dependent
/// constant from these traits — never from a global lane count.  The
/// three backends differ in shape: Scalar and Avx512 are 16 x i32 /
/// 8 x i64 (the paper's 512-bit geometry), Avx2 is 8 x i32 / 4 x i64.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SIMD_TRAITS_H
#define CFV_SIMD_TRAITS_H

#include "simd/Backend.h"
#include "simd/Conflict.h"
#include "simd/Mask.h"
#include "simd/Ops.h"
#include "simd/Reduce.h"
#include "simd/Vec.h"
#include "simd/Vec64.h"

namespace cfv {
namespace simd {

template <typename B> struct BackendTraits {
  using Backend = B;

  /// Number of 32-bit lanes in one vector.
  static constexpr int kLanes = B::kLanes;
  /// Number of 64-bit lanes in one vector.
  static constexpr int kLanes64 = B::kLanes64;
  /// Short lowercase backend name ("scalar", "avx2", "avx512"); matches
  /// the --backend / CFV_BACKEND vocabulary.
  static constexpr const char *kName = B::kName;

  /// All 32-bit lanes active.
  static constexpr Mask16 kFullMask = static_cast<Mask16>((1u << kLanes) - 1);
  /// All 64-bit lanes active.
  static constexpr Mask16 kFullMask64 =
      static_cast<Mask16>((1u << kLanes64) - 1);

  /// One bit per lane on every backend; see simd/Mask.h.
  using Mask = Mask16;

  using I32 = VecI32<B>;
  using F32 = VecF32<B>;
  using I64 = VecI64<B>;
  using F64 = VecF64<B>;

  /// Element-type dispatch: VecT<int32_t> = I32, VecT<float> = F32.
  template <typename T> using VecT = VecForT<T, B>;

  /// vpconflictd / vpconflictq semantics (synthesized on Avx2).
  static I32 conflict(I32 Idx) { return conflictBits(Idx); }
  static I64 conflict(I64 Idx) { return conflictBits(Idx); }

  /// The paper's v_get_conflict_free_subset (§3.2).
  static Mask16 conflictFree(Mask16 Active, I32 Idx) {
    return conflictFreeSubset(Active, Idx);
  }
  static Mask16 conflictFree(Mask16 Active, I64 Idx) {
    return conflictFreeSubset(Active, Idx);
  }

  /// The paper's v_horizontal_reduce: fold the lanes selected by \p M
  /// with the associative operator \p Op (simd/Ops.h).
  template <typename Op, typename V>
  static auto reduce(Mask16 M, V Vec) {
    return maskedReduce<Op>(M, Vec);
  }
};

} // namespace simd
} // namespace cfv

#endif // CFV_SIMD_TRAITS_H
