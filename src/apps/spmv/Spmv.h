//===- apps/spmv/Spmv.h - Sparse matrix-vector multiply ---------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SpMV over the paper's Sparse Matrix View (§2.2): y[r] += v * x[c] for
/// every nonzero (r, c, v) of a COO matrix is exactly the associative
/// irregular reduction the in-vector technique targets, and the kernel
/// several of the paper's related-work systems optimize on Xeon Phi.
/// Included as a worked extension beyond the paper's six applications:
///
///   CooSerial    scalar loop over the nonzeros in given order
///   CsrSerial    row-major CSR -- conflict free by construction, the
///                "fully reorganized" reference point
///   CooMask      conflict-masking over the COO stream
///   CooInvec     in-vector reduction over the COO stream
///   CooGrouping  inspector/executor (tile + group by row)
///
/// The matrix is an EdgeList (Src = row, Dst = column, Weight = value).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_APPS_SPMV_SPMV_H
#define CFV_APPS_SPMV_SPMV_H

#include "core/RunOptions.h"
#include "graph/Graph.h"
#include "util/Stats.h"

namespace cfv {
namespace apps {

enum class SpmvVersion { CooSerial, CsrSerial, CooMask, CooInvec,
                         CooGrouping };

const char *versionName(SpmvVersion V);

struct SpmvResult {
  AlignedVector<float> Y;
  double Seconds = 0.0;     ///< multiply time for all repeats
  double PrepSeconds = 0.0; ///< CSR build / tiling+grouping time
  double SimdUtil = 1.0;    ///< CooMask only
  double MeanD1 = 0.0;      ///< CooInvec only
  /// Per-pass D1 / useful-lane distributions (empty unless the version
  /// that ran records them and observability is compiled in).
  LaneHistogram D1Hist;
  LaneHistogram UtilHist;
  /// Pseudo-tiles of the row stream per pattern class, indexed by
  /// pattern::TileClass order (ConflictFree, Monotone, SmallAlphabet,
  /// HotBucket, General); all zero when classification was off or the
  /// version does not dispatch on patterns.
  int64_t PatternTiles[5] = {};
};

/// Computes y = A * x \p Repeats times (the repeat models iterative
/// solvers, amortizing any reorganization).  \p A must be weighted, with
/// Src = row and Dst = column indices; \p X must have A.NumNodes entries.
/// \p O carries the parallel-engine thread count.
SpmvResult runSpmv(const graph::EdgeList &A, const float *X, SpmvVersion V,
                   int Repeats, const core::RunOptions &O);

/// Deprecated single-core convenience overload; prefer the RunOptions
/// overload or cfv::run (core/Api.h).
SpmvResult runSpmv(const graph::EdgeList &A, const float *X,
                   SpmvVersion V, int Repeats = 1);

} // namespace apps
} // namespace cfv

#endif // CFV_APPS_SPMV_SPMV_H
