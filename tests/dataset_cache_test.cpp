//===- tests/dataset_cache_test.cpp - Dataset cache contracts -------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The serving layer's cache contracts: one load per key no matter how
// many requests race for it, LRU eviction under a byte budget, handles
// that outlive eviction, and full key sensitivity (datasets differing in
// normalization parameters never share an entry).
//
//===----------------------------------------------------------------------===//

#include "service/DatasetCache.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace cfv;
using namespace cfv::service;

namespace {

/// A fabricated line graph with \p Edges edges (deterministic, cheap).
graph::EdgeList makeEdges(int64_t Edges, bool Weighted) {
  graph::EdgeList G;
  G.NumNodes = static_cast<int32_t>(Edges + 1);
  G.Src.resize(Edges);
  G.Dst.resize(Edges);
  for (int64_t I = 0; I < Edges; ++I) {
    G.Src[I] = static_cast<int32_t>(I);
    G.Dst[I] = static_cast<int32_t>(I + 1);
  }
  if (Weighted) {
    G.Weight.resize(Edges);
    for (int64_t I = 0; I < Edges; ++I)
      G.Weight[I] = 1.0f + static_cast<float>(I % 7);
  }
  return G;
}

DatasetKey keyFor(const std::string &Name, double Scale = 1.0,
                  bool Weighted = false, uint64_t Seed = 1) {
  DatasetKey K;
  K.Source = Name;
  K.Scale = Scale;
  K.Weighted = Weighted;
  K.WeightSeed = Seed;
  return K;
}

TEST(DatasetCacheTest, PopulateOnceUnderConcurrency) {
  std::atomic<int> Loads{0};
  DatasetCache Cache(/*ByteBudget=*/0, [&](const DatasetKey &K) {
    Loads.fetch_add(1);
    // Stretch the load window so the other threads reliably arrive
    // while it is in flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return Expected<graph::EdgeList>(makeEdges(100, K.Weighted));
  });

  constexpr int N = 8;
  std::vector<std::thread> Threads;
  std::vector<const graph::PreparedGraph *> Got(N, nullptr);
  std::vector<std::shared_ptr<const graph::PreparedGraph>> Keep(N);
  for (int I = 0; I < N; ++I)
    Threads.emplace_back([&, I] {
      const Expected<CacheLookup> L = Cache.get(keyFor("a"));
      ASSERT_TRUE(L.ok()) << L.status().toString();
      Keep[I] = L->Graph;
      Got[I] = L->Graph.get();
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Loads.load(), 1) << "the cache must run exactly one load";
  for (int I = 1; I < N; ++I)
    EXPECT_EQ(Got[I], Got[0]) << "every requester shares one instance";

  const CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 0);
  EXPECT_EQ(S.Misses, N);
  EXPECT_EQ(S.Coalesced, N - 1);
  EXPECT_EQ(S.Entries, 1);
}

TEST(DatasetCacheTest, HitReportsZeroLoadSeconds) {
  DatasetCache Cache(0, [](const DatasetKey &K) {
    return Expected<graph::EdgeList>(makeEdges(10, K.Weighted));
  });
  const Expected<CacheLookup> Cold = Cache.get(keyFor("a"));
  ASSERT_TRUE(Cold.ok());
  EXPECT_FALSE(Cold->Hit);

  const Expected<CacheLookup> Warm = Cache.get(keyFor("a"));
  ASSERT_TRUE(Warm.ok());
  EXPECT_TRUE(Warm->Hit);
  EXPECT_EQ(Warm->LoadSeconds, 0.0) << "hits must report exactly zero";
  EXPECT_EQ(Warm->Graph.get(), Cold->Graph.get());
}

TEST(DatasetCacheTest, LruEvictionAtByteBudget) {
  // Each 1000-edge unweighted graph is ~8 KB resident; budget two and a
  // half of them so a third insertion evicts the least recently used.
  const int64_t OneGraph = graph::PreparedGraph(makeEdges(1000, false))
                               .approxBytes();
  ASSERT_GT(OneGraph, 0);

  std::atomic<int> Loads{0};
  DatasetCache Cache(OneGraph * 5 / 2, [&](const DatasetKey &K) {
    Loads.fetch_add(1);
    (void)K;
    return Expected<graph::EdgeList>(makeEdges(1000, false));
  });

  ASSERT_TRUE(Cache.get(keyFor("a")).ok());
  ASSERT_TRUE(Cache.get(keyFor("b")).ok());
  // Touch "a" so "b" is the LRU when "c" overflows the budget.
  ASSERT_TRUE(Cache.get(keyFor("a")).ok());
  ASSERT_TRUE(Cache.get(keyFor("c")).ok());
  EXPECT_EQ(Loads.load(), 3);

  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Evictions, 1);
  EXPECT_EQ(S.Entries, 2);
  EXPECT_LE(S.ResidentBytes, OneGraph * 5 / 2);

  // "a" survived (recently used), "b" was evicted and reloads.
  const Expected<CacheLookup> A = Cache.get(keyFor("a"));
  ASSERT_TRUE(A.ok());
  EXPECT_TRUE(A->Hit);
  const Expected<CacheLookup> B = Cache.get(keyFor("b"));
  ASSERT_TRUE(B.ok());
  EXPECT_FALSE(B->Hit);
  EXPECT_EQ(Loads.load(), 4);
}

TEST(DatasetCacheTest, EvictionDoesNotInvalidateHeldHandles) {
  const int64_t OneGraph = graph::PreparedGraph(makeEdges(1000, false))
                               .approxBytes();
  DatasetCache Cache(OneGraph * 3 / 2, [](const DatasetKey &K) {
    (void)K;
    return Expected<graph::EdgeList>(makeEdges(1000, false));
  });

  const Expected<CacheLookup> A = Cache.get(keyFor("a"));
  ASSERT_TRUE(A.ok());
  std::shared_ptr<const graph::PreparedGraph> Held = A->Graph;

  // Loading "b" overflows the budget and evicts "a" (the LRU).
  ASSERT_TRUE(Cache.get(keyFor("b")).ok());
  EXPECT_GE(Cache.stats().Evictions, 1);
  EXPECT_FALSE(Cache.get(keyFor("a"))->Hit) << "'a' was evicted";

  // The held handle keeps the dataset and its artifacts alive.
  EXPECT_EQ(Held->edges().numEdges(), 1000);
  EXPECT_EQ(Held->csr().numEdges(), 1000);
}

TEST(DatasetCacheTest, KeySensitivity) {
  std::atomic<int> Loads{0};
  DatasetCache Cache(0, [&](const DatasetKey &K) {
    Loads.fetch_add(1);
    return Expected<graph::EdgeList>(makeEdges(16, K.Weighted));
  });

  ASSERT_TRUE(Cache.get(keyFor("a", 1.0, false, 1)).ok());
  // Different scale, weightedness, or weight seed: all distinct entries.
  ASSERT_TRUE(Cache.get(keyFor("a", 2.0, false, 1)).ok());
  ASSERT_TRUE(Cache.get(keyFor("a", 1.0, true, 1)).ok());
  ASSERT_TRUE(Cache.get(keyFor("a", 1.0, true, 2)).ok());
  EXPECT_EQ(Loads.load(), 4);
  EXPECT_EQ(Cache.stats().Entries, 4);

  // And the exact same key again is a hit, not a fifth load.
  const Expected<CacheLookup> Again = Cache.get(keyFor("a", 1.0, true, 2));
  ASSERT_TRUE(Again.ok());
  EXPECT_TRUE(Again->Hit);
  EXPECT_EQ(Loads.load(), 4);
}

TEST(DatasetCacheTest, FailedLoadsAreNotCached) {
  std::atomic<int> Loads{0};
  DatasetCache Cache(0, [&](const DatasetKey &K) -> Expected<graph::EdgeList> {
    if (Loads.fetch_add(1) == 0)
      return Status::error(ErrorCode::IoError, "transient failure");
    return makeEdges(8, K.Weighted);
  });

  const Expected<CacheLookup> First = Cache.get(keyFor("a"));
  EXPECT_FALSE(First.ok());
  EXPECT_EQ(First.status().code(), ErrorCode::IoError);

  // The failure was not cached: the next request retries and succeeds.
  const Expected<CacheLookup> Second = Cache.get(keyFor("a"));
  ASSERT_TRUE(Second.ok());
  EXPECT_FALSE(Second->Hit);
  EXPECT_EQ(Loads.load(), 2);
}

TEST(DatasetCacheTest, DefaultLoaderRejectsUnknownDatasets) {
  DatasetCache Cache(0, DatasetCache::defaultLoader());
  const Expected<CacheLookup> L = Cache.get(keyFor("no-such-dataset"));
  EXPECT_FALSE(L.ok());
}

TEST(DatasetCacheTest, ArtifactBytesCountAgainstTheBudget) {
  // Budget fits the raw edges of two graphs but not two graphs plus
  // their CSR artifacts: materializing an artifact and touching the
  // cache again must trigger an eviction.
  const int64_t OneGraph = graph::PreparedGraph(makeEdges(1000, false))
                               .approxBytes();
  DatasetCache Cache(OneGraph * 2, [](const DatasetKey &K) {
    (void)K;
    return Expected<graph::EdgeList>(makeEdges(1000, false));
  });

  const Expected<CacheLookup> A = Cache.get(keyFor("a"));
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(Cache.get(keyFor("b")).ok());
  EXPECT_EQ(Cache.stats().Entries, 2);

  // Materialize artifacts on "a": resident bytes grow past the budget.
  (void)A->Graph->csr();
  (void)A->Graph->tiling(16);
  EXPECT_GT(Cache.stats().ResidentBytes, OneGraph * 2);

  // The next insertion re-polls sizes and sheds the LRU entries.
  ASSERT_TRUE(Cache.get(keyFor("c")).ok());
  EXPECT_GE(Cache.stats().Evictions, 1);
}

} // namespace
