//===- bench/fig10_sswp.cpp - Figure 10 harness ---------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "FrontierBench.h"

int main() {
  return cfv::bench::runFrontierFigure(
      "Figure 10", cfv::apps::FrApp::Sswp,
      "same pattern as SSSP: invec 1.9-2.2x over serial and the only "
      "version delivering SIMD speedups; mask hurt by 6.7-61% SIMD util; "
      "grouping dominated by reorganization overhead");
}
