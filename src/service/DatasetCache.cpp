//===- service/DatasetCache.cpp - Memoized dataset registry ---------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "service/DatasetCache.h"

#include "graph/Datasets.h"
#include "graph/Io.h"
#include "obs/Metrics.h"
#include "resilience/Fault.h"
#include "util/Clock.h"
#include "util/Env.h"
#include "util/Prng.h"
#include "util/Timer.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace cfv;
using namespace cfv::service;

namespace {

/// Process-wide mirrors of the per-instance CacheStats: stats() keeps its
/// per-cache zero-based semantics (the serve protocol and tests depend on
/// it) while the registry view aggregates every cache in the process for
/// scraping.  Resolved once; the hot path is a relaxed fetch_add.
struct CacheCounters {
  obs::Counter &Hits;
  obs::Counter &Misses;
  obs::Counter &Coalesced;
  obs::Counter &Evictions;

  static CacheCounters &get() {
    static CacheCounters C{
        obs::MetricsRegistry::instance().counter(
            "cfv_cache_hits_total", "", "Dataset cache hits"),
        obs::MetricsRegistry::instance().counter(
            "cfv_cache_misses_total", "",
            "Dataset cache misses (loads performed or waited on)"),
        obs::MetricsRegistry::instance().counter(
            "cfv_cache_coalesced_total", "",
            "Requests that waited on another request's in-flight load"),
        obs::MetricsRegistry::instance().counter(
            "cfv_cache_evictions_total", "", "Dataset cache LRU evictions")};
    return C;
  }
};

} // namespace

std::string DatasetKey::toString() const {
  char Buf[112];
  std::snprintf(Buf, sizeof(Buf), " scale=%g %s seed=%llu schema=%d", Scale,
                Weighted ? "weighted" : "unweighted",
                static_cast<unsigned long long>(WeightSeed), Schema);
  return (FromFile ? "file:" : "") + Source + Buf;
}

namespace {

/// Longest a circuit stays open per episode; exponential backoff caps
/// here so a dataset that comes back is probed within half a minute.
constexpr double kMaxBackoffSeconds = 30.0;

} // namespace

DatasetCache::DatasetCache(int64_t ByteBudget, Loader L)
    : Budget(ByteBudget), Load(std::move(L)),
      CbThreshold(static_cast<int>(env::intVar("CFV_CB_THRESHOLD", 3, 0, 100))),
      CbBackoffSeconds(env::floatVar("CFV_CB_BACKOFF_MS", 100.0, 1.0, 6e4) /
                       1000.0),
      PressurePct(
          static_cast<int>(env::intVar("CFV_CACHE_PRESSURE_PCT", 90, 1, 100))) {
  // Live gauges: scrapes read the cache's current state through these
  // callbacks (which take Mu), not a mirrored value that could go stale.
  obs::MetricsRegistry::instance().gauge(
      "cfv_cache_resident_bytes",
      [this] {
        std::lock_guard<std::mutex> Lock(Mu);
        return static_cast<double>(residentBytesLocked());
      },
      "", "Bytes of datasets resident in the cache");
  obs::MetricsRegistry::instance().gauge(
      "cfv_cache_entries",
      [this] {
        std::lock_guard<std::mutex> Lock(Mu);
        return static_cast<double>(Entries.size());
      },
      "", "Datasets resident (or loading) in the cache");
  obs::MetricsRegistry::instance().gauge(
      "cfv_circuit_state",
      [this] {
        std::lock_guard<std::mutex> Lock(Mu);
        return static_cast<double>(openCircuitsLocked());
      },
      "", "Dataset-load circuit breakers currently open (0 = all closed)");
}

DatasetCache::~DatasetCache() {
  // The callbacks capture `this`; they must not outlive the cache.
  obs::MetricsRegistry::instance().removeGauge("cfv_cache_resident_bytes");
  obs::MetricsRegistry::instance().removeGauge("cfv_cache_entries");
  obs::MetricsRegistry::instance().removeGauge("cfv_circuit_state");
}

int64_t DatasetCache::envCacheBytes() {
  return env::intVar("CFV_CACHE_BYTES", int64_t(256) << 20, 0,
                     int64_t(1) << 46);
}

DatasetCache::Loader DatasetCache::defaultLoader() {
  return [](const DatasetKey &Key) -> Expected<graph::EdgeList> {
    if (Key.FromFile) {
      Expected<graph::EdgeList> G = graph::readSnapEdgeList(Key.Source);
      if (!G.ok())
        return G.status();
      if (Key.Weighted && !G->isWeighted()) {
        // Attach deterministic weights so path algorithms work on
        // unweighted SNAP files, matching cfv_run's behavior.
        Xoshiro256 Rng(Key.WeightSeed);
        G->Weight.resize(G->numEdges());
        for (float &W : G->Weight)
          W = 1.0f + Rng.nextFloat() * 63.0f;
      }
      return G;
    }
    Expected<graph::Dataset> D =
        graph::makeGraphDataset(Key.Source, Key.Scale, Key.Weighted);
    if (!D.ok())
      return D.status();
    return std::move(D->Edges);
  };
}

Expected<CacheLookup> DatasetCache::get(const DatasetKey &Key) {
  WallTimer T;
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    auto It = Entries.find(Key);
    if (It == Entries.end())
      break; // miss: this call becomes the loader
    std::shared_ptr<Entry> E = It->second;
    if (E->St == Entry::State::Ready) {
      E->LastUse = ++Tick;
      ++Counters.Hits;
      CacheCounters::get().Hits.inc();
      CacheLookup R;
      R.Graph = E->Graph;
      R.Hit = true;
      R.LoadSeconds = 0.0;
      return R;
    }
    // Another request is loading this key: wait for it to publish, then
    // re-check (the entry is erased on load failure, so we may become
    // the next loader).
    ++Counters.Coalesced;
    CacheCounters::get().Coalesced.inc();
    Cv.wait(Lock, [&] {
      auto At = Entries.find(Key);
      return At == Entries.end() || At->second->St == Entry::State::Ready;
    });
    auto At = Entries.find(Key);
    if (At != Entries.end() && At->second->St == Entry::State::Ready) {
      At->second->LastUse = ++Tick;
      ++Counters.Misses; // coalesced counts as a miss that paid wait time
      CacheCounters::get().Misses.inc();
      CacheLookup R;
      R.Graph = At->second->Graph;
      R.Hit = false;
      R.LoadSeconds = T.seconds();
      return R;
    }
    if (At == Entries.end())
      break; // the load failed; retry as the loader ourselves
  }

  // About to become the loader: fail fast while this key's circuit is
  // open.  Once OpenUntil passes, the first arrival proceeds as the
  // half-open probe -- populate-once coalescing guarantees it is alone,
  // so a still-broken dataset costs one probe per backoff window, not a
  // thundering herd.
  {
    const auto BIt = Breakers.find(Key);
    if (BIt != Breakers.end() && BIt->second.OpenUntil > monotonicSeconds()) {
      ++Counters.CircuitRejects;
      const int64_t RetryMs = static_cast<int64_t>(
          (BIt->second.OpenUntil - monotonicSeconds()) * 1000.0);
      return Status::error(
          ErrorCode::Unavailable,
          "circuit open for " + Key.toString() + " after " +
              std::to_string(BIt->second.ConsecutiveFailures) +
              " consecutive load failures; retry in ~" +
              std::to_string(std::max<int64_t>(RetryMs, 1)) + "ms");
    }
  }

  // Byte-pressure watermark: make headroom for the incoming load before
  // it allocates, instead of discovering the overshoot afterwards.
  if (Budget > 0 && PressurePct < 100) {
    const int64_t Watermark = Budget * PressurePct / 100;
    if (residentBytesLocked() > Watermark)
      evictLocked(Key, Watermark, /*Emergency=*/true);
  }

  // Publish the Loading placeholder, then load without the lock so other
  // keys (and coalesced waiters) are not serialized behind the I/O.
  ++Counters.Misses;
  CacheCounters::get().Misses.inc();
  std::shared_ptr<Entry> E = std::make_shared<Entry>();
  Entries[Key] = E;
  Lock.unlock();

  // cache.alloc_fail models the loader hitting memory pressure;
  // cache.corrupt_artifact a load whose result fails its integrity
  // check.  Both flow through the ordinary failure path (placeholder
  // dropped, breaker charged), which is the point: injected faults take
  // the same exits real ones would.
  const bool AllocFault = fault::fire(fault::Point::CacheAllocFail);
  Expected<graph::EdgeList> G =
      AllocFault ? Expected<graph::EdgeList>(Status::error(
                       ErrorCode::Unavailable,
                       "injected allocation failure loading " +
                           Key.toString()))
                 : Load(Key);
  if (G.ok() && fault::fire(fault::Point::CacheCorruptArtifact))
    G = Status::error(ErrorCode::IoError,
                      "injected corrupt artifact for " + Key.toString());

  Lock.lock();
  if (!G.ok()) {
    // Failed loads are not cached: drop the placeholder and wake every
    // coalesced waiter so one of them (or the next request) retries.
    Entries.erase(Key);
    loadFailedLocked(Key);
    if (AllocFault) {
      // Memory pressure: shed every idle entry so the retry (and the
      // rest of the process) has room to breathe.
      evictLocked(Key, 0, /*Emergency=*/true);
    }
    Cv.notify_all();
    return G.status();
  }
  Breakers.erase(Key); // success closes the circuit and resets backoff
  E->Graph = std::make_shared<graph::PreparedGraph>(std::move(*G));
  E->LoadSeconds = T.seconds();
  E->St = Entry::State::Ready;
  E->LastUse = ++Tick;
  if (Budget > 0)
    evictLocked(Key, Budget, /*Emergency=*/false);
  Cv.notify_all();

  CacheLookup R;
  R.Graph = E->Graph;
  R.Hit = false;
  R.LoadSeconds = E->LoadSeconds;
  return R;
}

int64_t DatasetCache::residentBytesLocked() const {
  int64_t Bytes = 0;
  for (const auto &[K, E] : Entries)
    if (E->St == Entry::State::Ready)
      Bytes += E->Graph->approxBytes();
  return Bytes;
}

void DatasetCache::evictLocked(const DatasetKey &Keep, int64_t TargetBytes,
                               bool Emergency) {
  while (residentBytesLocked() > TargetBytes) {
    // Pick the least-recently-used Ready entry other than Keep.
    auto Victim = Entries.end();
    for (auto It = Entries.begin(); It != Entries.end(); ++It) {
      if (It->second->St != Entry::State::Ready || It->first == Keep)
        continue;
      if (Victim == Entries.end() ||
          It->second->LastUse < Victim->second->LastUse)
        Victim = It;
    }
    if (Victim == Entries.end())
      return; // only Keep (or in-flight loads) remain; keep serving it
    Entries.erase(Victim);
    ++Counters.Evictions;
    if (Emergency)
      ++Counters.EmergencyEvictions;
    CacheCounters::get().Evictions.inc();
  }
}

void DatasetCache::loadFailedLocked(const DatasetKey &Key) {
  if (CbThreshold <= 0)
    return;
  Breaker &B = Breakers[Key];
  if (++B.ConsecutiveFailures < CbThreshold)
    return;
  // Open (or, after a failed half-open probe, reopen with doubled
  // backoff).  The count keeps rising past the threshold so the error
  // message reflects the full failure streak.
  B.BackoffSeconds = B.BackoffSeconds == 0.0
                         ? CbBackoffSeconds
                         : std::min(B.BackoffSeconds * 2.0,
                                    kMaxBackoffSeconds);
  B.OpenUntil = monotonicSeconds() + B.BackoffSeconds;
}

int64_t DatasetCache::openCircuitsLocked() const {
  const double Now = monotonicSeconds();
  int64_t Open = 0;
  for (const auto &[K, B] : Breakers)
    if (B.OpenUntil > Now)
      ++Open;
  return Open;
}

void DatasetCache::emergencyEvict() {
  std::lock_guard<std::mutex> Lock(Mu);
  evictLocked(DatasetKey{}, 0, /*Emergency=*/true);
}

CacheStats DatasetCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  CacheStats S = Counters;
  S.ResidentBytes = residentBytesLocked();
  S.Entries = static_cast<int64_t>(Entries.size());
  S.OpenCircuits = openCircuitsLocked();
  return S;
}

void DatasetCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto It = Entries.begin(); It != Entries.end();) {
    if (It->second->St == Entry::State::Ready) {
      It = Entries.erase(It);
      ++Counters.Evictions;
      CacheCounters::get().Evictions.inc();
    } else {
      ++It;
    }
  }
}
