//===- apps/spmv/Spmv.cpp - Sparse matrix-vector multiply -----------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/spmv/Spmv.h"

#include "core/Backends.h"
#include "core/InvecReduce.h"
#include "core/Variant.h"
#include "inspector/Grouping.h"
#include "inspector/Tiling.h"
#include "masking/ConflictMask.h"
#include "util/Stats.h"
#include "util/Timer.h"

#include <cassert>

using namespace cfv;
using namespace cfv::apps;

using B = simd::NativeBackend;
using IVec = simd::VecI32<B>;
using FVec = simd::VecF32<B>;
using simd::kLanes;
using simd::Mask16;

#if CFV_VARIANT_PRIMARY
const char *apps::versionName(SpmvVersion V) {
  switch (V) {
  case SpmvVersion::CooSerial:
    return "coo_serial";
  case SpmvVersion::CsrSerial:
    return "csr_serial";
  case SpmvVersion::CooMask:
    return "coo_mask";
  case SpmvVersion::CooInvec:
    return "coo_invec";
  case SpmvVersion::CooGrouping:
    return "coo_grouping";
  }
  return "unknown";
}
#endif // CFV_VARIANT_PRIMARY

namespace {

void multiplyCooSerial(const graph::EdgeList &A, const float *X, float *Y) {
  const int64_t Nnz = A.numEdges();
  for (int64_t E = 0; E < Nnz; ++E)
    Y[A.Src[E]] += A.Weight[E] * X[A.Dst[E]];
}

void multiplyCsrSerial(const graph::Csr &C, const float *X, float *Y) {
  for (int32_t R = 0; R < C.NumNodes; ++R) {
    float Acc = 0.0f;
    for (int64_t E = C.RowBegin[R], End = C.RowBegin[R + 1]; E < End; ++E)
      Acc += C.Weight[E] * X[C.Col[E]];
    Y[R] += Acc;
  }
}

void multiplyCooMask(const graph::EdgeList &A, const float *X, float *Y,
                     SimdUtilCounter &Util) {
  auto LoadIdx = [&](IVec Pos, Mask16 Lanes) {
    return IVec::maskGather(IVec::zero(), Lanes, A.Src.data(), Pos);
  };
  auto Commit = [&](Mask16 Safe, IVec Pos, IVec Row) {
    const IVec Col = IVec::maskGather(IVec::zero(), Safe, A.Dst.data(), Pos);
    const FVec V = FVec::maskGather(FVec::zero(), Safe, A.Weight.data(),
                                    Pos);
    const FVec Xc = FVec::maskGather(FVec::zero(), Safe, X, Col);
    const FVec Old = FVec::maskGather(FVec::zero(), Safe, Y, Row);
    (Old + V * Xc).maskScatter(Safe, Y, Row);
  };
  masking::maskedStreamLoop<B>(A.numEdges(), LoadIdx,
                               masking::AllLanesNeedUpdate{}, Commit, &Util);
}

void multiplyCooInvec(const graph::EdgeList &A, const float *X, float *Y,
                      RunningMean &MeanD1) {
  const int64_t Nnz = A.numEdges();
  for (int64_t E = 0; E < Nnz; E += kLanes) {
    const int64_t Left = Nnz - E;
    const Mask16 Active =
        Left >= kLanes ? simd::kAllLanes
                       : static_cast<Mask16>((1u << Left) - 1u);
    const IVec Row = IVec::maskLoad(IVec::zero(), Active, A.Src.data() + E);
    const IVec Col = IVec::maskLoad(IVec::zero(), Active, A.Dst.data() + E);
    const FVec V = FVec::maskLoad(FVec::zero(), Active, A.Weight.data() + E);
    const FVec Xc = FVec::maskGather(FVec::zero(), Active, X, Col);
    FVec Prod = V * Xc;
    const core::InvecResult R = core::invecReduce<simd::OpAdd>(Active, Row,
                                                               Prod);
    MeanD1.add(R.Distinct);
    core::accumulateScatter<simd::OpAdd>(R.Ret, Row, Prod, Y);
  }
}

struct GroupedMatrix {
  AlignedVector<int32_t> Row, Col;
  AlignedVector<float> Val;
  AlignedVector<Mask16> GroupMask;
  int64_t NumGroups = 0;
};

GroupedMatrix groupMatrix(const graph::EdgeList &A, int BlockBits) {
  const inspector::TilingResult Tiling = inspector::tileByDestination(
      A.Src.data(), A.numEdges(), A.NumNodes, BlockBits);
  inspector::GroupingResult G =
      inspector::groupConflictFree(A.Src.data(), A.NumNodes, Tiling);
  GroupedMatrix M;
  M.Row = inspector::applyGrouping(G, A.Src.data(), int32_t(0));
  M.Col = inspector::applyGrouping(G, A.Dst.data(), int32_t(0));
  M.Val = inspector::applyGrouping(G, A.Weight.data(), 0.0f);
  M.GroupMask = std::move(G.GroupMask);
  M.NumGroups = G.NumGroups;
  return M;
}

void multiplyGrouped(const GroupedMatrix &M, const float *X, float *Y) {
  for (int64_t G = 0; G < M.NumGroups; ++G) {
    const Mask16 Msk = M.GroupMask[G];
    const IVec Row = IVec::load(M.Row.data() + G * kLanes);
    const IVec Col = IVec::load(M.Col.data() + G * kLanes);
    const FVec V = FVec::load(M.Val.data() + G * kLanes);
    const FVec Xc = FVec::maskGather(FVec::zero(), Msk, X, Col);
    // Rows distinct within a group: plain read-modify-write.
    const FVec Old = FVec::maskGather(FVec::zero(), Msk, Y, Row);
    (Old + V * Xc).maskScatter(Msk, Y, Row);
  }
}

} // namespace

// Compiled once per backend variant; the public apps::runSpmv forwards
// here through core::dispatch().
SpmvResult apps::CFV_VARIANT_NS::runSpmv(const graph::EdgeList &A,
                                         const float *X, SpmvVersion V,
                                         int Repeats) {
  assert(A.isWeighted() && "SpMV needs matrix values on the edge list");
  SpmvResult R;
  R.Y.assign(A.NumNodes, 0.0f);
  SimdUtilCounter Util;
  RunningMean MeanD1;

  graph::Csr C;
  GroupedMatrix M;
  if (V == SpmvVersion::CsrSerial) {
    WallTimer P;
    C = graph::buildCsr(A);
    R.PrepSeconds = P.seconds();
  } else if (V == SpmvVersion::CooGrouping) {
    WallTimer P;
    M = groupMatrix(A, /*BlockBits=*/16);
    R.PrepSeconds = P.seconds();
  }

  WallTimer W;
  for (int It = 0; It < Repeats; ++It) {
    switch (V) {
    case SpmvVersion::CooSerial:
      multiplyCooSerial(A, X, R.Y.data());
      break;
    case SpmvVersion::CsrSerial:
      multiplyCsrSerial(C, X, R.Y.data());
      break;
    case SpmvVersion::CooMask:
      multiplyCooMask(A, X, R.Y.data(), Util);
      break;
    case SpmvVersion::CooInvec:
      multiplyCooInvec(A, X, R.Y.data(), MeanD1);
      break;
    case SpmvVersion::CooGrouping:
      multiplyGrouped(M, X, R.Y.data());
      break;
    }
  }
  R.Seconds = W.seconds();
  R.SimdUtil = Util.utilization();
  R.MeanD1 = MeanD1.count() ? MeanD1.mean() : 0.0;
  return R;
}
