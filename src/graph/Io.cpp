//===- graph/Io.cpp - SNAP-format edge-list I/O ---------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "graph/Io.h"

#include <cstdio>
#include <cstring>
#include <unordered_map>

using namespace cfv;
using namespace cfv::graph;

namespace {

void setError(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
}

} // namespace

std::optional<EdgeList> graph::readSnapEdgeList(const std::string &Path,
                                                std::string *Error) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F) {
    setError(Error, "cannot open '" + Path + "'");
    return std::nullopt;
  }

  EdgeList G;
  std::unordered_map<long long, int32_t> Remap;
  auto CompactId = [&](long long Raw) {
    const auto [It, Inserted] =
        Remap.insert({Raw, static_cast<int32_t>(Remap.size())});
    (void)Inserted;
    return It->second;
  };

  char Line[512];
  int64_t LineNo = 0;
  int Columns = 0; // 2 or 3, fixed by the first edge line
  while (std::fgets(Line, sizeof(Line), F)) {
    ++LineNo;
    // Skip comments and blank lines.
    const char *P = Line;
    while (*P == ' ' || *P == '\t')
      ++P;
    if (*P == '#' || *P == '\n' || *P == '\0')
      continue;

    long long Src, Dst;
    float W;
    const int Got = std::sscanf(P, "%lld %lld %f", &Src, &Dst, &W);
    if (Got < 2 || Src < 0 || Dst < 0) {
      std::fclose(F);
      setError(Error, "parse error at " + Path + ":" +
                          std::to_string(LineNo));
      return std::nullopt;
    }
    if (Columns == 0)
      Columns = Got >= 3 ? 3 : 2;
    if ((Columns == 3) != (Got >= 3)) {
      std::fclose(F);
      setError(Error, "inconsistent column count at " + Path + ":" +
                          std::to_string(LineNo));
      return std::nullopt;
    }
    G.Src.push_back(CompactId(Src));
    G.Dst.push_back(CompactId(Dst));
    if (Columns == 3)
      G.Weight.push_back(W);
  }
  const bool ReadFailed = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadFailed) {
    setError(Error, "read error on '" + Path + "'");
    return std::nullopt;
  }

  G.NumNodes = static_cast<int32_t>(Remap.size());
  if (G.NumNodes == 0) {
    setError(Error, "no edges found in '" + Path + "'");
    return std::nullopt;
  }
  return G;
}

bool graph::writeSnapEdgeList(const std::string &Path, const EdgeList &G) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fprintf(F, "# cfv edge list: %d nodes, %lld edges%s\n", G.NumNodes,
               static_cast<long long>(G.numEdges()),
               G.isWeighted() ? ", weighted" : "");
  std::fprintf(F, "# src\tdst%s\n", G.isWeighted() ? "\tweight" : "");
  for (int64_t E = 0; E < G.numEdges(); ++E) {
    if (G.isWeighted())
      std::fprintf(F, "%d\t%d\t%.6g\n", G.Src[E], G.Dst[E], G.Weight[E]);
    else
      std::fprintf(F, "%d\t%d\n", G.Src[E], G.Dst[E]);
  }
  const bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  return Ok;
}
