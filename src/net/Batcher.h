//===- net/Batcher.h - same-dataset micro-batching ---------------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Groups serve requests that target the same dataset (the
/// Service::datasetKeyFor identity) so a burst of concurrent clients
/// asking about one graph costs a single DatasetCache round trip and a
/// single scheduler admission instead of N.  The server feeds every
/// parsed request through add(); the batcher holds it for at most the
/// configured window, coalescing arrivals that share a key, and flushes
/// a group when
///  - its window expires (flushReady, driven by the server's tick),
///  - it reaches MaxBatch members, or
///  - the server forces the point (flushAll: drain, shutdown).
///
/// A window of zero still batches: requests landing in the same loop
/// iteration (one epoll_wait dispatch batch -- e.g. a pipelined burst
/// on one connection, or several connections readable at once) group
/// together, and the end-of-iteration tick flushes them.  Nothing waits
/// longer than the current iteration, so zero-window batching adds no
/// latency -- it only merges work that was already simultaneous.
///
/// Single-threaded: owned and driven by the event-loop thread.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_NET_BATCHER_H
#define CFV_NET_BATCHER_H

#include "service/Service.h"

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace cfv {
namespace net {

class Batcher {
public:
  struct Config {
    /// Seconds a group may wait for more members (0 = flush on the next
    /// tick, i.e. coalesce within one loop iteration only).
    double WindowSeconds = 0.0;
    /// Members that force an immediate flush of a group.
    int MaxBatch = 64;
  };

  /// Receives one ready batch; every item shares one dataset identity.
  using Sink = std::function<void(std::vector<service::Service::BatchItem>)>;

  explicit Batcher(Config C) : Cfg(C) {}

  /// Adds a request at time \p Now (steady seconds).  May flush the
  /// request's group straight to \p Out when it hits MaxBatch.
  void add(service::ServeRequest Req, service::Service::Completion Done,
           double Now, const Sink &Out);

  /// Flushes every group whose window has expired at \p Now.
  void flushReady(double Now, const Sink &Out);

  /// Flushes everything regardless of window (drain/shutdown).
  void flushAll(const Sink &Out);

  /// Steady-seconds deadline of the earliest pending group, or 0 when
  /// nothing is pending -- lets the server size its epoll tick.
  double nextDeadline() const;

  /// Requests currently held (across all groups).
  std::size_t pending() const { return PendingCount; }

  /// Total flushed groups / grouped requests (for stats and tests).
  int64_t flushedBatches() const { return FlushedBatches; }
  int64_t flushedRequests() const { return FlushedRequests; }

private:
  struct Group {
    std::vector<service::Service::BatchItem> Items;
    double Deadline = 0.0; ///< steady seconds; set by the first member
  };

  void emit(Group &&G, const Sink &Out);

  const Config Cfg;
  std::map<service::DatasetKey, Group> Groups;
  std::size_t PendingCount = 0;
  int64_t FlushedBatches = 0;
  int64_t FlushedRequests = 0;
};

} // namespace net
} // namespace cfv

#endif // CFV_NET_BATCHER_H
