//===- tests/sssp_test.cpp - Wave-frontier SSSP --------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/frontier/FrontierEngine.h"

#include "graph/Generators.h"

#include "gtest/gtest.h"

#include <cmath>
#include <limits>
#include <queue>

using namespace cfv;
using namespace cfv::apps;
using namespace cfv::graph;

namespace {

/// Dijkstra reference over the same float weights.
AlignedVector<float> dijkstra(const EdgeList &G, int32_t Source) {
  const Csr Adj = buildCsr(G);
  constexpr float Inf = std::numeric_limits<float>::infinity();
  AlignedVector<float> Dist(G.NumNodes, Inf);
  Dist[Source] = 0.0f;
  using Item = std::pair<float, int32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> Q;
  Q.push({0.0f, Source});
  while (!Q.empty()) {
    const auto [D, V] = Q.top();
    Q.pop();
    if (D > Dist[V])
      continue;
    for (int64_t E = Adj.RowBegin[V]; E < Adj.RowBegin[V + 1]; ++E) {
      const float Nd = D + Adj.Weight[E];
      if (Nd < Dist[Adj.Col[E]]) {
        Dist[Adj.Col[E]] = Nd;
        Q.push({Nd, Adj.Col[E]});
      }
    }
  }
  return Dist;
}

constexpr FrVersion kAllVersions[] = {
    FrVersion::NontilingSerial, FrVersion::NontilingMask,
    FrVersion::NontilingInvec, FrVersion::TilingGrouping};

} // namespace

class SsspVersions : public ::testing::TestWithParam<FrVersion> {};

TEST_P(SsspVersions, MatchesDijkstraOnRandomGraphs) {
  for (const uint64_t Seed : {1u, 2u, 3u}) {
    const EdgeList G = genUniform(9, 4000, Seed, 64.0f);
    const auto Want = dijkstra(G, 0);
    const FrontierResult R = runFrontier(G, FrApp::Sssp, GetParam());
    ASSERT_EQ(R.Value.size(), Want.size());
    for (int32_t V = 0; V < G.NumNodes; ++V)
      ASSERT_EQ(R.Value[V], Want[V]) << "seed " << Seed << " vertex " << V
                                     << " (min is exact in float)";
  }
}

TEST_P(SsspVersions, MatchesDijkstraOnSkewedGraph) {
  const EdgeList G = genRmat(10, 10000, 4, 64.0f);
  const auto Want = dijkstra(G, 0);
  const FrontierResult R = runFrontier(G, FrApp::Sssp, GetParam());
  for (int32_t V = 0; V < G.NumNodes; ++V)
    ASSERT_EQ(R.Value[V], Want[V]);
}

TEST_P(SsspVersions, UnreachableVerticesStayInfinite) {
  // Two disconnected stars.
  EdgeList G;
  G.NumNodes = 10;
  auto AddEdge = [&](int32_t S, int32_t D, float W) {
    G.Src.push_back(S);
    G.Dst.push_back(D);
    G.Weight.push_back(W);
  };
  AddEdge(0, 1, 1.0f);
  AddEdge(1, 2, 2.0f);
  AddEdge(5, 6, 1.0f); // unreachable island
  const FrontierResult R = runFrontier(G, FrApp::Sssp, GetParam());
  EXPECT_EQ(R.Value[0], 0.0f);
  EXPECT_EQ(R.Value[1], 1.0f);
  EXPECT_EQ(R.Value[2], 3.0f);
  EXPECT_TRUE(std::isinf(R.Value[5]));
  EXPECT_TRUE(std::isinf(R.Value[6]));
}

TEST_P(SsspVersions, ParallelEdgesPickTheLighter) {
  EdgeList G;
  G.NumNodes = 4;
  // 17 parallel edges 0->1 with decreasing weights; conflicts guaranteed
  // inside one 16-lane vector.
  for (int I = 0; I < 17; ++I) {
    G.Src.push_back(0);
    G.Dst.push_back(1);
    G.Weight.push_back(20.0f - static_cast<float>(I));
  }
  const FrontierResult R = runFrontier(G, FrApp::Sssp, GetParam());
  EXPECT_EQ(R.Value[1], 4.0f);
}

INSTANTIATE_TEST_SUITE_P(AllVersions, SsspVersions,
                         ::testing::ValuesIn(kAllVersions),
                         [](const auto &Info) {
                           return versionName(Info.param);
                         });

TEST(Sssp, AllVersionsBitIdentical) {
  const EdgeList G = genRmat(9, 6000, 5, 64.0f);
  const FrontierResult Ref =
      runFrontier(G, FrApp::Sssp, FrVersion::NontilingSerial);
  for (const FrVersion V :
       {FrVersion::NontilingMask, FrVersion::NontilingInvec,
        FrVersion::TilingGrouping}) {
    const FrontierResult R = runFrontier(G, FrApp::Sssp, V);
    EXPECT_EQ(R.Value, Ref.Value) << versionName(V);
    EXPECT_EQ(R.Iterations, Ref.Iterations) << versionName(V);
  }
}

TEST_P(SsspVersions, SelfLoopsAreHarmless) {
  EdgeList G;
  G.NumNodes = 4;
  auto AddEdge = [&](int32_t S, int32_t D, float W) {
    G.Src.push_back(S);
    G.Dst.push_back(D);
    G.Weight.push_back(W);
  };
  AddEdge(0, 0, 1.0f); // self loop at the source
  AddEdge(0, 1, 2.0f);
  AddEdge(1, 1, 5.0f); // self loop mid-path
  AddEdge(1, 2, 3.0f);
  const FrontierResult R = runFrontier(G, FrApp::Sssp, GetParam());
  EXPECT_EQ(R.Value[0], 0.0f);
  EXPECT_EQ(R.Value[1], 2.0f);
  EXPECT_EQ(R.Value[2], 5.0f);
}

TEST_P(SsspVersions, SourceWithNoOutgoingEdges) {
  EdgeList G;
  G.NumNodes = 4;
  G.Src = {1, 2};
  G.Dst = {2, 3};
  G.Weight = {1.0f, 1.0f};
  FrontierOptions O;
  O.Source = 0; // isolated source
  const FrontierResult R = runFrontier(G, FrApp::Sssp, GetParam(), O);
  EXPECT_EQ(R.Value[0], 0.0f);
  EXPECT_TRUE(std::isinf(R.Value[1]));
  EXPECT_TRUE(std::isinf(R.Value[3]));
  EXPECT_LE(R.Iterations, 1);
}

TEST_P(SsspVersions, NonZeroSource) {
  const EdgeList G = genUniform(8, 3000, 44, 16.0f);
  FrontierOptions O;
  O.Source = 100;
  const FrontierResult R = runFrontier(G, FrApp::Sssp, GetParam(), O);
  const FrontierResult Ref =
      runFrontier(G, FrApp::Sssp, FrVersion::NontilingSerial, O);
  EXPECT_EQ(R.Value, Ref.Value);
  EXPECT_EQ(R.Value[100], 0.0f);
}

TEST(Sssp, GroupingReportsPrepTime) {
  const EdgeList G = genRmat(9, 6000, 6, 64.0f);
  const FrontierResult R =
      runFrontier(G, FrApp::Sssp, FrVersion::TilingGrouping);
  EXPECT_GT(R.TilingSeconds + R.GroupingSeconds, 0.0);
  const FrontierResult S =
      runFrontier(G, FrApp::Sssp, FrVersion::NontilingSerial);
  EXPECT_EQ(S.GroupingSeconds, 0.0);
}

TEST(Sssp, MaskUtilizationWithinBounds) {
  const EdgeList G = genRmat(9, 6000, 7, 64.0f);
  const FrontierResult R =
      runFrontier(G, FrApp::Sssp, FrVersion::NontilingMask);
  EXPECT_GT(R.SimdUtil, 0.0);
  EXPECT_LE(R.SimdUtil, 1.0);
}
