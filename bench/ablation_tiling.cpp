//===- bench/ablation_tiling.cpp - Tiling's cache crossover ---------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Figure 8's tiling_serial runs 1.5-2.5x faster than nontiling_serial on
// KNL because the SNAP graphs' randomly accessed reduction arrays spill
// its 1 MB per-tile L2.  At this repository's quick-bench scale the
// vertex arrays are cache resident and the effect disappears
// (EXPERIMENTS.md).  This harness sweeps the vertex count to locate the
// crossover on the build host: per-edge cost of the untiled, tiled, and
// tiled+invec PageRank edge phase as the working set grows past each
// cache level.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/pagerank/PageRank.h"
#include "graph/Generators.h"
#include "util/TablePrinter.h"

#include <cstdlib>

using namespace cfv;
using namespace cfv::apps;
using namespace cfv::bench;

namespace {

double envScaleLocal() {
  const char *S = std::getenv("CFV_SCALE");
  if (!S)
    return 1.0;
  const double V = std::atof(S);
  return V < 0.01 ? 0.01 : (V > 1000.0 ? 1000.0 : V);
}

} // namespace

int main() {
  banner("Ablation (Figure 8 context)",
         "tiling benefit vs working-set size (PageRank edge phase)");
  const double Scale = envScaleLocal();
  // Iterations shrink as graphs grow so each cell costs similar time.
  struct Cell {
    int ScaleBits;
    int Iters;
  };
  const Cell Cells[] = {{14, 24}, {16, 16}, {18, 8}, {20, 4}, {22, 2}};

  TablePrinter T({"vertices", "edges", "arrays(MB)", "untiled ns/edge",
                  "tiled ns/edge", "tiled+invec ns/edge",
                  "tiling speedup"});
  for (const Cell &C : Cells) {
    const int64_t V = int64_t(1) << C.ScaleBits;
    const int64_t E = static_cast<int64_t>(6.0 * V * Scale);
    const graph::EdgeList G =
        graph::genRmat(C.ScaleBits, E, 0x71 + C.ScaleBits);

    PageRankOptions O;
    O.MaxIterations = C.Iters;
    O.Tolerance = 0.0f; // fixed-iteration measurement

    const PageRankResult Untiled =
        runPageRank(G, PrVersion::NontilingSerial, O);
    const PageRankResult Tiled = runPageRank(G, PrVersion::TilingSerial, O);
    const PageRankResult Invec = runPageRank(G, PrVersion::TilingInvec, O);

    const double EdgeOps = static_cast<double>(E) * C.Iters;
    const double MB =
        3.0 * static_cast<double>(V) * 4.0 / (1024.0 * 1024.0);
    T.addRow({std::to_string(V), std::to_string(E),
              TablePrinter::fmt(MB, 1),
              TablePrinter::fmt(Untiled.ComputeSeconds / EdgeOps * 1e9, 2),
              TablePrinter::fmt(Tiled.ComputeSeconds / EdgeOps * 1e9, 2),
              TablePrinter::fmt(Invec.ComputeSeconds / EdgeOps * 1e9, 2),
              speedup(Untiled.ComputeSeconds, Tiled.ComputeSeconds)});
  }
  T.print();

  paperNote("on KNL (1MB L2, no L3) tiling paid off at SNAP scale; on a "
            "large-L3 host the crossover needs a working set past L2/L3 "
            "-- the rightmost rows show where this machine turns");
  return 0;
}
