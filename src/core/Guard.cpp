//===- core/Guard.cpp - Differential validation support -------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "core/Guard.h"

#include "util/Env.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace cfv;
using namespace cfv::core;

const bool guard::EnvEnabled = env::boolVar("CFV_VALIDATE", false);
int guard::ForcedState = -1;

void guard::setEnabled(bool On) { ForcedState = On ? 1 : 0; }
void guard::clearForcedState() { ForcedState = -1; }

void guard::reportMaskMismatch(const char *Alg, const char *Op,
                               const char *Field, unsigned Expected,
                               unsigned Got) {
  std::fprintf(stderr,
               "cfv guard: %s<%s> %s mask mismatch: expected 0x%04x, got "
               "0x%04x (CFV_VALIDATE tripwire; aborting)\n",
               Alg, Op, Field, Expected, Got);
  std::abort();
}

void guard::reportCountMismatch(const char *Alg, const char *Op, int Expected,
                                int Got) {
  std::fprintf(stderr,
               "cfv guard: %s<%s> distinct-count mismatch: expected %d, got "
               "%d (CFV_VALIDATE tripwire; aborting)\n",
               Alg, Op, Expected, Got);
  std::abort();
}

void guard::reportLaneMismatch(const char *Alg, const char *Op, int Payload,
                               int Lane, long long IdxValue, double Expected,
                               double Got) {
  std::fprintf(stderr,
               "cfv guard: %s<%s> payload %d lane %d (index %lld) mismatch: "
               "expected %.9g, got %.9g (CFV_VALIDATE tripwire; aborting)\n",
               Alg, Op, Payload, Lane, IdxValue, Expected, Got);
  std::abort();
}
