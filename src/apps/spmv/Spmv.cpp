//===- apps/spmv/Spmv.cpp - Sparse matrix-vector multiply -----------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/spmv/Spmv.h"

#include "core/Backends.h"
#include "graph/MappedCsr.h"
#include "core/InvecReduce.h"
#include "core/ParallelEngine.h"
#include "core/Variant.h"
#include "simd/Traits.h"
#include "inspector/Grouping.h"
#include "inspector/Tiling.h"
#include "masking/ConflictMask.h"
#include "obs/Trace.h"
#include "pattern/Classify.h"
#include "pattern/Dispatch.h"
#include "util/Stats.h"
#include "util/Timer.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <vector>

using namespace cfv;
using namespace cfv::apps;

using B = simd::NativeBackend;
using IVec = simd::VecI32<B>;
using FVec = simd::VecF32<B>;
using simd::Mask16;
constexpr int kLanes = B::kLanes;
constexpr Mask16 kAllLanes = simd::BackendTraits<B>::kFullMask;

#if CFV_VARIANT_PRIMARY
const char *apps::versionName(SpmvVersion V) {
  switch (V) {
  case SpmvVersion::CooSerial:
    return "coo_serial";
  case SpmvVersion::CsrSerial:
    return "csr_serial";
  case SpmvVersion::CooMask:
    return "coo_mask";
  case SpmvVersion::CooInvec:
    return "coo_invec";
  case SpmvVersion::CooGrouping:
    return "coo_grouping";
  }
  return "unknown";
}
#endif // CFV_VARIANT_PRIMARY

namespace {

/// The COO arrays one multiply streams, decoupled from their owner: the
/// in-core EdgeList or the mmap'd COO sections of a MappedCsr.  Edge
/// order is identical either way, so every kernel below is bit-identical
/// across the two sources.
struct CooView {
  const int32_t *Src = nullptr;
  const int32_t *Dst = nullptr;
  const float *Wt = nullptr;
  int64_t M = 0;
  int32_t N = 0;

  static CooView of(const graph::EdgeList &A) {
    return {A.Src.data(), A.Dst.data(), A.Weight.data(), A.numEdges(),
            A.NumNodes};
  }
  static CooView of(const graph::MappedCsr &G) {
    return {G.edgeSrc(), G.edgeDst(), G.edgeWeight(), G.numEdges(),
            G.numNodes()};
  }
};

void multiplyCooSerial(const CooView &A, const float *X, int64_t Lo,
                       int64_t Hi, core::FloatSink Out) {
  for (int64_t E = Lo; E < Hi; ++E)
    Out.add(A.Src[E], A.Wt[E] * X[A.Dst[E]]);
}

/// CSR rows are disjoint accumulation targets, so row chunks write the
/// shared output directly -- no privatization needed at any thread count.
void multiplyCsrSerial(const graph::CsrView &C, const float *X, int32_t RowLo,
                       int32_t RowHi, float *Y) {
  for (int32_t R = RowLo; R < RowHi; ++R) {
    float Acc = 0.0f;
    for (int64_t E = C.RowBegin[R], End = C.RowBegin[R + 1]; E < End; ++E)
      Acc += C.Weight[E] * X[C.Col[E]];
    Y[R] += Acc;
  }
}

void multiplyCooMask(const CooView &A, const float *X, int64_t Lo,
                     int64_t Hi, core::FloatSink Out, SimdUtilCounter &Util) {
  const int32_t *Src = A.Src + Lo;
  const int32_t *Dst = A.Dst + Lo;
  const float *Wt = A.Wt + Lo;
  auto LoadIdx = [&](IVec Pos, Mask16 Lanes) {
    return IVec::maskGather(IVec::zero(), Lanes, Src, Pos);
  };
  auto Commit = [&](Mask16 Safe, IVec Pos, IVec Row) {
    const IVec Col = IVec::maskGather(IVec::zero(), Safe, Dst, Pos);
    const FVec V = FVec::maskGather(FVec::zero(), Safe, Wt, Pos);
    const FVec Xc = FVec::maskGather(FVec::zero(), Safe, X, Col);
    Out.commit(Safe, Row, V * Xc);
  };
  masking::maskedStreamLoop<B>(Hi - Lo, LoadIdx,
                               masking::AllLanesNeedUpdate{}, Commit, &Util);
}

void multiplyCooInvec(const CooView &A, const float *X, int64_t Lo,
                      int64_t Hi, core::FloatSink Out,
                      ConflictCounter &MeanD1) {
  for (int64_t E = Lo; E < Hi; E += kLanes) {
    const int64_t Left = Hi - E;
    const Mask16 Active =
        Left >= kLanes ? kAllLanes
                       : static_cast<Mask16>((1u << Left) - 1u);
    const IVec Row = IVec::maskLoad(IVec::zero(), Active, A.Src + E);
    const IVec Col = IVec::maskLoad(IVec::zero(), Active, A.Dst + E);
    const FVec V = FVec::maskLoad(FVec::zero(), Active, A.Wt + E);
    const FVec Xc = FVec::maskGather(FVec::zero(), Active, X, Col);
    FVec Prod = V * Xc;
    const core::InvecResult R = core::invecReduce<simd::OpAdd>(Active, Row,
                                                               Prod);
    MeanD1.add(R.Distinct);
    Out.commit(R.Ret, Row, Prod);
  }
}

/// Pattern-dispatch COO multiply (src/pattern/): walks the pseudo-tiles
/// of the row-stream classification intersecting [Lo, Hi) and routes
/// each piece to its class kernel; General pieces run the plain invec
/// loop.  Chunk bounds are lane-aligned and pseudo-tile starts are
/// TileLen-aligned (TileLen a multiple of 16), so every vector stays
/// inside a certified window even when a chunk starts mid-tile.
void multiplyCooPattern(const CooView &A, const float *X,
                        const pattern::PatternResult &P, int64_t Lo,
                        int64_t Hi, core::FloatSink Out,
                        ConflictCounter &MeanD1,
                        pattern::DispatchCounts &Counts) {
  const int32_t *Row = A.Src;
  for (int64_t E = Lo; E < Hi;) {
    const int64_t T = E / P.TileLen;
    const int64_t End = std::min(Hi, (T + 1) * P.TileLen);
    const auto Payload = [&](Mask16 Active, int64_t I) {
      const IVec Col =
          IVec::maskLoad(IVec::zero(), Active, A.Dst + E + I);
      const FVec V =
          FVec::maskLoad(FVec::zero(), Active, A.Wt + E + I);
      const FVec Xc = FVec::maskGather(FVec::zero(), Active, X, Col);
      return V * Xc;
    };
    if (!pattern::runTileSpecialized<simd::OpAdd, float, B>(
            P.Tiles[T], Row + E, End - E, Payload, Out, &Counts))
      multiplyCooInvec(A, X, E, End, Out, MeanD1);
    E = End;
  }
}

struct GroupedMatrix {
  AlignedVector<int32_t> Row, Col;
  AlignedVector<float> Val;
  AlignedVector<Mask16> GroupMask;
  int64_t NumGroups = 0;
};

GroupedMatrix groupMatrix(const CooView &A, int BlockBits) {
  const inspector::TilingResult Tiling =
      inspector::tileByDestination(A.Src, A.M, A.N, BlockBits);
  inspector::GroupingResult G =
      inspector::groupConflictFree(A.Src, A.N, Tiling, kLanes);
  GroupedMatrix M;
  M.Row = inspector::applyGrouping(G, A.Src, int32_t(0));
  M.Col = inspector::applyGrouping(G, A.Dst, int32_t(0));
  M.Val = inspector::applyGrouping(G, A.Wt, 0.0f);
  M.GroupMask = std::move(G.GroupMask);
  M.NumGroups = G.NumGroups;
  return M;
}

void multiplyGrouped(const GroupedMatrix &M, const float *X, int64_t GLo,
                     int64_t GHi, core::FloatSink Out) {
  for (int64_t G = GLo; G < GHi; ++G) {
    const Mask16 Msk = M.GroupMask[G];
    const IVec Row = IVec::load(M.Row.data() + G * kLanes);
    const IVec Col = IVec::load(M.Col.data() + G * kLanes);
    const FVec V = FVec::load(M.Val.data() + G * kLanes);
    const FVec Xc = FVec::maskGather(FVec::zero(), Msk, X, Col);
    // Rows distinct within a group: plain read-modify-write.
    Out.commit(Msk, Row, V * Xc);
  }
}

} // namespace

// Compiled once per backend variant; the public apps::runSpmv forwards
// here through core::dispatch().
SpmvResult apps::CFV_VARIANT_NS::runSpmv(const graph::EdgeList &A,
                                         const float *X, SpmvVersion V,
                                         int Repeats,
                                         const core::RunOptions &O) {
  // Out-of-core substitution: a compatible MappedCsr replaces the
  // EdgeList arrays wholesale (same edges, same order -- bit-identical),
  // and also serves a hollow EdgeList (numEdges() == 0) whose edges live
  // only in the mapping.
  const graph::MappedCsr *Mapped = O.SharedMapped;
  const bool UseMapped =
      Mapped && Mapped->numNodes() == A.NumNodes && Mapped->isWeighted() &&
      (A.numEdges() == 0 || A.numEdges() == Mapped->numEdges());
  const CooView Coo = UseMapped ? CooView::of(*Mapped) : CooView::of(A);
  assert((Coo.Wt || Coo.M == 0) &&
         "SpMV needs matrix values on the edge list");
  SpmvResult R;
  R.Y.assign(Coo.N, 0.0f);
  const int NumThreads = core::resolveThreads(O.Threads);
  std::vector<SimdUtilCounter> Utils(NumThreads);
  std::vector<ConflictCounter> D1s(NumThreads);

  graph::Csr LocalCsr;
  graph::CsrView CsrV;
  GroupedMatrix M;
  if (V == SpmvVersion::CsrSerial) {
    WallTimer P;
    // Reuse a compatible precomputed CSR (PreparedGraph through the
    // cfv::run facade), or the mapped file's CSR sections, instead of
    // rebuilding per run.
    if (UseMapped) {
      CsrV = Mapped->csrView();
    } else if (O.SharedCsr && O.SharedCsr->NumNodes == A.NumNodes &&
               O.SharedCsr->numEdges() == A.numEdges()) {
      CsrV = graph::CsrView::of(*O.SharedCsr);
    } else {
      LocalCsr = graph::buildCsr(A);
      CsrV = graph::CsrView::of(LocalCsr);
    }
    R.PrepSeconds = P.seconds();
    obs::Tracer::instance().recordAt("spmv:csr_build", "inspector",
                                     monotonicSeconds() - R.PrepSeconds,
                                     R.PrepSeconds);
  } else if (V == SpmvVersion::CooGrouping) {
    WallTimer P;
    // Grouping materializes permuted copies, so the mapped COO is read
    // once here; tell the window the whole range streams through.
    if (UseMapped)
      Mapped->adviseEdgeRange(0, Coo.M);
    M = groupMatrix(Coo, /*BlockBits=*/16);
    R.PrepSeconds = P.seconds();
    obs::Tracer::instance().recordAt("spmv:group", "inspector",
                                     monotonicSeconds() - R.PrepSeconds,
                                     R.PrepSeconds);
  }

  // Pattern classification of the row stream (src/pattern/) for the
  // invec dispatch: reuse a compatible shared classification
  // (PreparedGraph::streamPattern through the cfv::run facade), classify
  // locally otherwise; local classification is inspector work and lands
  // in PrepSeconds.
  const pattern::Mode PMode = pattern::resolveMode(O.Pattern);
  std::unique_ptr<pattern::PatternResult> LocalPat;
  const pattern::PatternResult *Pat = nullptr;
  if (V == SpmvVersion::CooInvec && PMode != pattern::Mode::Off &&
      Coo.M > 0) {
    const pattern::PatternResult *SP = O.SharedPattern;
    if (pattern::compatible(SP) && SP->TileLen > 0 &&
        SP->numTiles() == (Coo.M + SP->TileLen - 1) / SP->TileLen) {
      Pat = SP;
    } else {
      WallTimer P;
      LocalPat = std::make_unique<pattern::PatternResult>(
          pattern::classifyStream(Coo.Src, Coo.M));
      Pat = LocalPat.get();
      R.PrepSeconds += P.seconds();
    }
  }
  const bool UsePattern = Pat != nullptr && PMode == pattern::Mode::On;
  std::vector<pattern::DispatchCounts> PCounts;
  if (UsePattern)
    PCounts.resize(NumThreads);

  // CSR needs no privatized replicas (rows are disjoint); the COO paths
  // accumulate by row index and privatize like every other app.
  const std::vector<int64_t> Bounds =
      V == SpmvVersion::CsrSerial ? core::chunkBounds(Coo.N, NumThreads, 1)
      : V == SpmvVersion::CooGrouping
          ? core::chunkBounds(M.NumGroups, NumThreads, 1)
          : core::chunkBounds(Coo.M, NumThreads, kLanes);
  const bool NeedsSink = V != SpmvVersion::CsrSerial;
  const bool Dense = NumThreads <= 1 ||
                     core::useDensePrivatization(Coo.N, sizeof(float),
                                                 Coo.M, NumThreads);
  const int Replicas = NeedsSink && NumThreads > 1 ? NumThreads - 1 : 0;
  std::vector<AlignedVector<float>> Parts(Dense ? Replicas : 0);
  for (auto &P : Parts)
    P.assign(Coo.N, 0.0f);
  std::vector<core::SpillListF> Spills(Dense ? 0 : Replicas);
  core::ParallelEngine &Engine = core::ParallelEngine::instance();

  const auto Body = [&](int Tid) {
    const int64_t Lo = Bounds[Tid], Hi = Bounds[Tid + 1];
    // Prefetch the mapped ranges this chunk streams (advisory only).
    if (UseMapped) {
      if (V == SpmvVersion::CsrSerial)
        Mapped->adviseCsrRange(CsrV.RowBegin[Lo], CsrV.RowBegin[Hi]);
      else if (V != SpmvVersion::CooGrouping)
        Mapped->adviseEdgeRange(Lo, Hi);
    }
    // CSR has no replicas (NeedsSink false): every row chunk writes Y.
    const core::FloatSink Out =
        Tid == 0 || !NeedsSink ? core::FloatSink::dense(R.Y.data())
        : Dense ? core::FloatSink::dense(Parts[Tid - 1].data())
                : core::FloatSink::spill(&Spills[Tid - 1]);
    switch (V) {
    case SpmvVersion::CooSerial:
      multiplyCooSerial(Coo, X, Lo, Hi, Out);
      break;
    case SpmvVersion::CsrSerial:
      multiplyCsrSerial(CsrV, X, static_cast<int32_t>(Lo),
                        static_cast<int32_t>(Hi), R.Y.data());
      break;
    case SpmvVersion::CooMask:
      multiplyCooMask(Coo, X, Lo, Hi, Out, Utils[Tid]);
      break;
    case SpmvVersion::CooInvec:
      if (UsePattern)
        multiplyCooPattern(Coo, X, *Pat, Lo, Hi, Out, D1s[Tid],
                           PCounts[Tid]);
      else
        multiplyCooInvec(Coo, X, Lo, Hi, Out, D1s[Tid]);
      break;
    case SpmvVersion::CooGrouping:
      multiplyGrouped(M, X, Lo, Hi, Out);
      break;
    }
  };

  WallTimer W;
  for (int It = 0; It < Repeats; ++It) {
    Engine.run(NumThreads, Body);
    if (!NeedsSink)
      continue;
    if (Dense) {
      core::mergeTreeAdd(R.Y.data(), Parts, Coo.N);
    } else {
      for (auto &L : Spills) {
        core::applySpillAdd(L, R.Y.data());
        L.clear();
      }
    }
  }
  R.Seconds = W.seconds();
  SimdUtilCounter Util = Utils[0];
  ConflictCounter MeanD1 = D1s[0];
  for (int T = 1; T < NumThreads; ++T) {
    Util.merge(Utils[T]);
    MeanD1.merge(D1s[T]);
  }
  R.SimdUtil = Util.utilization();
  R.UtilHist = Util.laneHistogram();
  R.MeanD1 = MeanD1.count() ? MeanD1.mean() : 0.0;
  R.D1Hist = MeanD1.histogram();
  if (Pat)
    for (int C = 0; C < pattern::kNumTileClasses; ++C)
      R.PatternTiles[C] = Pat->Counts[C];
  if (UsePattern) {
    pattern::DispatchCounts Total;
    for (const pattern::DispatchCounts &PC : PCounts)
      Total.merge(PC);
    pattern::recordDispatch(Total);
  }
  return R;
}
