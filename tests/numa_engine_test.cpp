//===- tests/numa_engine_test.cpp - Sharded execution correctness ---------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The NUMA contract end to end through the cfv::run facade, on synthetic
// 1/2/4-node topologies injected through the test seam (no multi-node
// hardware required): min/label apps (SSSP, WCC, BFS) are bit-identical
// to flat serial at any topology, float-add apps (PageRank, SpMV) agree
// within tolerance, every run is run-to-run deterministic, and the
// reported NumaNodes matches the plan the topology allows.
//
//===----------------------------------------------------------------------===//

#include "core/Api.h"
#include "graph/Generators.h"
#include "numa/Topology.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace cfv;

namespace {

struct TopologyGuard {
  explicit TopologyGuard(const numa::Topology &T) {
    numa::setTopologyForTest(&T);
  }
  ~TopologyGuard() { numa::setTopologyForTest(nullptr); }
};

numa::Topology makeNodes(std::vector<std::vector<int>> NodeCpus) {
  numa::Topology T;
  T.NodeCpus = std::move(NodeCpus);
  return T;
}

/// One app under test: the facade request plus whether the NUMA merge
/// must reproduce serial bitwise.  Min/label relaxations (SSSP, WCC,
/// BFS) are exact under any merge pairing; float-add accumulations
/// (PageRank, SpMV) only up to reassociation.
struct AppCase {
  AppId App;
  int MaxIterations;
  bool Exact;
};

const AppCase kApps[] = {
    {AppId::PageRank, 3, false},
    {AppId::Sssp, 0, true},
    {AppId::Wcc, 0, true},
    {AppId::Bfs, 0, true},
    {AppId::Spmv, 1, false},
};

const graph::EdgeList &testGraph() {
  static const graph::EdgeList G = graph::genRmat(12, 60000, 42, 16.0f);
  return G;
}

AppResult runCase(const AppCase &C, int Threads, core::NumaChoice Numa) {
  AppRequest R;
  R.App = C.App;
  R.Version = AppVersion::Default;
  R.Graph = &testGraph();
  R.Options.Threads = Threads;
  R.Options.MaxIterations = C.MaxIterations;
  R.Options.Numa = Numa;
  Expected<AppResult> Res = run(R);
  EXPECT_TRUE(Res.ok()) << appIdName(C.App) << ": "
                        << Res.status().toString();
  return Res.ok() ? std::move(*Res) : AppResult{};
}

/// Bitwise equality (inf-safe: same bits, same value).
void expectBitIdentical(const AlignedVector<float> &A,
                        const AlignedVector<float> &B, const char *What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  if (!A.empty())
    EXPECT_EQ(std::memcmp(A.data(), B.data(), A.size() * sizeof(float)), 0)
        << What;
}

/// Exact or tolerance comparison per the app's contract.
void expectAgree(const AlignedVector<float> &Got,
                 const AlignedVector<float> &Want, bool Exact,
                 const char *What) {
  if (Exact) {
    expectBitIdentical(Got, Want, What);
    return;
  }
  ASSERT_EQ(Got.size(), Want.size()) << What;
  for (size_t I = 0; I < Got.size(); ++I) {
    const float G = Got[I], W = Want[I];
    if (!std::isfinite(W)) {
      // Unreachable slots must agree exactly (same +/-inf).
      EXPECT_EQ(std::memcmp(&G, &W, sizeof(float)), 0)
          << What << " slot " << I;
      continue;
    }
    const float Tol =
        1e-4f * std::max({1.0f, std::fabs(G), std::fabs(W)});
    EXPECT_NEAR(G, W, Tol) << What << " slot " << I;
  }
}

} // namespace

TEST(NumaEngine, ShardedMatchesFlatSerialAcrossTopologies) {
  const struct {
    const char *Name;
    numa::Topology T;
    int WantNodes;
  } Topos[] = {
      {"1-node", makeNodes({{0, 1, 2, 3}}), 1},
      {"2-node", makeNodes({{0, 1}, {2, 3}}), 2},
      {"4-node", makeNodes({{0}, {1}, {2}, {3}}), 4},
  };
  for (const AppCase &C : kApps) {
    // The reference: flat serial, no plan.
    const AppResult Ref = runCase(C, /*Threads=*/1, core::NumaChoice::Off);
    ASSERT_FALSE(Ref.Values.empty()) << appIdName(C.App);
    EXPECT_EQ(Ref.NumaNodes, 1);
    for (const auto &Topo : Topos) {
      TopologyGuard G(Topo.T);
      const AppResult Res =
          runCase(C, /*Threads=*/4, core::NumaChoice::Auto);
      const std::string What =
          std::string(appIdName(C.App)) + " auto/" + Topo.Name;
      EXPECT_EQ(Res.NumaNodes, Topo.WantNodes) << What;
      expectAgree(Res.Values, Ref.Values, C.Exact, What.c_str());
    }
  }
}

TEST(NumaEngine, InterleaveAgreesToo) {
  const numa::Topology Two = makeNodes({{0, 1}, {2, 3}});
  TopologyGuard G(Two);
  for (const AppCase &C : kApps) {
    const AppResult Ref = runCase(C, 1, core::NumaChoice::Off);
    const AppResult Res = runCase(C, 4, core::NumaChoice::Interleave);
    EXPECT_EQ(Res.NumaNodes, 2) << appIdName(C.App);
    expectAgree(Res.Values, Ref.Values, C.Exact, appIdName(C.App));
  }
}

TEST(NumaEngine, ShardedRunsAreDeterministic) {
  // Same request, same plan, twice: bitwise-identical output for every
  // app -- the fixed merge pairing holds under sharding.
  const numa::Topology Four = makeNodes({{0}, {1}, {2}, {3}});
  TopologyGuard G(Four);
  for (const AppCase &C : kApps) {
    const AppResult A = runCase(C, 4, core::NumaChoice::Auto);
    const AppResult B = runCase(C, 4, core::NumaChoice::Auto);
    expectBitIdentical(A.Values, B.Values, appIdName(C.App));
  }
}

TEST(NumaEngine, ShardedMatchesFlatAtSameThreadCount) {
  // Numa=Off at 4 threads is the pre-NUMA engine behavior; Auto on a
  // 2-node topology must agree with it under each app's contract.
  const numa::Topology Two = makeNodes({{0, 1}, {2, 3}});
  TopologyGuard G(Two);
  for (const AppCase &C : kApps) {
    const AppResult Flat = runCase(C, 4, core::NumaChoice::Off);
    const AppResult Sharded = runCase(C, 4, core::NumaChoice::Auto);
    EXPECT_EQ(Flat.NumaNodes, 1) << appIdName(C.App);
    EXPECT_EQ(Sharded.NumaNodes, 2) << appIdName(C.App);
    expectAgree(Sharded.Values, Flat.Values, C.Exact, appIdName(C.App));
  }
}

TEST(NumaEngine, EnvChoiceFollowsCfvNuma) {
  const numa::Topology Two = makeNodes({{0, 1}, {2, 3}});
  TopologyGuard G(Two);
  const char *Prev = std::getenv("CFV_NUMA");
  const std::string Saved = Prev ? Prev : "";

  const AppCase &C = kApps[0]; // pagerank
  setenv("CFV_NUMA", "off", 1);
  EXPECT_EQ(runCase(C, 4, core::NumaChoice::Env).NumaNodes, 1);
  setenv("CFV_NUMA", "auto", 1);
  EXPECT_EQ(runCase(C, 4, core::NumaChoice::Env).NumaNodes, 2);
  // The per-request choice outranks the environment.
  setenv("CFV_NUMA", "auto", 1);
  EXPECT_EQ(runCase(C, 4, core::NumaChoice::Off).NumaNodes, 1);

  if (Prev)
    setenv("CFV_NUMA", Saved.c_str(), 1);
  else
    unsetenv("CFV_NUMA");
}

TEST(NumaEngine, SerialRunsNeverPlan) {
  const numa::Topology Four = makeNodes({{0}, {1}, {2}, {3}});
  TopologyGuard G(Four);
  for (const AppCase &C : kApps) {
    const AppResult Res = runCase(C, 1, core::NumaChoice::Auto);
    EXPECT_EQ(Res.NumaNodes, 1) << appIdName(C.App);
  }
}
