//===- bench/serve_throughput.cpp - Serving layer latency harness ---------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Measures what the serving layer buys: end-to-end request latency cold
// (dataset load + inspector schedules + kernel) versus warm (cache hit,
// schedules reused, kernel only).  The paper amortizes inspector cost
// across iterations of one run; the dataset cache extends that across
// requests, so a warm request should be dominated by kernel time alone.
//
// Part 1 reports cold/warm latency and the speedup for pagerank and
// sssp, one JSON line each.  Part 2 drives a sustained sequence of mixed
// requests across four applications through one Service instance and
// reports aggregate throughput plus the cache counters.  Part 3 is the
// overload contrast: the same burst of concurrent traffic against a
// small queue, once with shedding disabled and once with the queue
// watermark at 50%, reporting admitted-request p50/p95/p99 and the
// shed/rejected split -- the numbers behind "shedding trades a little
// goodput for bounded tail latency".
//
//   $ bench/serve_throughput
//   {"bench":"serve_cold_warm","app":"pagerank",...,"speedup":57.1}
//   {"bench":"serve_cold_warm","app":"sssp",...,"speedup":21.9}
//   {"bench":"serve_sustained","requests":120,...}
//   {"bench":"serve_overload","shedding":false,...,"p99_seconds":...}
//   {"bench":"serve_overload","shedding":true,...,"p99_seconds":...}
//
// Every line is one JSON object, so scripts/bench_collect.sh can fold
// the whole run into BENCH_<rev>.json unmodified.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "service/Service.h"
#include "util/Timer.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#if defined(__linux__)
#include "net/Server.h"

#include <arpa/inet.h>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#endif

using namespace cfv;
using namespace cfv::service;

namespace {

ServeRequest makeRequest(const std::string &App, const std::string &Dataset,
                         double Scale, int Iters) {
  ServeRequest R;
  R.App = App;
  R.Dataset = Dataset;
  R.Scale = Scale;
  R.Iters = Iters;
  return R;
}

/// Submits \p R and returns end-to-end wall latency; aborts on errors so
/// the bench never reports numbers for failed work.
double timedRequest(Service &Svc, const ServeRequest &R, ServeResponse *Out) {
  WallTimer T;
  const ServeResponse Resp = Svc.submit(R).get();
  const double Seconds = T.seconds();
  if (!Resp.Ok) {
    std::fprintf(stderr, "error: %s %s: %s\n", R.App.c_str(),
                 R.Dataset.c_str(), Resp.Error.toString().c_str());
    std::exit(1);
  }
  if (Out)
    *Out = Resp;
  return Seconds;
}

/// Cold-vs-warm latency for one app: a fresh Service per app so the
/// first request pays the full load, then the same request again.  Few
/// kernel iterations keep the load dominant, the serving-relevant
/// regime.
void coldWarm(const std::string &App, double Scale) {
  Service::Config C;
  C.CacheBytes = 0; // unlimited; eviction is the cache test's business
  Service Svc(C);

  const ServeRequest R = makeRequest(App, "higgs-twitter-sim", Scale, 2);
  ServeResponse Cold, Warm;
  const double ColdSeconds = timedRequest(Svc, R, &Cold);
  const double WarmSeconds = timedRequest(Svc, R, &Warm);

  std::printf("{\"bench\":\"serve_cold_warm\",\"app\":\"%s\","
              "\"scale\":%g,"
              "\"cold_seconds\":%.6f,\"warm_seconds\":%.6f,"
              "\"cold_load_seconds\":%.6f,\"warm_load_seconds\":%.6f,"
              "\"warm_cache_hit\":%s,\"speedup\":%.2f}\n",
              App.c_str(), Scale, ColdSeconds, WarmSeconds,
              Cold.LoadSeconds, Warm.LoadSeconds,
              Warm.CacheHit ? "true" : "false",
              WarmSeconds > 0.0 ? ColdSeconds / WarmSeconds : 0.0);
  std::fflush(stdout);
}

/// A sustained mixed-app sequence through one warm service: the steady
/// state a long-lived cfv_serve process reaches.
void sustained(int Requests, double Scale) {
  Service::Config C;
  C.CacheBytes = 0;
  Service Svc(C);

  const std::vector<ServeRequest> Mix = {
      makeRequest("pagerank", "higgs-twitter-sim", Scale, 3),
      makeRequest("sssp", "higgs-twitter-sim", Scale, 0),
      makeRequest("wcc", "soc-pokec-sim", Scale, 0),
      makeRequest("bfs", "amazon0312-sim", Scale, 0),
  };

  WallTimer T;
  double KernelSeconds = 0.0, LoadSeconds = 0.0;
  bench::LatencyRecorder Latency;
  for (int I = 0; I < Requests; ++I) {
    ServeResponse Resp;
    Latency.add(
        timedRequest(Svc, Mix[static_cast<size_t>(I) % Mix.size()], &Resp));
    KernelSeconds += Resp.KernelSeconds;
    LoadSeconds += Resp.LoadSeconds;
  }
  const double Wall = T.seconds();

  const CacheStats S = Svc.cacheStats();
  std::printf("{\"bench\":\"serve_sustained\",\"requests\":%d,"
              "\"apps\":%d,\"scale\":%g,"
              "\"wall_seconds\":%.6f,\"requests_per_second\":%.1f,"
              "\"kernel_seconds\":%.6f,\"load_seconds\":%.6f,"
              "\"p50_seconds\":%.6f,\"p95_seconds\":%.6f,"
              "\"p99_seconds\":%.6f,"
              "\"cache_hits\":%lld,\"cache_misses\":%lld,"
              "\"cache_resident_bytes\":%lld}\n",
              Requests, static_cast<int>(Mix.size()), Scale, Wall,
              Wall > 0.0 ? Requests / Wall : 0.0, KernelSeconds, LoadSeconds,
              Latency.quantile(0.50), Latency.quantile(0.95),
              Latency.quantile(0.99), static_cast<long long>(S.Hits),
              static_cast<long long>(S.Misses),
              static_cast<long long>(S.ResidentBytes));
  std::fflush(stdout);
}

/// The overload contrast: \p Requests submitted with up to 3x the queue
/// depth outstanding, against a deliberately small queue.  With
/// \p ShedQueuePct = 100 shedding never engages (only the hard
/// queue-full bound rejects); at 50 the watermark sheds early and the
/// admitted requests see a short queue.  Latencies are recorded for
/// admitted-and-completed requests only -- the tail the caller actually
/// waits on.
void overload(int Requests, double Scale, int ShedQueuePct) {
  Service::Config C;
  C.CacheBytes = 0;
  C.QueueDepth = 16;
  C.Workers = 2;
  C.ShedQueuePct = ShedQueuePct;
  C.ShedLatencyMs = 0.0;
  Service Svc(C);

  const std::vector<ServeRequest> Mix = {
      makeRequest("pagerank", "higgs-twitter-sim", Scale, 3),
      makeRequest("sssp", "higgs-twitter-sim", Scale, 0),
      makeRequest("wcc", "soc-pokec-sim", Scale, 0),
      makeRequest("bfs", "amazon0312-sim", Scale, 0),
  };
  // Warm every dataset first so the burst measures queueing, not load.
  for (const ServeRequest &R : Mix)
    timedRequest(Svc, R, nullptr);

  struct Pending {
    WallTimer T;
    std::future<ServeResponse> F;
  };
  std::vector<Pending> InFlight;
  bench::LatencyRecorder Latency;
  int64_t Ok = 0, Dropped = 0;
  auto reap = [&](Pending &P) {
    const ServeResponse Resp = P.F.get();
    const double Seconds = P.T.seconds();
    if (Resp.Ok) {
      ++Ok;
      Latency.add(Seconds);
    } else {
      ++Dropped; // shed or queue-full; the split comes from Stats below
    }
  };

  WallTimer Wall;
  const size_t MaxInFlight = static_cast<size_t>(3 * C.QueueDepth);
  for (int I = 0; I < Requests; ++I) {
    if (InFlight.size() >= MaxInFlight) {
      reap(InFlight.front()); // FIFO admission: the front resolves first
      InFlight.erase(InFlight.begin());
    }
    Pending P;
    P.F = Svc.submit(Mix[static_cast<size_t>(I) % Mix.size()]);
    InFlight.push_back(std::move(P));
  }
  for (Pending &P : InFlight)
    reap(P);
  const double WallSeconds = Wall.seconds();

  const RequestScheduler::Stats S = Svc.schedulerStats();
  std::printf("{\"bench\":\"serve_overload\",\"shedding\":%s,"
              "\"shed_queue_pct\":%d,\"queue_depth\":%d,\"workers\":%d,"
              "\"requests\":%d,\"scale\":%g,\"ok\":%lld,"
              "\"shed\":%lld,\"rejected\":%lld,"
              "\"wall_seconds\":%.6f,\"goodput_rps\":%.1f,"
              "\"p50_seconds\":%.6f,\"p95_seconds\":%.6f,"
              "\"p99_seconds\":%.6f}\n",
              ShedQueuePct < 100 ? "true" : "false", ShedQueuePct,
              C.QueueDepth, C.Workers, Requests, Scale,
              static_cast<long long>(Ok), static_cast<long long>(S.Shed),
              static_cast<long long>(S.Rejected), WallSeconds,
              WallSeconds > 0.0 ? Ok / WallSeconds : 0.0,
              Latency.quantile(0.50), Latency.quantile(0.95),
              Latency.quantile(0.99));
  std::fflush(stdout);
  (void)Dropped;
}

#if defined(__linux__)

/// A blocking loopback NDJSON client with a buffered line reader.
class BenchClient {
public:
  explicit BenchClient(int Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in Addr = {};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<uint16_t>(Port));
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      ::close(Fd);
      Fd = -1;
    }
  }
  ~BenchClient() {
    if (Fd >= 0)
      ::close(Fd);
  }
  bool connected() const { return Fd >= 0; }

  bool sendLine(const std::string &L) {
    const std::string Wire = L + "\n";
    std::size_t Off = 0;
    while (Off < Wire.size()) {
      const ssize_t N = ::send(Fd, Wire.data() + Off, Wire.size() - Off,
                               MSG_NOSIGNAL);
      if (N <= 0)
        return false;
      Off += static_cast<std::size_t>(N);
    }
    return true;
  }

  std::string recvLine() {
    for (;;) {
      const std::size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        std::string L = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        return L;
      }
      char Tmp[8192];
      const ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
      if (N <= 0)
        return "";
      Buf.append(Tmp, static_cast<std::size_t>(N));
    }
  }

private:
  int Fd = -1;
  std::string Buf;
};

std::string extractId(const std::string &Line) {
  const std::size_t At = Line.find("\"id\":\"");
  if (At == std::string::npos)
    return "";
  const std::size_t Start = At + 6;
  const std::size_t End = Line.find('"', Start);
  return End == std::string::npos ? "" : Line.substr(Start, End - Start);
}

/// Part 4: concurrent clients against the real TCP front-end
/// (net::Server in-process, ephemeral port).  Every client pipelines
/// warm same-dataset requests, so the epoll loop, the micro-batcher,
/// and the out-of-order reply path all carry the load; latency is
/// per-request wall time from send to its id-matched reply.  The batch
/// hit rate is the fraction of requests that rode an already-open batch
/// (1 - batches/requests).
void multiClient(int Clients, int PerClient, double Scale) {
  Service::Config SC;
  SC.CacheBytes = 0;
  SC.Workers = 2;
  Service Svc(SC);

  net::Server::Config NC;
  NC.Port = 0;
  NC.BatchWindowUs = 2000; // concurrent bursts coalesce deterministically
  std::atomic<bool> Drain{false};
  NC.ShouldDrain = [&Drain] { return Drain.load(); };
  net::Server Server(Svc, NC);
  const Status St = Server.listen();
  if (!St.ok()) {
    std::fprintf(stderr, "error: %s\n", St.toString().c_str());
    std::exit(1);
  }
  std::thread LoopThread([&Server] { Server.run(); });
  const int Port = Server.boundPort();

  const std::string Body =
      "{\"app\":\"pagerank\",\"dataset\":\"higgs-twitter-sim\",\"scale\":" +
      std::to_string(Scale) + ",\"iters\":2,\"id\":\"";

  // Warm the one dataset so the measured burst is pure serving.
  {
    BenchClient Warm(Port);
    if (!Warm.connected() || !Warm.sendLine(Body + "warm\"}") ||
        Warm.recvLine().empty()) {
      std::fprintf(stderr, "error: warmup against 127.0.0.1:%d failed\n",
                   Port);
      std::exit(1);
    }
  }

  std::mutex Mu;
  std::vector<double> Latencies;
  std::atomic<int64_t> Failures{0};
  using Clock = std::chrono::steady_clock;

  WallTimer Wall;
  std::vector<std::thread> Threads;
  for (int C = 0; C < Clients; ++C)
    Threads.emplace_back([&, C] {
      BenchClient Cl(Port);
      if (!Cl.connected()) {
        Failures.fetch_add(PerClient);
        return;
      }
      std::map<std::string, Clock::time_point> Sent;
      for (int I = 0; I < PerClient; ++I) {
        const std::string Id =
            "c" + std::to_string(C) + "-" + std::to_string(I);
        Sent[Id] = Clock::now();
        if (!Cl.sendLine(Body + Id + "\"}")) {
          Failures.fetch_add(1);
          return;
        }
      }
      std::vector<double> Mine;
      Mine.reserve(static_cast<std::size_t>(PerClient));
      for (int I = 0; I < PerClient; ++I) {
        const std::string L = Cl.recvLine();
        const auto It = Sent.find(extractId(L));
        if (L.empty() || It == Sent.end() ||
            L.find("\"ok\":true") == std::string::npos) {
          Failures.fetch_add(1);
          continue;
        }
        Mine.push_back(
            std::chrono::duration<double>(Clock::now() - It->second)
                .count());
      }
      std::lock_guard<std::mutex> Lock(Mu);
      Latencies.insert(Latencies.end(), Mine.begin(), Mine.end());
    });
  for (auto &T : Threads)
    T.join();
  const double WallSeconds = Wall.seconds();

  Drain.store(true);
  LoopThread.join();

  if (Failures.load() > 0) {
    std::fprintf(stderr, "error: %lld multiclient requests failed\n",
                 static_cast<long long>(Failures.load()));
    std::exit(1);
  }

  bench::LatencyRecorder Latency;
  for (double S : Latencies)
    Latency.add(S);
  const net::Server::Stats NS = Server.stats();
  const int64_t Requests = static_cast<int64_t>(Clients) * PerClient;
  const double BatchHitRate =
      NS.FlushedBatchRequests > 0
          ? 1.0 - static_cast<double>(NS.FlushedBatches) /
                      static_cast<double>(NS.FlushedBatchRequests)
          : 0.0;
  std::printf("{\"bench\":\"serve_multiclient\",\"clients\":%d,"
              "\"requests_per_client\":%d,\"requests\":%lld,"
              "\"scale\":%g,\"batch_window_us\":%lld,"
              "\"wall_seconds\":%.6f,\"requests_per_second\":%.1f,"
              "\"p50_seconds\":%.6f,\"p95_seconds\":%.6f,"
              "\"p99_seconds\":%.6f,"
              "\"batches\":%lld,\"batched_requests\":%lld,"
              "\"batch_hit_rate\":%.3f}\n",
              Clients, PerClient, static_cast<long long>(Requests), Scale,
              static_cast<long long>(NC.BatchWindowUs), WallSeconds,
              WallSeconds > 0.0 ? Requests / WallSeconds : 0.0,
              Latency.quantile(0.50), Latency.quantile(0.95),
              Latency.quantile(0.99),
              static_cast<long long>(NS.FlushedBatches),
              static_cast<long long>(NS.FlushedBatchRequests), BatchHitRate);
  std::fflush(stdout);
}

#endif // __linux__

} // namespace

int main(int Argc, char **Argv) {
  // Fixed small scale by default: the cold/warm contrast is about load
  // amortization, not kernel size.  A bare numeric argv[1] overrides the
  // request count; --clients [n [m]] runs only the multi-client part
  // (n concurrent TCP clients, m pipelined requests each).
  const double Scale = 0.25;

  if (Argc > 1 && std::strcmp(Argv[1], "--clients") == 0) {
#if defined(__linux__)
    const int Clients = Argc > 2 ? std::atoi(Argv[2]) : 8;
    const int PerClient = Argc > 3 ? std::atoi(Argv[3]) : 25;
    multiClient(Clients > 0 ? Clients : 8, PerClient > 0 ? PerClient : 25,
                Scale);
#else
    std::fprintf(stderr, "error: --clients needs the Linux TCP front-end\n");
    return 1;
#endif
    return 0;
  }

  const int Requests = Argc > 1 ? std::atoi(Argv[1]) : 120;
  coldWarm("pagerank", Scale);
  coldWarm("sssp", Scale);
  sustained(Requests > 0 ? Requests : 120, Scale);
  overload(Requests > 0 ? 2 * Requests : 240, Scale, 100); // shedding off
  overload(Requests > 0 ? 2 * Requests : 240, Scale, 50);  // shedding on
  return 0;
}
