//===- graph/Prepared.cpp - Shareable dataset + derived schedules ---------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "graph/Prepared.h"

#include "obs/Metrics.h"
#include "pattern/Classify.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <unistd.h>

using namespace cfv;
using namespace cfv::graph;

namespace {

int64_t edgeListBytes(const EdgeList &E) {
  return static_cast<int64_t>(E.Src.capacity() * sizeof(int32_t) +
                              E.Dst.capacity() * sizeof(int32_t) +
                              E.Weight.capacity() * sizeof(float));
}

int64_t csrBytes(const Csr &C) {
  return static_cast<int64_t>(C.RowBegin.capacity() * sizeof(int64_t) +
                              C.Col.capacity() * sizeof(int32_t) +
                              C.Weight.capacity() * sizeof(float));
}

} // namespace

PreparedGraph::PreparedGraph(EdgeList G) : Edges(std::move(G)) {
  BaseBytes = edgeListBytes(Edges);
}

const Csr &PreparedGraph::csr() const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!CsrPtr) {
    CsrPtr = std::make_unique<Csr>(buildCsr(Edges));
    ArtifactBytes.fetch_add(csrBytes(*CsrPtr), std::memory_order_relaxed);
  }
  return *CsrPtr;
}

const AlignedVector<int32_t> &PreparedGraph::outDegrees() const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Degrees) {
    Degrees = std::make_unique<AlignedVector<int32_t>>(
        graph::outDegrees(Edges));
    ArtifactBytes.fetch_add(
        static_cast<int64_t>(Degrees->capacity() * sizeof(int32_t)),
        std::memory_order_relaxed);
  }
  return *Degrees;
}

const inspector::TilingResult &PreparedGraph::tiling(int BlockBits) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Tilings.find(BlockBits);
  if (It == Tilings.end()) {
    auto T = std::make_unique<inspector::TilingResult>(
        inspector::tileByDestination(Edges.Dst.data(), Edges.numEdges(),
                                     Edges.NumNodes, BlockBits));
    // Classify each tile's destination stream while the schedule is still
    // private to this thread; once published via the map the TilingResult
    // is immutable.  Skipped entirely under CFV_PATTERN=off so the knob
    // also disables the inspector-side cost.
    if (pattern::envMode() != pattern::Mode::Off) {
      auto P = std::make_shared<pattern::PatternResult>(
          pattern::classifyTiling(*T, Edges.Dst.data()));
      ArtifactBytes.fetch_add(P->approxBytes(), std::memory_order_relaxed);
      T->Pattern = std::move(P);
    }
    ArtifactBytes.fetch_add(T->approxBytes(), std::memory_order_relaxed);
    It = Tilings.emplace(BlockBits, std::move(T)).first;
  }
  return *It->second;
}

std::shared_ptr<const MappedCsr> PreparedGraph::mappedCsr() const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (MappedTried)
    return Mapped;
  MappedTried = true;

  const char *Dir = std::getenv("CFV_MAP_DIR");
  std::string Base = Dir && *Dir ? Dir : "/tmp";
  // Distinct name per process + dataset: concurrent services under one
  // CFV_MAP_DIR must not clobber each other's backing files.
  static std::atomic<uint64_t> Counter{0};
  const std::string Path = Base + "/cfv_mapped_" +
                           std::to_string(static_cast<long>(getpid())) + "_" +
                           std::to_string(Counter.fetch_add(1)) + ".cfvm";

  const Status W = MappedCsr::write(Path, Edges);
  if (!W.ok())
    return nullptr;
  auto Opened = MappedCsr::open(Path);
  // Unlink regardless of the open outcome: on success the mapping keeps
  // the inode alive; on failure nothing should linger in CFV_MAP_DIR.
  std::remove(Path.c_str());
  if (!Opened.ok()) {
    if (obs::enabled()) {
      static obs::Counter &Fails = obs::MetricsRegistry::instance().counter(
          "cfv_mapped_open_failures_total", "",
          "Out-of-core CFVM map attempts that fell back to in-core");
      Fails.inc();
    }
    return nullptr;
  }
  Mapped = Opened.value();
  ArtifactBytes.fetch_add(Mapped->mappedBytes(), std::memory_order_relaxed);
  return Mapped;
}

const pattern::PatternResult &PreparedGraph::streamPattern() const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!StreamPattern) {
    StreamPattern = std::make_unique<pattern::PatternResult>(
        pattern::classifyStream(Edges.Src.data(), Edges.numEdges()));
    ArtifactBytes.fetch_add(StreamPattern->approxBytes(),
                            std::memory_order_relaxed);
  }
  return *StreamPattern;
}
