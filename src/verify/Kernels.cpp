//===-- verify/Kernels.cpp - Variant-compiled oracle pipelines ------------===//
//
// Compiled once per tier: baseline ISA into verify::b_scalar and (when
// the toolchain supports them) with AVX2 flags into verify::b_avx2 and
// AVX-512 flags into verify::b_avx512 via the cfv_avx2 / cfv_avx512
// object libraries.  simd::NativeBackend resolves per-TU, so the same
// source exercises real intrinsics in the wide passes and the scalar
// emulation in the baseline one — at each backend's own lane width.
//
//===----------------------------------------------------------------------===//

#include "verify/Kernels.h"

#include "core/Adaptive.h"
#include "core/InvecReduce.h"
#include "core/Variant.h"
#include "masking/ConflictMask.h"
#include "pattern/Classify.h"
#include "pattern/Dispatch.h"
#include "simd/Backend.h"
#include "simd/Ops.h"
#include "simd/Traits.h"

#include <algorithm>

namespace cfv {
namespace verify {

#if CFV_VARIANT_PRIMARY
// Shared (variant-independent) helpers: defined only in the primary pass
// so the twice-compiled TU does not violate the one-definition rule.
const char *pipelineName(Pipeline P) {
  switch (P) {
  case Pipeline::Invec1:
    return "invec_alg1";
  case Pipeline::Invec2:
    return "invec_alg2";
  case Pipeline::Masking:
    return "masking";
  case Pipeline::Adaptive:
    return "adaptive";
  case Pipeline::Pattern:
    return "pattern";
  }
  return "unknown";
}

const char *opKindName(OpKind K) {
  switch (K) {
  case OpKind::Add:
    return "add";
  case OpKind::Min:
    return "min";
  case OpKind::Max:
    return "max";
  }
  return "unknown";
}

const char *injectedBugName(InjectedBug B) {
  switch (B) {
  case InjectedBug::None:
    return "none";
  case InjectedBug::DropConflictLane:
    return "drop_conflict_lane";
  case InjectedBug::SkipTail:
    return "skip_tail";
  case InjectedBug::NoAuxMerge:
    return "no_aux_merge";
  }
  return "unknown";
}

Expected<InjectedBug> parseInjectedBug(const std::string &Name) {
  for (InjectedBug B : {InjectedBug::None, InjectedBug::DropConflictLane,
                        InjectedBug::SkipTail, InjectedBug::NoAuxMerge})
    if (Name == injectedBugName(B))
      return B;
  return Status::error(ErrorCode::InvalidArgument,
                       "unknown injected bug '" + Name +
                           "' (none, drop_conflict_lane, skip_tail, "
                           "no_aux_merge)");
}
#endif // CFV_VARIANT_PRIMARY

namespace CFV_VARIANT_NS {
namespace {

using B = simd::NativeBackend;
using simd::Mask16;
constexpr int kLanes = simd::BackendTraits<B>::kLanes;
constexpr Mask16 kAllLanes = simd::BackendTraits<B>::kFullMask;

inline Mask16 tailMask(int64_t Left) {
  return Left >= kLanes ? kAllLanes
                        : static_cast<Mask16>((1u << Left) - 1u);
}

inline int64_t effectiveLen(int64_t N, InjectedBug Bug) {
  return Bug == InjectedBug::SkipTail ? (N / kLanes) * kLanes : N;
}

template <typename Op, typename T>
void invec1Chunk(const int32_t *Idx, const T *Val, int64_t N, T *Out,
                 InjectedBug Bug) {
  using V = simd::VecForT<T, B>;
  using IV = simd::VecI32<B>;
  const int64_t End = effectiveLen(N, Bug);
  for (int64_t I = 0; I < End; I += kLanes) {
    const Mask16 Active = tailMask(End - I);
    const IV Iv = IV::maskLoad(IV::zero(), Active, Idx + I);
    V Vv = V::maskLoad(V::broadcast(Op::template identity<T>()), Active,
                       Val + I);
    const core::InvecResult R = core::invecReduce<Op>(Active, Iv, Vv);
    Mask16 Commit = R.Ret;
    if (Bug == InjectedBug::DropConflictLane && R.Distinct > 0)
      Commit = static_cast<Mask16>(Commit & (Commit - 1u));
    core::accumulateScatter<Op>(Commit, Iv, Vv, Out);
  }
}

template <typename Op, typename T>
void invec2Chunk(const int32_t *Idx, const T *Val, int64_t N, T *Out,
                 int32_t ArraySize, InjectedBug Bug) {
  using V = simd::VecForT<T, B>;
  using IV = simd::VecI32<B>;
  AlignedVector<T> Aux(static_cast<size_t>(ArraySize));
  core::fillIdentity<Op>(Aux.data(), Aux.size());
  const int64_t End = effectiveLen(N, Bug);
  for (int64_t I = 0; I < End; I += kLanes) {
    const Mask16 Active = tailMask(End - I);
    const IV Iv = IV::maskLoad(IV::zero(), Active, Idx + I);
    V Vv = V::maskLoad(V::broadcast(Op::template identity<T>()), Active,
                       Val + I);
    const core::Invec2Result R = core::invecReduce2<Op>(Active, Iv, Vv);
    Mask16 Commit1 = R.Ret1;
    if (Bug == InjectedBug::DropConflictLane && R.Distinct > 0)
      Commit1 = static_cast<Mask16>(Commit1 & (Commit1 - 1u));
    core::accumulateScatter<Op>(Commit1, Iv, Vv, Out);
    core::accumulateScatter<Op>(R.Ret2, Iv, Vv, Aux.data());
  }
  if (Bug != InjectedBug::NoAuxMerge)
    core::mergeAux<Op>(Out, Aux.data(), Aux.size());
}

template <typename Op, typename T>
void maskingChunk(const int32_t *Idx, const T *Val, int64_t N, T *Out,
                  InjectedBug Bug) {
  using V = simd::VecForT<T, B>;
  using IV = simd::VecI32<B>;
  auto LoadIdx = [&](IV Pos, Mask16 Lanes) {
    return IV::maskGather(IV::zero(), Lanes, Idx, Pos);
  };
  auto Commit = [&](Mask16 Safe, IV Pos, IV Iv) {
    const V Id = V::broadcast(Op::template identity<T>());
    const V Vv = V::maskGather(Id, Safe, Val, Pos);
    const V Old = V::maskGather(Id, Safe, Out, Iv);
    Op::template combine<V>(Old, Vv).maskScatter(Safe, Out, Iv);
  };
  masking::maskedStreamLoop<B>(effectiveLen(N, Bug), LoadIdx,
                               masking::AllLanesNeedUpdate{}, Commit);
}

template <typename Op, typename T>
void adaptiveChunk(const int32_t *Idx, const T *Val, int64_t N, T *Out,
                   int32_t ArraySize, InjectedBug Bug) {
  using V = simd::VecForT<T, B>;
  using IV = simd::VecI32<B>;
  AlignedVector<T> Aux(static_cast<size_t>(ArraySize));
  core::fillIdentity<Op>(Aux.data(), Aux.size());
  // A short sampling window so the generated streams (often < 64 vectors)
  // actually reach the commit point and both policy arms get coverage.
  core::AdaptiveReducer<Op, T, B> Red(Aux.data(), Aux.size(), 4);
  const int64_t End = effectiveLen(N, Bug);
  for (int64_t I = 0; I < End; I += kLanes) {
    const Mask16 Active = tailMask(End - I);
    const IV Iv = IV::maskLoad(IV::zero(), Active, Idx + I);
    V Vv = V::maskLoad(V::broadcast(Op::template identity<T>()), Active,
                       Val + I);
    const Mask16 Commit = Red.reduce(Active, Iv, Vv);
    core::accumulateScatter<Op>(Commit, Iv, Vv, Out);
  }
  if (Bug != InjectedBug::NoAuxMerge)
    Red.mergeInto(Out);
}

template <typename Op, typename T>
void patternChunk(const int32_t *Idx, const T *Val, int64_t N, T *Out,
                  InjectedBug Bug) {
  using V = simd::VecForT<T, B>;
  const int64_t End = effectiveLen(N, Bug);
  // Small pseudo-tiles so even the short generated streams span several
  // tiles (and tile-boundary coverage); classification is over exactly
  // the range this chunk dispatches, so the per-window certification
  // holds regardless of how runTyped sliced the stream.
  const pattern::PatternResult P =
      pattern::classifyStream(Idx, End, /*TileLen=*/64);
  const pattern::DenseSink<Op, T> Sink(Out);
  for (int64_t Tile = 0; Tile < P.numTiles(); ++Tile) {
    const int64_t Lo = Tile * P.TileLen;
    const int64_t Hi = std::min<int64_t>(End, Lo + P.TileLen);
    const auto Payload = [&](Mask16 Active, int64_t I) {
      return V::maskLoad(V::broadcast(Op::template identity<T>()), Active,
                         Val + Lo + I);
    };
    if (!pattern::runTileSpecialized<Op, T, B>(
            P.Tiles[static_cast<size_t>(Tile)], Idx + Lo, Hi - Lo, Payload,
            Sink))
      invec1Chunk<Op>(Idx + Lo, Val + Lo, Hi - Lo, Out, Bug);
  }
}

/// Chunked privatized execution: identity-filled private arrays merged in
/// chunk order, the same shape the ParallelEngine gives each worker.
template <typename Op, typename T>
AlignedVector<T> runTyped(Pipeline P, const CaseSpec &Spec,
                          const int32_t *Idx, const T *Val, int Chunks,
                          InjectedBug Bug) {
  const int32_t U = Spec.Universe;
  AlignedVector<T> Out(static_cast<size_t>(U));
  core::fillIdentity<Op>(Out.data(), Out.size());
  const int64_t N = Spec.N;
  if (Chunks < 1)
    Chunks = 1;
  for (int C = 0; C < Chunks; ++C) {
    const int64_t Lo = N * C / Chunks;
    const int64_t Hi = N * (C + 1) / Chunks;
    if (Lo >= Hi)
      continue;
    AlignedVector<T> Priv(static_cast<size_t>(U));
    core::fillIdentity<Op>(Priv.data(), Priv.size());
    switch (P) {
    case Pipeline::Invec1:
      invec1Chunk<Op>(Idx + Lo, Val + Lo, Hi - Lo, Priv.data(), Bug);
      break;
    case Pipeline::Invec2:
      invec2Chunk<Op>(Idx + Lo, Val + Lo, Hi - Lo, Priv.data(), U, Bug);
      break;
    case Pipeline::Masking:
      maskingChunk<Op>(Idx + Lo, Val + Lo, Hi - Lo, Priv.data(), Bug);
      break;
    case Pipeline::Adaptive:
      adaptiveChunk<Op>(Idx + Lo, Val + Lo, Hi - Lo, Priv.data(), U, Bug);
      break;
    case Pipeline::Pattern:
      patternChunk<Op>(Idx + Lo, Val + Lo, Hi - Lo, Priv.data(), Bug);
      break;
    }
    for (int32_t I = 0; I < U; ++I)
      Out[static_cast<size_t>(I)] = Op::template apply<T>(
          Out[static_cast<size_t>(I)], Priv[static_cast<size_t>(I)]);
  }
  return Out;
}

template <typename T>
AlignedVector<T> runAnyOp(Pipeline P, OpKind Op, const CaseSpec &Spec,
                          const int32_t *Idx, const T *Val, int Chunks,
                          InjectedBug Bug) {
  switch (Op) {
  case OpKind::Add:
    return runTyped<simd::OpAdd, T>(P, Spec, Idx, Val, Chunks, Bug);
  case OpKind::Min:
    return runTyped<simd::OpMin, T>(P, Spec, Idx, Val, Chunks, Bug);
  case OpKind::Max:
    return runTyped<simd::OpMax, T>(P, Spec, Idx, Val, Chunks, Bug);
  }
  return {};
}

} // namespace

AlignedVector<float> runPipelineF32(Pipeline P, OpKind Op, const Workload &W,
                                    int Chunks, InjectedBug Bug) {
  return runAnyOp<float>(P, Op, W.Spec, W.Idx.data(), W.Val.data(), Chunks,
                         Bug);
}

AlignedVector<int32_t> runPipelineI32(Pipeline P, OpKind Op,
                                      const Workload &W, int Chunks,
                                      InjectedBug Bug) {
  const AlignedVector<int32_t> Payload = intPayload(W);
  return runAnyOp<int32_t>(P, Op, W.Spec, W.Idx.data(), Payload.data(),
                           Chunks, Bug);
}

} // namespace CFV_VARIANT_NS

} // namespace verify
} // namespace cfv
