//===- bench/fig13_aggregation.cpp - Figure 13 harness --------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 13 (a-c): throughput (millions of rows per second)
// of the five hash-aggregation versions while the group-by cardinality
// sweeps 2^6 .. 2^19, for the heavy-hitter, Zipf and moving-cluster key
// distributions.  The paper's 32M-row inputs are scaled to keep the
// default run short; CFV_SCALE grows them back.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/agg/Aggregation.h"
#include "util/TablePrinter.h"
#include "workload/KeyGen.h"

#include <cstdlib>

using namespace cfv;
using namespace cfv::apps;
using namespace cfv::bench;
using namespace cfv::workload;

namespace {

double envScaleLocal() {
  const char *S = std::getenv("CFV_SCALE");
  if (!S)
    return 1.0;
  const double V = std::atof(S);
  return V < 0.01 ? 0.01 : (V > 1000.0 ? 1000.0 : V);
}

} // namespace

int main() {
  banner("Figure 13",
         "Hash aggregation: throughput vs group-by cardinality, "
         "five versions, three skewed distributions");
  const double Scale = envScaleLocal();
  const int64_t N = static_cast<int64_t>(2.0e6 * Scale);
  std::printf("rows per run: %lld (paper: 32M; scale with CFV_SCALE)\n",
              static_cast<long long>(N));

  const AggVersion Versions[] = {
      AggVersion::LinearSerial, AggVersion::LinearMask,
      AggVersion::BucketMask, AggVersion::LinearInvec,
      AggVersion::BucketInvec};

  struct Panel {
    const char *Tag;
    KeyDist Dist;
  };
  const Panel Panels[] = {{"(a)", KeyDist::HeavyHitter},
                          {"(b)", KeyDist::Zipf},
                          {"(c)", KeyDist::MovingCluster}};

  for (const Panel &P : Panels) {
    sectionHeader(std::string(P.Tag) + " " + distName(P.Dist) +
                  "  (throughput in Mrows/s)");
    std::vector<std::string> Header = {"log2(cardinality)"};
    for (const AggVersion V : Versions)
      Header.push_back(versionName(V));
    TablePrinter T(std::move(Header));

    for (int LogC = 6; LogC <= 19; ++LogC) {
      const int32_t C = int32_t(1) << LogC;
      const auto Keys =
          genKeys(P.Dist, N, C, 0xF13u * (LogC + 1) + LogC);
      const auto Vals = genValues(N, 0xAB1u + LogC);
      std::vector<std::string> Row = {std::to_string(LogC)};
      for (const AggVersion V : Versions) {
        const AggResult R =
            runAggregation(Keys.data(), Vals.data(), N, C, V);
        Row.push_back(TablePrinter::fmt(R.MRowsPerSec, 1));
      }
      T.addRow(std::move(Row));
    }
    T.print();
  }

  paperNote(
      "linear_mask lowest throughput everywhere (below linear_serial); "
      "bucket_invec highest on most points (up to 3.26x over serial) but "
      "falls behind linear_invec when the cardinality nears the table "
      "size (bucket tables probe longer); linear_invec 1.3-1.8x over "
      "serial there; bucket_mask gains some but is dominated by "
      "bucket_invec");
  return 0;
}
