//===- tests/invec_reduce_test.cpp - Algorithm 1 properties --------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Algorithm 1 (invecReduce) is checked against a lane-order oracle across
// backends, operators, payload types, duplicate densities and active
// masks; plus the paper's own running example (Figure 5) and the
// worst-case D1 bound of §3.3.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "core/InvecReduce.h"

#include <cmath>

using namespace cfv;
using namespace cfv::core;
using namespace cfv::simd;
using namespace cfv::test;

template <typename B> class InvecTest : public ::testing::Test {};
TYPED_TEST_SUITE(InvecTest, AllBackends, );

TYPED_TEST(InvecTest, PaperFigure5Example) {
  using B = TypeParam;
  const Lane16i Idx = {0, 1, 1, 1, 2, 2, 2, 2, 5, 0, 1, 1, 1, 5, 5, 5};
  Lane16f Ones;
  Ones.fill(1.0f);
  auto Data = loadF<B>(Ones);
  const InvecResult R =
      invecReduce<OpAdd>(kAllLanes, loadIdx<B>(Idx), Data);

  // Figure 5: four merge iterations, results land on lanes 0, 1, 4, 8.
  EXPECT_EQ(R.Ret, 0x0113);
  EXPECT_EQ(R.Distinct, 4);
  const Lane16f Out = toArray(Data);
  EXPECT_EQ(Out[0], 2.0f) << "index 0 occurs twice";
  EXPECT_EQ(Out[1], 6.0f) << "index 1 occurs six times";
  EXPECT_EQ(Out[4], 4.0f) << "index 2 occurs four times";
  EXPECT_EQ(Out[8], 4.0f) << "index 5 occurs four times";
}

TYPED_TEST(InvecTest, DistinctIndicesAreUntouched) {
  using B = TypeParam;
  Lane16i Idx;
  Lane16f Val;
  for (int I = 0; I < kMaxLanes; ++I) {
    Idx[I] = I * 3;
    Val[I] = static_cast<float>(I);
  }
  auto Data = loadF<B>(Val);
  const InvecResult R =
      invecReduce<OpAdd>(kAllLanes, loadIdx<B>(Idx), Data);
  EXPECT_EQ(R.Ret, kAllLanes);
  EXPECT_EQ(R.Distinct, 0);
  EXPECT_EQ(toArray(Data), Val);
}

TYPED_TEST(InvecTest, AllSameIndexFoldsEverything) {
  using B = TypeParam;
  Lane16f Val;
  for (int I = 0; I < kMaxLanes; ++I)
    Val[I] = 1.0f;
  auto Data = loadF<B>(Val);
  const InvecResult R =
      invecReduce<OpAdd>(kAllLanes, VecI32<B>::broadcast(7), Data);
  EXPECT_EQ(R.Ret, 0x0001);
  EXPECT_EQ(R.Distinct, 1);
  EXPECT_EQ(toArray(Data)[0], 16.0f);
}

TYPED_TEST(InvecTest, WorstCaseD1IsEight) {
  using B = TypeParam;
  // §3.3: D1 is at most half the lanes; achieved when every index occurs
  // exactly twice.
  Lane16i Idx;
  for (int I = 0; I < kMaxLanes; ++I)
    Idx[I] = I / 2;
  auto Data = VecF32<B>::broadcast(1.0f);
  const InvecResult R =
      invecReduce<OpAdd>(kAllLanes, loadIdx<B>(Idx), Data);
  EXPECT_EQ(R.Distinct, 8);
  EXPECT_EQ(popcount(R.Ret), 8);
}

TYPED_TEST(InvecTest, EmptyActiveMask) {
  using B = TypeParam;
  auto Data = VecF32<B>::broadcast(3.0f);
  const InvecResult R = invecReduce<OpAdd>(0, VecI32<B>::broadcast(1), Data);
  EXPECT_EQ(R.Ret, 0);
  EXPECT_EQ(R.Distinct, 0);
}

TYPED_TEST(InvecTest, InactiveLanesKeepValuesAndDoNotContribute) {
  using B = TypeParam;
  // Lanes 2 and 6 share index 4 but lane 6 is inactive.
  Lane16i Idx;
  Lane16f Val;
  for (int I = 0; I < kMaxLanes; ++I) {
    Idx[I] = 100 + I;
    Val[I] = static_cast<float>(I + 1);
  }
  Idx[6] = Idx[2] = 4;
  const Mask16 Active = static_cast<Mask16>(kAllLanes & ~laneBit(6));
  auto Data = loadF<B>(Val);
  const InvecResult R = invecReduce<OpAdd>(Active, loadIdx<B>(Idx), Data);
  const Lane16f Out = toArray(Data);
  EXPECT_EQ(Out[2], 3.0f) << "no active duplicate: value unchanged";
  EXPECT_EQ(Out[6], 7.0f) << "inactive lane untouched";
  EXPECT_TRUE(testLane(R.Ret, 2));
  EXPECT_FALSE(testLane(R.Ret, 6));
}

namespace {

/// One property sweep instance: (universe size, seed).
struct SweepParam {
  uint32_t Universe;
  uint64_t Seed;
};

class InvecSweep : public ::testing::TestWithParam<SweepParam> {};

template <typename B, typename Op> void checkFloatSweep(SweepParam P) {
  Xoshiro256 Rng(P.Seed);
  for (int Trial = 0; Trial < 100; ++Trial) {
    const Lane16i Idx = randomIndices(Rng, P.Universe);
    const Lane16f Val = randomFloats(Rng);
    const Mask16 Active = randomMask(Rng);
    auto Data = loadF<B>(Val);
    const InvecResult R = invecReduce<Op>(Active, loadIdx<B>(Idx), Data);
    const auto Ref = refGroupReduce<Op, float>(Active, Idx, Val);
    ASSERT_EQ(R.Ret, Ref.Ret) << "trial " << Trial;
    const Lane16f Out = toArray(Data);
    for (int I = 0; I < kMaxLanes; ++I) {
      if (!testLane(Ref.Ret, I))
        continue;
      ASSERT_NEAR(Out[I], Ref.Data[I], 1e-4)
          << "trial " << Trial << " lane " << I;
    }
    // D1 == number of first-occurrence lanes whose group has > 1 member.
    int WantD1 = 0;
    for (int I = 0; I < kMaxLanes; ++I) {
      if (!testLane(Ref.Ret, I))
        continue;
      int Count = 0;
      for (int J = 0; J < kMaxLanes; ++J)
        if (testLane(Active, J) && Idx[J] == Idx[I])
          ++Count;
      if (Count > 1)
        ++WantD1;
    }
    ASSERT_EQ(R.Distinct, WantD1) << "trial " << Trial;
  }
}

template <typename B, typename Op> void checkIntSweep(SweepParam P) {
  Xoshiro256 Rng(P.Seed ^ 0x1234);
  for (int Trial = 0; Trial < 100; ++Trial) {
    const Lane16i Idx = randomIndices(Rng, P.Universe);
    const Lane16i Val = randomInts(Rng, 64); // small values: mul-safe
    const Mask16 Active = randomMask(Rng);
    auto Data = loadIdx<B>(Val);
    const InvecResult R = invecReduce<Op>(Active, loadIdx<B>(Idx), Data);
    const auto Ref = refGroupReduce<Op, int32_t>(Active, Idx, Val);
    ASSERT_EQ(R.Ret, Ref.Ret);
    const Lane16i Out = toArray(Data);
    for (int I = 0; I < kMaxLanes; ++I) {
      if (!testLane(Ref.Ret, I))
        continue;
      ASSERT_EQ(Out[I], Ref.Data[I])
          << "trial " << Trial << " lane " << I;
    }
  }
}

} // namespace

TEST_P(InvecSweep, FloatAddScalar) {
  checkFloatSweep<backend::Scalar, OpAdd>(GetParam());
}
TEST_P(InvecSweep, FloatMinScalar) {
  checkFloatSweep<backend::Scalar, OpMin>(GetParam());
}
TEST_P(InvecSweep, FloatMaxScalar) {
  checkFloatSweep<backend::Scalar, OpMax>(GetParam());
}
TEST_P(InvecSweep, IntAddScalar) {
  checkIntSweep<backend::Scalar, OpAdd>(GetParam());
}
TEST_P(InvecSweep, IntMinScalar) {
  checkIntSweep<backend::Scalar, OpMin>(GetParam());
}
TEST_P(InvecSweep, IntMaxScalar) {
  checkIntSweep<backend::Scalar, OpMax>(GetParam());
}

#if CFV_HAVE_AVX512
TEST_P(InvecSweep, FloatAddAvx512) {
  checkFloatSweep<backend::Avx512, OpAdd>(GetParam());
}
TEST_P(InvecSweep, FloatMinAvx512) {
  checkFloatSweep<backend::Avx512, OpMin>(GetParam());
}
TEST_P(InvecSweep, FloatMaxAvx512) {
  checkFloatSweep<backend::Avx512, OpMax>(GetParam());
}
TEST_P(InvecSweep, IntAddAvx512) {
  checkIntSweep<backend::Avx512, OpAdd>(GetParam());
}
TEST_P(InvecSweep, IntMinAvx512) {
  checkIntSweep<backend::Avx512, OpMin>(GetParam());
}
TEST_P(InvecSweep, IntMaxAvx512) {
  checkIntSweep<backend::Avx512, OpMax>(GetParam());
}
#endif

INSTANTIATE_TEST_SUITE_P(
    DuplicateDensities, InvecSweep,
    ::testing::Values(SweepParam{1, 11}, SweepParam{2, 22},
                      SweepParam{3, 33}, SweepParam{5, 44},
                      SweepParam{8, 55}, SweepParam{16, 66},
                      SweepParam{64, 77}, SweepParam{4096, 88}),
    [](const ::testing::TestParamInfo<SweepParam> &Info) {
      return "universe" + std::to_string(Info.param.Universe);
    });

TYPED_TEST(InvecTest, IsIdempotentOnItsOwnResult) {
  // Re-reducing with the returned mask as the active set must be a
  // no-op: the surviving lanes are pairwise distinct by contract.
  using B = TypeParam;
  Xoshiro256 Rng(0x1D3);
  for (int Trial = 0; Trial < 100; ++Trial) {
    const Lane16i Idx = randomIndices(Rng, 4);
    auto Data = loadF<B>(randomFloats(Rng));
    const InvecResult R1 =
        invecReduce<OpAdd>(kAllLanes, loadIdx<B>(Idx), Data);
    const Lane16f Snapshot = toArray(Data);
    const InvecResult R2 = invecReduce<OpAdd>(R1.Ret, loadIdx<B>(Idx), Data);
    ASSERT_EQ(R2.Ret, R1.Ret);
    ASSERT_EQ(R2.Distinct, 0);
    ASSERT_EQ(toArray(Data), Snapshot);
  }
}

TYPED_TEST(InvecTest, BitwiseOpsReduceByIndex) {
  using B = TypeParam;
  Xoshiro256 Rng(0x0AB);
  for (int Trial = 0; Trial < 100; ++Trial) {
    const Lane16i Idx = randomIndices(Rng, 5);
    Lane16i Val;
    for (int32_t &X : Val)
      X = static_cast<int32_t>(Rng.next());
    const Mask16 Active = randomMask(Rng);
    {
      auto Data = loadIdx<B>(Val);
      const InvecResult R =
          invecReduce<OpOr>(Active, loadIdx<B>(Idx), Data);
      const auto Ref = refGroupReduce<OpOr, int32_t>(Active, Idx, Val);
      ASSERT_EQ(R.Ret, Ref.Ret);
      const Lane16i Out = toArray(Data);
      for (int I = 0; I < kMaxLanes; ++I) {
        if (!testLane(Ref.Ret, I))
          continue;
        ASSERT_EQ(Out[I], Ref.Data[I]);
      }
    }
    {
      auto Data = loadIdx<B>(Val);
      const InvecResult R =
          invecReduce<OpAnd>(Active, loadIdx<B>(Idx), Data);
      const auto Ref = refGroupReduce<OpAnd, int32_t>(Active, Idx, Val);
      ASSERT_EQ(R.Ret, Ref.Ret);
      const Lane16i Out = toArray(Data);
      for (int I = 0; I < kMaxLanes; ++I) {
        if (!testLane(Ref.Ret, I))
          continue;
        ASSERT_EQ(Out[I], Ref.Data[I]);
      }
    }
  }
}

TYPED_TEST(InvecTest, NegativeIndicesAreValidKeys) {
  // vpconflictd compares bit patterns; negative sentinel keys (as the
  // aggregation tables use) must group correctly.
  using B = TypeParam;
  Lane16i Idx;
  for (int I = 0; I < kMaxLanes; ++I)
    Idx[I] = (I % 2 == 0) ? -7 : 7;
  auto Data = VecF32<B>::broadcast(1.0f);
  const InvecResult R =
      invecReduce<OpAdd>(kAllLanes, loadIdx<B>(Idx), Data);
  EXPECT_EQ(R.Ret, 0x0003);
  EXPECT_EQ(toArray(Data)[0], 8.0f);
  EXPECT_EQ(toArray(Data)[1], 8.0f);
}

TYPED_TEST(InvecTest, MultiPayloadReducesAllUnderOneIndex) {
  using B = TypeParam;
  Xoshiro256 Rng(0x3333);
  for (int Trial = 0; Trial < 100; ++Trial) {
    const Lane16i Idx = randomIndices(Rng, 4);
    const Lane16f V1 = randomFloats(Rng);
    const Lane16f V2 = randomFloats(Rng);
    const Lane16i V3 = randomInts(Rng, 50);
    const Mask16 Active = randomMask(Rng);

    auto D1 = loadF<B>(V1);
    auto D2 = loadF<B>(V2);
    auto D3 = loadIdx<B>(V3);
    const InvecResult R =
        invecReduce<OpAdd>(Active, loadIdx<B>(Idx), D1, D2, D3);

    // Each payload must match a single-payload reduction independently.
    auto S1 = loadF<B>(V1);
    auto S2 = loadF<B>(V2);
    auto S3 = loadIdx<B>(V3);
    const InvecResult R1 = invecReduce<OpAdd>(Active, loadIdx<B>(Idx), S1);
    const InvecResult R2 = invecReduce<OpAdd>(Active, loadIdx<B>(Idx), S2);
    const InvecResult R3 = invecReduce<OpAdd>(Active, loadIdx<B>(Idx), S3);
    ASSERT_EQ(R.Ret, R1.Ret);
    ASSERT_EQ(R.Ret, R2.Ret);
    ASSERT_EQ(R.Ret, R3.Ret);
    ASSERT_EQ(toArray(D1), toArray(S1));
    ASSERT_EQ(toArray(D2), toArray(S2));
    ASSERT_EQ(toArray(D3), toArray(S3));
  }
}

TYPED_TEST(InvecTest, AccumulateScatterAddsIntoArray) {
  using B = TypeParam;
  AlignedVector<float> Arr(32, 10.0f);
  Lane16i Idx;
  for (int I = 0; I < kMaxLanes; ++I)
    Idx[I] = I * 2;
  auto Data = VecF32<B>::broadcast(1.5f);
  accumulateScatter<OpAdd>(Mask16(0x0007), loadIdx<B>(Idx), Data,
                           Arr.data());
  EXPECT_EQ(Arr[0], 11.5f);
  EXPECT_EQ(Arr[2], 11.5f);
  EXPECT_EQ(Arr[4], 11.5f);
  EXPECT_EQ(Arr[6], 10.0f) << "lane 3 not in mask";
}

TYPED_TEST(InvecTest, AccumulateScatterWithMinOp) {
  using B = TypeParam;
  AlignedVector<float> Arr(8, 5.0f);
  Lane16i Idx{};
  Idx[0] = 3;
  Idx[1] = 4;
  Lane16f Val{};
  Val[0] = 7.0f; // worse than 5: must not replace
  Val[1] = 2.0f; // better than 5: must replace
  accumulateScatter<OpMin>(Mask16(0x0003), loadIdx<B>(Idx), loadF<B>(Val),
                           Arr.data());
  EXPECT_EQ(Arr[3], 5.0f);
  EXPECT_EQ(Arr[4], 2.0f);
}

TEST(InvecHelpers, MergeAuxFoldsAndResets) {
  AlignedVector<float> Main = {1.0f, 2.0f, 3.0f};
  AlignedVector<float> Aux = {10.0f, 0.0f, -1.0f};
  core::mergeAux<OpAdd>(Main.data(), Aux.data(), 3);
  EXPECT_EQ(Main[0], 11.0f);
  EXPECT_EQ(Main[1], 2.0f);
  EXPECT_EQ(Main[2], 2.0f);
  EXPECT_EQ(Aux[0], 0.0f);
  EXPECT_EQ(Aux[2], 0.0f);
}

TEST(InvecHelpers, FillIdentityUsesOperatorIdentity) {
  AlignedVector<float> A(4, 99.0f);
  core::fillIdentity<OpMin>(A.data(), 4);
  for (float X : A)
    EXPECT_TRUE(std::isinf(X) && X > 0);
  AlignedVector<int32_t> Bv(4, 99);
  core::fillIdentity<OpAdd>(Bv.data(), 4);
  for (int32_t X : Bv)
    EXPECT_EQ(X, 0);
}
