//===-- verify/ServeFuzz.cpp - Serve-protocol fuzzer ----------------------===//

#include "verify/ServeFuzz.h"

#include "graph/Generators.h"
#include "obs/Metrics.h"
#include "service/Json.h"
#include "service/Protocol.h"
#include "service/Service.h"
#include "util/Prng.h"

#include <chrono>
#include <future>
#include <thread>
#include <utility>
#include <vector>

namespace cfv {
namespace verify {

namespace {

uint64_t hashString(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ULL;
  }
  return H;
}

Status violation(const std::string &What, const std::string &Line) {
  return Status::error(ErrorCode::Unavailable,
                       "serve fuzz invariant violated: " + What +
                           " | line: " + Line);
}

} // namespace

/// Grammar generator: a syntactically valid request line, occasionally
/// carrying semantically hostile fields (unknown app/version, zero
/// timeout, absurd thread counts) that must come back as structured
/// errors, never crashes.
std::string fuzzValidLine(Xoshiro256 &Rng, int64_t Id) {
  static const char *Apps[] = {"pagerank", "sssp",  "wcc",
                               "bfs",      "spmv",  "pagerank64",
                               "agg",      "nosuchapp"};
  static const char *Datasets[] = {"fuzz-a", "fuzz-b", "fuzz-c",
                                   "fuzz-missing"};
  static const char *Versions[] = {"", "invec", "mask", "serial", "bogus"};
  std::string L = "{\"app\":\"";
  L += Apps[Rng.nextBounded(8)];
  L += "\",\"dataset\":\"";
  L += Datasets[Rng.nextBounded(4)];
  L += "\"";
  const char *V = Versions[Rng.nextBounded(5)];
  if (*V) {
    L += ",\"version\":\"";
    L += V;
    L += "\"";
  }
  if (Rng.nextBounded(2))
    L += ",\"iters\":" + std::to_string(Rng.nextBounded(4));
  if (Rng.nextBounded(3) == 0)
    L += ",\"threads\":" + std::to_string(Rng.nextBounded(5));
  if (Rng.nextBounded(4) == 0) {
    // Tiny deadlines race the injected load delay: both outcomes
    // (completion and deadline_exceeded) are legal, both must be
    // structured.
    static const char *Timeouts[] = {"0.01", "1", "5", "10000"};
    L += ",\"timeout_ms\":";
    L += Timeouts[Rng.nextBounded(4)];
  }
  L += ",\"id\":\"fz" + std::to_string(Id) + "\"}";
  return L;
}

std::string fuzzMutateLine(std::string L, Xoshiro256 &Rng) {
  if (L.empty())
    return L;
  switch (Rng.nextBounded(7)) {
  case 0: { // flip a byte
    const size_t P = Rng.nextBounded(static_cast<uint32_t>(L.size()));
    L[P] = static_cast<char>(Rng.nextBounded(256));
    break;
  }
  case 1: // truncate
    L.resize(Rng.nextBounded(static_cast<uint32_t>(L.size())));
    break;
  case 2: { // insert a random byte
    const size_t P = Rng.nextBounded(static_cast<uint32_t>(L.size()));
    L.insert(L.begin() + static_cast<long>(P),
             static_cast<char>(Rng.nextBounded(256)));
    break;
  }
  case 3: // two objects on one line
    L += L;
    break;
  case 4: { // deep nesting
    std::string Deep;
    const unsigned Depth = 4 + Rng.nextBounded(400);
    for (unsigned I = 0; I < Depth; ++I)
      Deep += (I & 1) ? "[" : "{\"a\":";
    L = Deep + L;
    break;
  }
  case 5: // huge number
    L = "{\"app\":\"pagerank\",\"iters\":1" +
        std::string(3 + Rng.nextBounded(300), '0') + "}";
    break;
  case 6: { // long string key/value
    L = "{\"app\":\"" + std::string(1 + Rng.nextBounded(2000), 'x') +
        "\",\"dataset\":\"fuzz-a\"}";
    break;
  }
  }
  return L;
}

namespace {

/// One fuzz client session: its own RNG stream, id namespace, and
/// pending-response books against the shared Service.  \p ConnIdx 0 with
/// \p MultiConn false reproduces the historical single-session stream
/// exactly.  On success \p Out receives the session's stats.
Status runFuzzSession(service::Service &Svc, const FuzzOptions &O,
                      int ConnIdx, int64_t Lines, bool MultiConn,
                      FuzzStats &Out) {
  Xoshiro256 Rng(MultiConn ? (O.Seed ^ 0x5EF2F00DULL) +
                                 0x9E3779B97F4A7C15ULL *
                                     static_cast<uint64_t>(ConnIdx + 1)
                           : O.Seed ^ 0x5EF2F00DULL);
  FuzzStats St;
  std::vector<std::pair<std::string, std::future<service::ServeResponse>>>
      Pending;

  // Reap a completed (or soon-to-complete) response and check the
  // response invariants; returns a violation status or Ok.
  auto reapOne = [&]() -> Status {
    auto Front = std::move(Pending.front());
    Pending.erase(Pending.begin());
    service::ServeResponse R = Front.second.get();
    const std::string Wire = R.toJson();
    const Expected<json::Value> Parsed = json::parse(Wire);
    if (!Parsed.ok())
      return violation("response does not round-trip through json::parse: " +
                           Wire,
                       Front.first);
    if (R.Ok) {
      ++St.Ok;
    } else {
      ++St.Failed;
      if (R.Error.ok())
        return violation("failed response carries an Ok status: " + Wire,
                         Front.first);
    }
    return Status();
  };

  auto consume = [&](const std::string &Line) -> Status {
    ++St.Lines;
    const service::ClassifiedLine CL = service::classifyLine(Line);
    switch (CL.Kind) {
    case service::LineKind::Empty:
      break;
    case service::LineKind::HttpGet:
    case service::LineKind::Shutdown:
    case service::LineKind::Backends:
      ++St.Commands;
      break;
    case service::LineKind::Stats:
    case service::LineKind::Metrics: {
      ++St.Commands;
      // The scrape payloads cfv_serve would answer with must be valid
      // JSON under any interleaving of fuzz traffic.
      const Expected<json::Value> P = json::parse(
          "{\"metrics\":" + obs::MetricsRegistry::instance().renderJson() +
          "}");
      if (!P.ok())
        return violation("metrics registry JSON does not parse", Line);
      break;
    }
    case service::LineKind::Malformed:
    case service::LineKind::UnknownCmd:
    case service::LineKind::BadRequest:
      ++St.BadLines;
      if (CL.Error.ok())
        return violation("rejected line without a structured error", Line);
      break;
    case service::LineKind::Request:
      ++St.Requests;
      Pending.emplace_back(Line, Svc.submit(CL.Request));
      break;
    }
    return Status();
  };

  for (int64_t I = 0; I < Lines; ++I) {
    // Distinct id namespaces per session so cross-session responses can
    // never be confused by an id-keyed client.
    const int64_t Id = MultiConn
                           ? static_cast<int64_t>(ConnIdx) * 1000000 + I
                           : I;
    std::string Line;
    const uint32_t Roll = Rng.nextBounded(10);
    if (Roll < 5)
      Line = fuzzValidLine(Rng, Id);
    else if (Roll < 8)
      Line = fuzzMutateLine(fuzzValidLine(Rng, Id), Rng);
    else if (Roll == 8) {
      static const char *Cmds[] = {"{\"cmd\":\"stats\"}",
                                   "{\"cmd\":\"metrics\"}",
                                   "{\"cmd\":\"backends\"}",
                                   "{\"cmd\":\"shutdown\"}", "GET /metrics"};
      Line = Cmds[Rng.nextBounded(5)];
    } else {
      // Pure noise.
      Line.resize(Rng.nextBounded(64));
      for (auto &Ch : Line)
        Ch = static_cast<char>(Rng.nextBounded(256));
    }
    if (Status S = consume(Line); !S.ok())
      return S;

    if (MultiConn) {
      // Pipelined garbage hard behind a valid request: the classifier
      // must reject the tail without disturbing the admitted head.
      if (Rng.nextBounded(16) == 0) {
        if (Status S = consume(fuzzMutateLine(fuzzValidLine(Rng, Id), Rng));
            !S.ok())
          return S;
      }
      // Mid-batch disconnect: the client vanishes with responses still
      // owed.  Abandon them un-reaped -- the service still completes
      // every admitted request, which the global books check verifies.
      if (!Pending.empty() && Rng.nextBounded(64) == 0) {
        St.Abandoned += static_cast<int64_t>(Pending.size());
        Pending.clear();
      }
    }

    // Reap in bursts: letting ~2x the queue depth accumulate first makes
    // admission-control rejections a routine event, not a corner case.
    while (Pending.size() > static_cast<size_t>(2 * O.QueueDepth))
      if (Status S = reapOne(); !S.ok())
        return S;
  }

  while (!Pending.empty())
    if (Status S = reapOne(); !S.ok())
      return S;
  Out = St;
  return Status();
}

} // namespace

Expected<FuzzStats> fuzzService(const FuzzOptions &O) {
  service::Service::Config C;
  C.QueueDepth = O.QueueDepth;
  C.Workers = O.Workers;
  const double DelayMs = O.LoadDelayMs;
  C.Loader = [DelayMs](const service::DatasetKey &K)
      -> Expected<graph::EdgeList> {
    if (DelayMs > 0)
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          DelayMs));
    if (K.Source.find("missing") != std::string::npos)
      return Status::error(ErrorCode::NotFound,
                           "fuzz loader: no dataset '" + K.Source + "'");
    const uint64_t H = hashString(K.Source);
    graph::EdgeList G = graph::genUniform(4, 40 + H % 80, H);
    if (K.Weighted && !G.isWeighted()) {
      G.Weight.resize(G.Src.size());
      Xoshiro256 WRng(K.WeightSeed);
      for (auto &W : G.Weight)
        W = 1.0f + WRng.nextFloat() * 63.0f;
    }
    return G;
  };
  service::Service Svc(C);

  const int Conns = O.Connections > 1 ? O.Connections : 1;
  std::vector<FuzzStats> PerConn(Conns);
  std::vector<Status> Violations(Conns);
  if (Conns == 1) {
    Violations[0] =
        runFuzzSession(Svc, O, 0, O.Lines, /*MultiConn=*/false, PerConn[0]);
  } else {
    // Concurrent sessions against one Service: the interleaving itself
    // is the test (shared cache, shared admission control, shared
    // metrics registry), which is why TSan runs this path.
    const int64_t PerLines = (O.Lines + Conns - 1) / Conns;
    std::vector<std::thread> Threads;
    Threads.reserve(Conns);
    for (int T = 0; T < Conns; ++T)
      Threads.emplace_back([&, T] {
        Violations[T] = runFuzzSession(Svc, O, T, PerLines,
                                       /*MultiConn=*/true, PerConn[T]);
      });
    for (auto &Th : Threads)
      Th.join();
  }
  Svc.drain();

  FuzzStats St;
  for (int T = 0; T < Conns; ++T) {
    if (!Violations[T].ok())
      return Violations[T];
    St.Lines += PerConn[T].Lines;
    St.Requests += PerConn[T].Requests;
    St.Ok += PerConn[T].Ok;
    St.Failed += PerConn[T].Failed;
    St.BadLines += PerConn[T].BadLines;
    St.Commands += PerConn[T].Commands;
    St.Abandoned += PerConn[T].Abandoned;
  }

  const service::RequestScheduler::Stats Q = Svc.schedulerStats();
  if (Q.Queued != 0)
    return violation("requests still queued after drain", "");
  // Every admitted task runs to completion (expired ones complete with a
  // deadline error, abandoned ones complete into a dropped future), so
  // after drain the books must balance exactly.
  if (Q.Submitted != Q.Completed)
    return violation("scheduler books do not balance: submitted " +
                         std::to_string(Q.Submitted) + " != completed " +
                         std::to_string(Q.Completed),
                     "");
  return St;
}

} // namespace verify
} // namespace cfv
