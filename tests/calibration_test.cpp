//===- tests/calibration_test.cpp - Dataset calibration regression --------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The synthetic dataset registry was calibrated so that the
// conflict-masking SIMD utilization -- the input property the paper's
// phenomena hinge on -- lands near the paper's annotations and preserves
// its higgs > pokec > amazon ordering (EXPERIMENTS.md).  These tests pin
// the calibration down so generator changes cannot silently break the
// benchmark harnesses' comparability.  Bands are generous: the invariant
// is the ordering and the regime (clean vs adverse), not the digit.
//
//===----------------------------------------------------------------------===//

#include "apps/frontier/FrontierEngine.h"
#include "apps/pagerank/PageRank.h"
#include "core/Dispatch.h"
#include "graph/Datasets.h"

#include "gtest/gtest.h"

using namespace cfv;
using namespace cfv::apps;
using namespace cfv::graph;

namespace {

struct DatasetProbe {
  double PrUtil;   ///< tiled PageRank mask utilization
  double SsspUtil; ///< frontier SSSP mask utilization
  double PrD1;     ///< tiled PageRank invec mean D1
};

/// Pins the probes to a 16-lane backend for the duration of a test:
/// the calibration bands are per-vector density properties of the
/// paper's 16-lane shape, and an 8-lane (AVX2) vector sees fewer
/// in-vector duplicates, shifting utilization upward.
struct SixteenLanePin {
  SixteenLanePin() { core::setBackend(core::BackendKind::Scalar); }
  ~SixteenLanePin() { core::resetBackendForTest(); }
};

DatasetProbe probe(const std::string &Name) {
  const SixteenLanePin Pin;
  // Small scale keeps this test fast; the utilizations are nearly
  // scale-invariant because they are density properties.
  const Dataset D = *makeGraphDataset(Name, /*Scale=*/0.25, true);
  PageRankOptions O;
  O.MaxIterations = 5;
  O.Tolerance = 0.0f;
  DatasetProbe P;
  P.PrUtil = runPageRank(D.Edges, PrVersion::TilingMask, O).SimdUtil;
  P.PrD1 = runPageRank(D.Edges, PrVersion::TilingInvec, O).MeanD1;
  P.SsspUtil =
      runFrontier(D.Edges, FrApp::Sssp, FrVersion::NontilingMask).SimdUtil;
  return P;
}

} // namespace

TEST(Calibration, HiggsSimIsNearlyConflictFree) {
  // Paper: higgs-twitter PageRank simd_util = 97.96%.
  const DatasetProbe P = probe("higgs-twitter-sim");
  EXPECT_GT(P.PrUtil, 0.95);
  EXPECT_LT(P.PrD1, 1.0) << "graph apps' 'very small D1' regime (§3.4)";
}

TEST(Calibration, PokecSimSitsInTheMiddle) {
  // Paper: soc-Pokec PageRank simd_util = 91.8%.
  const DatasetProbe P = probe("soc-pokec-sim");
  EXPECT_GT(P.PrUtil, 0.85);
  EXPECT_LT(P.PrUtil, 0.97);
}

TEST(Calibration, AmazonSimIsAdverse) {
  // Paper: amazon0312 is the adverse input (PageRank simd_util = 77.7%,
  // SSSP 27.9%); the clustered stand-in must stay clearly adverse.
  const DatasetProbe P = probe("amazon0312-sim");
  EXPECT_LT(P.PrUtil, 0.75);
  EXPECT_GT(P.PrUtil, 0.25);
  EXPECT_GT(P.PrD1, 1.0) << "pushes the §3.4 policy to Algorithm 2";
}

TEST(Calibration, UtilizationOrderingMatchesPaper) {
  const DatasetProbe H = probe("higgs-twitter-sim");
  const DatasetProbe P = probe("soc-pokec-sim");
  const DatasetProbe A = probe("amazon0312-sim");
  EXPECT_GT(H.PrUtil, P.PrUtil);
  EXPECT_GT(P.PrUtil, A.PrUtil);
  EXPECT_GT(H.SsspUtil, A.SsspUtil);
  EXPECT_GT(H.PrD1, 0.0);
  EXPECT_GT(A.PrD1, P.PrD1);
}
