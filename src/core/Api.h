//===- core/Api.h - The paper's programming interface (§3.5) ----*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure-7 style programming interface.  The paper embeds in-vector
/// reduction into a SIMD programming framework (Huo et al., ICS'14) as
/// functions with the prototype
///
///     mask invec_op(mask active, vint idx, vtype data)
///
/// where op is the reduction operator, data is reduced in place, and the
/// returned mask marks the conflict-free lanes holding partial results.
/// This header provides those entry points over the fastest backend
/// available in the build (vint/vfloat/mask aliases included), so user
/// code can be written exactly like the paper's vectorized PageRank:
///
/// \code
///   vint Vny = vint::load(N2 + J);
///   vfloat Vadd = vfloat::gather(Rank, Vnx) / vfloat::gather(Nn, Vnx);
///   mask M = invec_add(simd::kAllLanes, Vny, Vadd);
///   cfv::core::accumulateScatter<simd::OpAdd>(M, Vny, Vadd, Sum);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CFV_CORE_API_H
#define CFV_CORE_API_H

#include "core/InvecReduce.h"

namespace cfv {

/// Convenience aliases over the fastest backend in this build.
using vint = simd::VecI32<simd::NativeBackend>;
using vfloat = simd::VecF32<simd::NativeBackend>;
using mask = simd::Mask16;

/// In-vector summation; returns the conflict-free scatter mask.
inline mask invec_add(mask Active, vint Idx, vfloat &Data) {
  return core::invecReduce<simd::OpAdd>(Active, Idx, Data).Ret;
}
inline mask invec_add(mask Active, vint Idx, vint &Data) {
  return core::invecReduce<simd::OpAdd>(Active, Idx, Data).Ret;
}

/// In-vector minimum (e.g. SSSP distance relaxation).
inline mask invec_min(mask Active, vint Idx, vfloat &Data) {
  return core::invecReduce<simd::OpMin>(Active, Idx, Data).Ret;
}
inline mask invec_min(mask Active, vint Idx, vint &Data) {
  return core::invecReduce<simd::OpMin>(Active, Idx, Data).Ret;
}

/// In-vector maximum (e.g. SSWP width relaxation).
inline mask invec_max(mask Active, vint Idx, vfloat &Data) {
  return core::invecReduce<simd::OpMax>(Active, Idx, Data).Ret;
}
inline mask invec_max(mask Active, vint Idx, vint &Data) {
  return core::invecReduce<simd::OpMax>(Active, Idx, Data).Ret;
}

/// In-vector product.
inline mask invec_mul(mask Active, vint Idx, vfloat &Data) {
  return core::invecReduce<simd::OpMul>(Active, Idx, Data).Ret;
}
inline mask invec_mul(mask Active, vint Idx, vint &Data) {
  return core::invecReduce<simd::OpMul>(Active, Idx, Data).Ret;
}

//===----------------------------------------------------------------------===//
// 64-bit extension (8 lanes, vpconflictq)
//===----------------------------------------------------------------------===//

/// 8-lane 64-bit vectors for double-precision / wide-accumulator
/// reductions; only the low 8 mask bits are significant
/// (simd::kAllLanes64).
using vlong = simd::VecI64<simd::NativeBackend>;
using vdouble = simd::VecF64<simd::NativeBackend>;

inline mask invec_add(mask Active, vlong Idx, vdouble &Data) {
  return core::invecReduce<simd::OpAdd>(Active, Idx, Data).Ret;
}
inline mask invec_add(mask Active, vlong Idx, vlong &Data) {
  return core::invecReduce<simd::OpAdd>(Active, Idx, Data).Ret;
}
inline mask invec_min(mask Active, vlong Idx, vdouble &Data) {
  return core::invecReduce<simd::OpMin>(Active, Idx, Data).Ret;
}
inline mask invec_min(mask Active, vlong Idx, vlong &Data) {
  return core::invecReduce<simd::OpMin>(Active, Idx, Data).Ret;
}
inline mask invec_max(mask Active, vlong Idx, vdouble &Data) {
  return core::invecReduce<simd::OpMax>(Active, Idx, Data).Ret;
}
inline mask invec_max(mask Active, vlong Idx, vlong &Data) {
  return core::invecReduce<simd::OpMax>(Active, Idx, Data).Ret;
}

} // namespace cfv

#endif // CFV_CORE_API_H
