//===-- tests/serve_fuzz_test.cpp - in-process serve fuzzer ---------------===//
//
// Drives verify::fuzzService directly (cfv_check exposes the same thing
// via --fuzz-serve/--fuzz-conns) so the sanitizer tiers get a
// deterministic dose of single- and multi-connection protocol fuzzing
// on every test run.
//
//===----------------------------------------------------------------------===//

#include "verify/ServeFuzz.h"

#include <gtest/gtest.h>

using namespace cfv;
using namespace cfv::verify;

namespace {

TEST(ServeFuzzTest, SingleConnectionBooksBalance) {
  FuzzOptions O;
  O.Seed = 42;
  O.Lines = 400;
  O.LoadDelayMs = 0.5;
  const Expected<FuzzStats> R = fuzzService(O);
  ASSERT_TRUE(R.ok()) << R.status().toString();
  EXPECT_EQ(400, R->Lines);
  // The grammar mixes ~50% valid requests with mutations, commands, and
  // noise; the exact split is seed-dependent but every class must be
  // represented at this volume.
  EXPECT_GT(R->Requests, 0);
  EXPECT_GT(R->BadLines, 0);
  EXPECT_EQ(R->Requests, R->Ok + R->Failed);
  // Single-connection sessions never simulate disconnects.
  EXPECT_EQ(0, R->Abandoned);
}

TEST(ServeFuzzTest, MultiConnectionInterleavings) {
  FuzzOptions O;
  O.Seed = 7;
  O.Lines = 600;
  O.Connections = 4;
  O.LoadDelayMs = 0.5;
  const Expected<FuzzStats> R = fuzzService(O);
  ASSERT_TRUE(R.ok()) << R.status().toString();
  // Lines splits across sessions, rounded up per session; pipelined
  // garbage injection adds extra consumed lines on top.
  EXPECT_GE(R->Lines, 600);
  EXPECT_GT(R->Requests, 0);
  // Abandoned responses (mid-batch disconnects) still complete
  // service-side -- fuzzService's internal book check (submitted ==
  // completed after drain) would have failed otherwise.  Reaped
  // responses are the only ones counted in Ok/Failed.
  EXPECT_EQ(R->Requests, R->Ok + R->Failed + R->Abandoned);
}

TEST(ServeFuzzTest, MultiConnectionDeterministicPerSeed) {
  FuzzOptions O;
  O.Seed = 1234;
  O.Lines = 200;
  O.Connections = 3;
  O.LoadDelayMs = 0.0;
  const Expected<FuzzStats> A = fuzzService(O);
  const Expected<FuzzStats> B = fuzzService(O);
  ASSERT_TRUE(A.ok()) << A.status().toString();
  ASSERT_TRUE(B.ok()) << B.status().toString();
  // Per-session RNG streams are seed-derived, so the generated traffic
  // (and hence the line/request/bad-line books) is reproducible even
  // though thread interleaving varies.  Ok/Failed can differ: tiny
  // deadlines race the load delay.
  EXPECT_EQ(A->Lines, B->Lines);
  EXPECT_EQ(A->Requests, B->Requests);
  EXPECT_EQ(A->BadLines, B->BadLines);
  EXPECT_EQ(A->Commands, B->Commands);
  EXPECT_EQ(A->Abandoned, B->Abandoned);
}

} // namespace
