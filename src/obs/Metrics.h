//===- obs/Metrics.h - Lock-free metrics primitives and registry -*- C++ -*-==//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability subsystem's metrics layer.  Layering: util < obs <
/// simd/core/... -- obs depends only on util, so every layer above
/// (kernels, engine, service, tools) can publish metrics.
///
/// Primitives:
///  - Counter: a monotonic counter striped over per-thread shards.  The
///    hot path is one relaxed fetch_add on a cache-line-private slot --
///    no lock, no contention between threads with distinct shard ids --
///    and value() merges the shards on read (the scrape side pays the
///    cost, not the kernel).  Counter is always functional, even when
///    the subsystem is compiled out: the serving layer's request/cache
///    counters are protocol state, not optional telemetry.
///  - HistogramData: a plain bucketed distribution (upper bounds, counts,
///    sum) with merge() and quantile().  Used standalone by the bench
///    harnesses and as the snapshot type of the sharded Histogram.
///  - Histogram: HistogramData striped over per-thread shards with the
///    same lock-free write discipline as Counter.
///
/// MetricsRegistry is the process-wide namespace of metrics: counters and
/// histograms are created once by name (+ optional Prometheus label
/// string) and survive for the process lifetime; gauges are
/// collect-on-scrape callbacks so component state (cache resident bytes,
/// queue depth) is read live instead of mirrored.  renderPrometheus()
/// emits the text exposition format; renderJson() the stats-verb form.
///
/// Kill switches: compiling with -DCFV_OBS=0 reduces Histogram and the
/// registry to no-op stubs (zero overhead, nothing exported); at run time
/// CFV_OBS=0 in the environment stops kernels and the run facade from
/// recording (obs::enabled()), while already-registered serving counters
/// keep counting because responses depend on them.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_OBS_METRICS_H
#define CFV_OBS_METRICS_H

#ifndef CFV_OBS
#define CFV_OBS 1
#endif

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cfv {
namespace obs {

/// Runtime kill switch: false when the environment sets CFV_OBS=0.
/// Read once per process; gates kernel-side recording and tracing, not
/// the protocol counters.
bool enabled();

//===----------------------------------------------------------------------===//
// Shard assignment
//===----------------------------------------------------------------------===//

/// Number of cache-line-private slots a sharded metric stripes over.
/// More threads than shards degrade to sharing slots (still correct,
/// merely contended).
inline constexpr int kMetricShards = 32;

/// This thread's shard slot, assigned round-robin on first use.
int shardId();

//===----------------------------------------------------------------------===//
// Counter
//===----------------------------------------------------------------------===//

/// Monotonic counter with lock-free per-thread shards.  Writes are one
/// relaxed fetch_add on the caller's own slot; value() sums the slots.
class Counter {
public:
  void inc(uint64_t N = 1) {
    Shards[shardId()].V.fetch_add(N, std::memory_order_relaxed);
  }

  uint64_t value() const {
    uint64_t Sum = 0;
    for (const Slot &S : Shards)
      Sum += S.V.load(std::memory_order_relaxed);
    return Sum;
  }

  void reset() {
    for (Slot &S : Shards)
      S.V.store(0, std::memory_order_relaxed);
  }

private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> V{0};
  };
  Slot Shards[kMetricShards];
};

//===----------------------------------------------------------------------===//
// HistogramData
//===----------------------------------------------------------------------===//

/// A plain bucketed distribution.  Bucket I counts observations V with
/// V <= UpperBounds[I] (and V > UpperBounds[I-1]); observations above the
/// last bound land in the implicit overflow bucket (Prometheus le="+Inf").
struct HistogramData {
  std::vector<double> UpperBounds; ///< strictly increasing
  std::vector<uint64_t> Counts;    ///< UpperBounds.size() + 1 (overflow last)
  uint64_t TotalCount = 0;
  double Sum = 0.0;

  HistogramData() = default;
  explicit HistogramData(std::vector<double> Bounds)
      : UpperBounds(std::move(Bounds)), Counts(UpperBounds.size() + 1, 0) {}

  /// Index of the bucket \p V falls into.
  std::size_t bucketIndex(double V) const;

  void add(double V, uint64_t N = 1) {
    Counts[bucketIndex(V)] += N;
    TotalCount += N;
    Sum += V * static_cast<double>(N);
  }

  /// Folds \p O in; bucket layouts must match.
  void merge(const HistogramData &O);

  /// Quantile estimate in [0, 1] by linear interpolation inside the
  /// containing bucket (the standard Prometheus histogram_quantile
  /// estimator).  Returns 0 when empty; observations in the overflow
  /// bucket clamp to the last finite bound.
  double quantile(double Q) const;

  double mean() const {
    return TotalCount == 0 ? 0.0 : Sum / static_cast<double>(TotalCount);
  }
};

/// N log-spaced upper bounds starting at \p Min, doubling each step
/// (e.g. log2Bounds(1e-6, 26) spans 1us..~33s) -- the latency layout.
std::vector<double> log2Bounds(double Min, int N);

/// Upper bounds 0, 1, ..., N -- the lane-count layout (D1, D2, active
/// lanes per pass all live in [0, 16]).
std::vector<double> laneBounds(int N);

#if CFV_OBS

//===----------------------------------------------------------------------===//
// Histogram (sharded)
//===----------------------------------------------------------------------===//

/// HistogramData striped over per-thread shards.  observe() touches only
/// the caller's slot (relaxed atomics); snapshot() merges.
class Histogram {
public:
  explicit Histogram(std::vector<double> Bounds);

  void observe(double V, uint64_t N = 1);

  /// Merged view of every shard.
  HistogramData snapshot() const;

private:
  struct alignas(64) Shard {
    std::vector<std::atomic<uint64_t>> Counts;
    std::atomic<uint64_t> Total{0};
    std::atomic<double> Sum{0.0};
  };
  std::vector<double> UpperBounds;
  std::vector<Shard> Shards;
};

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

/// One merged sample at scrape time.
struct MetricSample {
  enum class Kind { Counter, Gauge, Histogram };
  Kind K = Kind::Counter;
  std::string Name;   ///< base metric name (cfv_runs_total)
  std::string Labels; ///< raw Prometheus label body, e.g. app="pagerank"
  std::string Help;
  double Value = 0.0;     ///< counters / gauges
  HistogramData Hist;     ///< histograms
};

/// Process-wide metric namespace.  Lookup is mutex-guarded (cold: once
/// per metric per call site, or per scrape); the returned references are
/// valid for the process lifetime and their write paths are lock-free.
class MetricsRegistry {
public:
  static MetricsRegistry &instance();

  /// Finds or creates the counter \p Name{\p Labels}.  Help is recorded
  /// on first creation.
  Counter &counter(const std::string &Name, const std::string &Labels = "",
                   const std::string &Help = "");

  /// Finds or creates a histogram; \p Bounds applies on first creation
  /// only (later callers share the existing layout).
  Histogram &histogram(const std::string &Name, std::vector<double> Bounds,
                       const std::string &Labels = "",
                       const std::string &Help = "");

  /// Registers (or replaces) a collect-on-scrape gauge.  The callback
  /// runs on the scraping thread; it must be safe to call concurrently
  /// with the owning component's writers.
  void gauge(const std::string &Name, std::function<double()> Read,
             const std::string &Labels = "", const std::string &Help = "");

  /// Drops a gauge callback (component shutdown -- a callback must never
  /// outlive the state it reads).
  void removeGauge(const std::string &Name, const std::string &Labels = "");

  /// Merged snapshot of everything, sorted by (name, labels).
  std::vector<MetricSample> collect() const;

  /// Prometheus text exposition (version 0.0.4): # HELP / # TYPE per
  /// metric family, cumulative le-labeled buckets for histograms.
  std::string renderPrometheus() const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}} -- the
  /// cfv_serve stats-verb form.
  std::string renderJson() const;

  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

private:
  MetricsRegistry() = default;
  struct Impl;
  Impl &impl() const;
};

#else // !CFV_OBS

// Compiled-out stubs: same surface, no storage, no work.  Call sites stay
// unconditional; the optimizer deletes them.

class Histogram {
public:
  explicit Histogram(std::vector<double>) {}
  void observe(double, uint64_t = 1) {}
  HistogramData snapshot() const { return HistogramData(); }
};

struct MetricSample {
  enum class Kind { Counter, Gauge, Histogram };
  Kind K = Kind::Counter;
  std::string Name, Labels, Help;
  double Value = 0.0;
  HistogramData Hist;
};

class MetricsRegistry {
public:
  static MetricsRegistry &instance();
  Counter &counter(const std::string &, const std::string & = "",
                   const std::string & = "");
  Histogram &histogram(const std::string &, std::vector<double>,
                       const std::string & = "", const std::string & = "");
  void gauge(const std::string &, std::function<double()>,
             const std::string & = "", const std::string & = "") {}
  void removeGauge(const std::string &, const std::string & = "") {}
  std::vector<MetricSample> collect() const { return {}; }
  std::string renderPrometheus() const {
    return "# cfv observability compiled out (CFV_OBS=0)\n";
  }
  std::string renderJson() const {
    return "{\"counters\":{},\"gauges\":{},\"histograms\":{}}";
  }
};

#endif // CFV_OBS

} // namespace obs
} // namespace cfv

#endif // CFV_OBS_METRICS_H
