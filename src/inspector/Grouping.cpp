//===- inspector/Grouping.cpp - Conflict-free edge grouping --------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "inspector/Grouping.h"

#include <cassert>

using namespace cfv;
using namespace cfv::inspector;

GroupingResult inspector::groupConflictFree(const int32_t *Dst,
                                            int32_t NumNodes,
                                            const TilingResult &Tiling,
                                            int Width) {
  assert(Width > 0 && Width <= simd::kMaxLanes && "bad group width");
  GroupingResult R;
  R.Width = Width;
  R.NumEdges = static_cast<int64_t>(Tiling.Order.size());
  const uint8_t Full = static_cast<uint8_t>(Width);

  // NextGroup[v]: the first (global) group id an edge with destination v
  // may join; one past the last group already containing v.  Group ids
  // grow monotonically across tiles, so entries left over from earlier
  // tiles are always <= the current tile's base and need no reset.
  std::vector<int64_t> NextGroup(NumNodes, 0);
  std::vector<uint8_t> Fill; // occupancy of each allocated group

  std::vector<int64_t> EdgeGroup(R.NumEdges);
  std::vector<uint8_t> EdgeLane(R.NumEdges);

  for (int64_t T = 0; T < Tiling.numTiles(); ++T) {
    // Groups never span tiles: every tile starts allocating after the
    // groups of all previous tiles.
    const int64_t TileBase = static_cast<int64_t>(Fill.size());
    int64_t FirstOpen = TileBase;

    for (int64_t P = Tiling.TileBegin[T]; P < Tiling.TileBegin[T + 1]; ++P) {
      const int32_t E = Tiling.Order[P];
      const int32_t V = Dst[E];
      assert(V >= 0 && V < NumNodes && "destination out of range");

      // The earliest group that neither already contains V nor precedes
      // the open frontier.  The forward scan over full groups is rarely
      // taken; FirstOpen keeps it amortized in practice.
      int64_t G = NextGroup[V] > FirstOpen ? NextGroup[V] : FirstOpen;
      while (G < static_cast<int64_t>(Fill.size()) && Fill[G] == Full)
        ++G;
      if (G == static_cast<int64_t>(Fill.size()))
        Fill.push_back(0);

      EdgeGroup[P] = G;
      EdgeLane[P] = Fill[G]++;
      NextGroup[V] = G + 1;

      while (FirstOpen < static_cast<int64_t>(Fill.size()) &&
             Fill[FirstOpen] == Full)
        ++FirstOpen;
    }
  }

  R.NumGroups = static_cast<int64_t>(Fill.size());
  R.Slot.assign(static_cast<std::size_t>(R.NumGroups) * Width, -1);
  R.GroupMask.resize(R.NumGroups);
  for (int64_t G = 0; G < R.NumGroups; ++G)
    R.GroupMask[G] = static_cast<simd::Mask16>((1u << Fill[G]) - 1u);
  for (int64_t P = 0; P < R.NumEdges; ++P)
    R.Slot[EdgeGroup[P] * Width + EdgeLane[P]] = Tiling.Order[P];
  return R;
}

GroupingResult inspector::groupConflictFreePairs(const int32_t *I,
                                                 const int32_t *J,
                                                 int32_t NumNodes,
                                                 const TilingResult &Tiling,
                                                 int Width) {
  assert(Width > 0 && Width <= simd::kMaxLanes && "bad group width");
  GroupingResult R;
  R.Width = Width;
  R.NumEdges = static_cast<int64_t>(Tiling.Order.size());
  const uint8_t Full = static_cast<uint8_t>(Width);

  // Same greedy as groupConflictFree, but an edge is constrained by both
  // endpoints: it may only join a group containing neither.
  std::vector<int64_t> NextGroup(NumNodes, 0);
  std::vector<uint8_t> Fill;

  std::vector<int64_t> EdgeGroup(R.NumEdges);
  std::vector<uint8_t> EdgeLane(R.NumEdges);

  for (int64_t T = 0; T < Tiling.numTiles(); ++T) {
    const int64_t TileBase = static_cast<int64_t>(Fill.size());
    int64_t FirstOpen = TileBase;

    for (int64_t P = Tiling.TileBegin[T]; P < Tiling.TileBegin[T + 1]; ++P) {
      const int32_t E = Tiling.Order[P];
      const int32_t Vi = I[E];
      const int32_t Vj = J[E];
      assert(Vi >= 0 && Vi < NumNodes && Vj >= 0 && Vj < NumNodes);

      int64_t G = NextGroup[Vi] > NextGroup[Vj] ? NextGroup[Vi]
                                                : NextGroup[Vj];
      if (FirstOpen > G)
        G = FirstOpen;
      while (G < static_cast<int64_t>(Fill.size()) && Fill[G] == Full)
        ++G;
      if (G == static_cast<int64_t>(Fill.size()))
        Fill.push_back(0);

      EdgeGroup[P] = G;
      EdgeLane[P] = Fill[G]++;
      NextGroup[Vi] = G + 1;
      NextGroup[Vj] = G + 1;

      while (FirstOpen < static_cast<int64_t>(Fill.size()) &&
             Fill[FirstOpen] == Full)
        ++FirstOpen;
    }
  }

  R.NumGroups = static_cast<int64_t>(Fill.size());
  R.Slot.assign(static_cast<std::size_t>(R.NumGroups) * Width, -1);
  R.GroupMask.resize(R.NumGroups);
  for (int64_t G = 0; G < R.NumGroups; ++G)
    R.GroupMask[G] = static_cast<simd::Mask16>((1u << Fill[G]) - 1u);
  for (int64_t P = 0; P < R.NumEdges; ++P)
    R.Slot[EdgeGroup[P] * Width + EdgeLane[P]] = Tiling.Order[P];
  return R;
}

GroupingResult inspector::groupConflictFree(const int32_t *Dst,
                                            int64_t NumEdges,
                                            int32_t NumNodes, int Width) {
  // Whole edge list as a single tile with the identity permutation.
  TilingResult Trivial;
  Trivial.BlockBits = 31;
  Trivial.Order.resize(NumEdges);
  for (int64_t E = 0; E < NumEdges; ++E)
    Trivial.Order[E] = static_cast<int32_t>(E);
  Trivial.TileBegin = {0, NumEdges};
  return groupConflictFree(Dst, NumNodes, Trivial, Width);
}
