//===- tests/TestHelpers.h - Shared test utilities --------------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the gtest suites: the backend list for typed tests,
/// deterministic random lane generators with controlled duplicate
/// density, and a lane-order scalar oracle for grouped reductions.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_TESTS_TESTHELPERS_H
#define CFV_TESTS_TESTHELPERS_H

#include "simd/Conflict.h"
#include "simd/Mask.h"
#include "simd/Ops.h"
#include "simd/Vec.h"
#include "util/AlignedAlloc.h"
#include "util/Prng.h"

#include "gtest/gtest.h"

#include <array>
#include <cstdint>

namespace cfv {
namespace test {

/// All backends available in this build; typed suites run on each.
#if CFV_HAVE_AVX512
using AllBackends =
    ::testing::Types<simd::backend::Scalar, simd::backend::Avx512>;
#else
using AllBackends = ::testing::Types<simd::backend::Scalar>;
#endif

using Lane16i = std::array<int32_t, simd::kMaxLanes>;
using Lane16f = std::array<float, simd::kMaxLanes>;

/// Random index lanes drawn from [0, Universe): a small universe forces
/// heavy duplication, a large one keeps lanes mostly distinct.
inline Lane16i randomIndices(Xoshiro256 &Rng, uint32_t Universe) {
  Lane16i L;
  for (int32_t &X : L)
    X = static_cast<int32_t>(Rng.nextBounded(Universe));
  return L;
}

inline Lane16f randomFloats(Xoshiro256 &Rng, float Scale = 8.0f) {
  Lane16f L;
  for (float &X : L)
    X = (Rng.nextFloat() - 0.5f) * Scale;
  return L;
}

inline Lane16i randomInts(Xoshiro256 &Rng, uint32_t Bound = 1000) {
  Lane16i L;
  for (int32_t &X : L)
    X = static_cast<int32_t>(Rng.nextBounded(Bound)) - 500;
  return L;
}

inline simd::Mask16 randomMask(Xoshiro256 &Rng) {
  return static_cast<simd::Mask16>(Rng.next() & 0xFFFF);
}

/// Lane-order reference of what one in-vector reduction must produce:
/// every distinct index's first active lane ends up holding the fold (in
/// lane order) of all active lanes sharing the index; other lanes keep
/// their value; Ret marks the first-occurrence lanes.
template <typename Op, typename T> struct GroupReduceRef {
  std::array<T, simd::kMaxLanes> Data;
  simd::Mask16 Ret = 0;
};

template <typename Op, typename T>
GroupReduceRef<Op, T> refGroupReduce(simd::Mask16 Active, const Lane16i &Idx,
                                     const std::array<T, simd::kMaxLanes> &In) {
  GroupReduceRef<Op, T> R;
  R.Data = In;
  for (int I = 0; I < simd::kMaxLanes; ++I) {
    if (!simd::testLane(Active, I))
      continue;
    bool First = true;
    for (int J = 0; J < I; ++J)
      if (simd::testLane(Active, J) && Idx[J] == Idx[I])
        First = false;
    if (!First)
      continue;
    R.Ret |= simd::laneBit(I);
    T Acc = Op::template identity<T>();
    for (int J = 0; J < simd::kMaxLanes; ++J)
      if (simd::testLane(Active, J) && Idx[J] == Idx[I])
        Acc = Op::template apply<T>(Acc, In[J]);
    R.Data[I] = Acc;
  }
  return R;
}

/// Loads an index array into the given backend's integer vector.
template <typename B> simd::VecI32<B> loadIdx(const Lane16i &L) {
  return simd::VecI32<B>::load(L.data());
}

template <typename B> simd::VecF32<B> loadF(const Lane16f &L) {
  return simd::VecF32<B>::load(L.data());
}

/// Stores a vector back to an array for inspection.
template <typename B> Lane16i toArray(simd::VecI32<B> V) {
  Lane16i L;
  V.store(L.data());
  return L;
}

template <typename B> Lane16f toArray(simd::VecF32<B> V) {
  Lane16f L;
  V.store(L.data());
  return L;
}

} // namespace test
} // namespace cfv

#endif // CFV_TESTS_TESTHELPERS_H
