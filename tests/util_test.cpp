//===- tests/util_test.cpp - util/ unit tests ----------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "util/AlignedAlloc.h"
#include "util/Prng.h"
#include "util/Stats.h"
#include "util/TablePrinter.h"
#include "util/Timer.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <set>

using namespace cfv;

TEST(AlignedAlloc, VectorDataIs64ByteAligned) {
  for (std::size_t N : {1u, 7u, 16u, 1000u}) {
    AlignedVector<float> V(N);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(V.data()) % kSimdAlignment, 0u)
        << "size " << N;
  }
}

TEST(AlignedAlloc, IntVectorAlignedToo) {
  AlignedVector<int32_t> V(33);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(V.data()) % kSimdAlignment, 0u);
}

TEST(AlignedAlloc, RoundUp) {
  EXPECT_EQ(roundUp(0, 16), 0u);
  EXPECT_EQ(roundUp(1, 16), 16u);
  EXPECT_EQ(roundUp(16, 16), 16u);
  EXPECT_EQ(roundUp(17, 16), 32u);
  EXPECT_EQ(roundUp(31, 8), 32u);
}

TEST(Prng, SplitMixIsDeterministic) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Prng, XoshiroIsDeterministicPerSeed) {
  Xoshiro256 A(7), B(7), C(8);
  bool Differs = false;
  for (int I = 0; I < 100; ++I) {
    const uint64_t Va = A.next();
    EXPECT_EQ(Va, B.next());
    if (Va != C.next())
      Differs = true;
  }
  EXPECT_TRUE(Differs) << "different seeds must give different streams";
}

TEST(Prng, BoundedStaysInRange) {
  Xoshiro256 Rng(123);
  for (uint32_t Bound : {1u, 2u, 3u, 17u, 1000u}) {
    for (int I = 0; I < 1000; ++I)
      ASSERT_LT(Rng.nextBounded(Bound), Bound);
  }
}

TEST(Prng, BoundedCoversAllValues) {
  Xoshiro256 Rng(5);
  std::set<uint32_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(Rng.nextBounded(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(Prng, FloatInUnitInterval) {
  Xoshiro256 Rng(9);
  for (int I = 0; I < 1000; ++I) {
    const float F = Rng.nextFloat();
    ASSERT_GE(F, 0.0f);
    ASSERT_LT(F, 1.0f);
  }
}

TEST(Prng, DoubleInUnitInterval) {
  Xoshiro256 Rng(9);
  double Sum = 0.0;
  for (int I = 0; I < 10000; ++I) {
    const double D = Rng.nextDouble();
    ASSERT_GE(D, 0.0);
    ASSERT_LT(D, 1.0);
    Sum += D;
  }
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02) << "mean far from uniform";
}

TEST(Stats, UtilizationOfPerfectPasses) {
  SimdUtilCounter C;
  C.recordPass(16, 16);
  C.recordPass(16, 16);
  EXPECT_DOUBLE_EQ(C.utilization(), 1.0);
  EXPECT_EQ(C.passes(16), 2u);
}

TEST(Stats, UtilizationOfPartialPasses) {
  SimdUtilCounter C;
  C.recordPass(8, 16);
  C.recordPass(4, 16);
  EXPECT_DOUBLE_EQ(C.utilization(), 12.0 / 32.0);
}

TEST(Stats, EmptyCounterReportsFullUtilization) {
  SimdUtilCounter C;
  EXPECT_DOUBLE_EQ(C.utilization(), 1.0);
}

TEST(Stats, CounterReset) {
  SimdUtilCounter C;
  C.recordPass(1, 16);
  C.reset();
  EXPECT_DOUBLE_EQ(C.utilization(), 1.0);
}

TEST(Stats, RunningMean) {
  RunningMean M;
  EXPECT_EQ(M.count(), 0u);
  M.add(2.0);
  M.add(4.0);
  M.add(6.0);
  EXPECT_DOUBLE_EQ(M.mean(), 4.0);
  EXPECT_EQ(M.count(), 3u);
  M.reset();
  EXPECT_EQ(M.count(), 0u);
}

TEST(Timer, PhaseTimerAccumulates) {
  PhaseTimer<3> T;
  T.add(0, 1.5);
  T.add(0, 0.5);
  T.add(2, 1.0);
  EXPECT_DOUBLE_EQ(T.seconds(0), 2.0);
  EXPECT_DOUBLE_EQ(T.seconds(1), 0.0);
  EXPECT_DOUBLE_EQ(T.seconds(2), 1.0);
  EXPECT_DOUBLE_EQ(T.total(), 3.0);
}

TEST(Timer, WallTimerAdvances) {
  WallTimer T;
  volatile double Sink = 0.0;
  for (int I = 0; I < 100000; ++I)
    Sink = Sink + I;
  EXPECT_GT(T.seconds(), 0.0);
  (void)Sink;
}

TEST(TablePrinter, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(1.0, 0), "1");
  EXPECT_EQ(TablePrinter::fmt(42LL), "42");
  EXPECT_EQ(TablePrinter::fmt(-7LL), "-7");
}

TEST(TablePrinter, PrintsAlignedColumns) {
  TablePrinter T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer-name", "2"});
  // Print to a temp file and sanity check the layout.
  std::FILE *F = std::tmpfile();
  ASSERT_NE(F, nullptr);
  T.print(F);
  std::rewind(F);
  char Buf[256];
  ASSERT_NE(std::fgets(Buf, sizeof(Buf), F), nullptr);
  EXPECT_NE(std::string(Buf).find("name"), std::string::npos);
  std::fclose(F);
}
