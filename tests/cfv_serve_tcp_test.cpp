//===- tests/cfv_serve_tcp_test.cpp - event-loop server e2e tests ---------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Drives the cfv_serve binary (CFV_SERVE_BIN) in TCP mode end to end:
// the epoll front-end under many concurrent NDJSON clients with
// pipelining (exactly one reply per request id, order free), HTTP/1.1
// keep-alive scrapes on the same port, SIGTERM graceful drain with an
// admitted request still in flight, connection-limit accept gating
// (CFV_MAX_CONNS), and survival of injected mid-response connection
// drops (serve.conn_drop).  Servers bind port 0; the ephemeral port is
// parsed from the startup banner on stderr.
//
//===----------------------------------------------------------------------===//

#if defined(__linux__)

#include "resilience/Fault.h" // CFV_FAULTS: the conn_drop test adapts

#include "gtest/gtest.h"

#include <arpa/inet.h>
#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <map>
#include <netinet/in.h>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

namespace {

#ifndef CFV_SERVE_BIN
#error "CFV_SERVE_BIN must be defined to the cfv_serve binary path"
#endif

bool contains(const std::string &S, const std::string &Needle) {
  return S.find(Needle) != std::string::npos;
}

/// A cfv_serve child in TCP mode.  stdin/stdout go to /dev/null; stderr
/// is piped so the ephemeral-port banner can be parsed.
class TcpServe {
public:
  explicit TcpServe(const std::vector<std::string> &ExtraArgs = {}) {
    int ErrPipe[2];
    if (::pipe(ErrPipe) != 0)
      return;
    Pid = ::fork();
    if (Pid == 0) {
      const int DevNull = ::open("/dev/null", O_RDWR);
      ::dup2(DevNull, 0);
      ::dup2(DevNull, 1);
      ::dup2(ErrPipe[1], 2);
      ::close(ErrPipe[0]);
      ::close(ErrPipe[1]);
      std::vector<std::string> Args = {"--port", "0"};
      Args.insert(Args.end(), ExtraArgs.begin(), ExtraArgs.end());
      std::vector<const char *> Argv = {CFV_SERVE_BIN};
      for (const std::string &A : Args)
        Argv.push_back(A.c_str());
      Argv.push_back(nullptr);
      ::execv(CFV_SERVE_BIN, const_cast<char *const *>(Argv.data()));
      std::_Exit(127);
    }
    ::close(ErrPipe[1]);
    Err = ::fdopen(ErrPipe[0], "r");
    // First banner line: "cfv_serve: listening on 127.0.0.1:<port>".
    char Line[256];
    while (Err && std::fgets(Line, sizeof(Line), Err)) {
      const char *At = std::strstr(Line, "listening on 127.0.0.1:");
      if (At) {
        Port = std::atoi(At + std::strlen("listening on 127.0.0.1:"));
        break;
      }
    }
  }

  ~TcpServe() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      int St = 0;
      ::waitpid(Pid, &St, 0);
    }
    if (Err)
      std::fclose(Err);
  }

  bool alive() const { return Pid > 0 && Port > 0; }
  int port() const { return Port; }
  pid_t pid() const { return Pid; }

  /// Reaps the child (blocking) and returns its exit code.
  int waitExit() {
    int St = 0;
    ::waitpid(Pid, &St, 0);
    Pid = -1;
    return WIFEXITED(St) ? WEXITSTATUS(St) : -1;
  }

private:
  pid_t Pid = -1;
  int Port = 0;
  std::FILE *Err = nullptr;
};

/// A blocking TCP client with a buffered line reader.
class Client {
public:
  explicit Client(int Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in Addr = {};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<uint16_t>(Port));
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      ::close(Fd);
      Fd = -1;
    }
  }
  ~Client() { close(); }

  bool connected() const { return Fd >= 0; }
  void close() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
  }

  bool sendLine(const std::string &L) { return sendRaw(L + "\n"); }

  bool sendRaw(const std::string &Bytes) {
    std::size_t Off = 0;
    while (Off < Bytes.size()) {
      const ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                               MSG_NOSIGNAL);
      if (N <= 0)
        return false;
      Off += static_cast<std::size_t>(N);
    }
    return true;
  }

  /// Next '\n'-terminated line, waiting up to \p TimeoutMs; "" on
  /// timeout or peer close.
  std::string recvLine(int TimeoutMs = 20000) {
    for (;;) {
      const std::size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        std::string L = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        return L;
      }
      if (!fill(TimeoutMs))
        return "";
    }
  }

  /// True when the peer sends nothing within \p TimeoutMs (the
  /// negative-space assertion for accept gating).
  bool quietFor(int TimeoutMs) {
    return Buf.empty() && !fill(TimeoutMs) && Buf.empty();
  }

  /// Reads until the peer closes; returns everything (HTTP with
  /// Connection: close).
  std::string recvUntilClose(int TimeoutMs = 20000) {
    while (fill(TimeoutMs))
      ;
    std::string All;
    All.swap(Buf);
    return All;
  }

  /// One HTTP response framed by Content-Length (keep-alive safe).
  std::string recvHttp(int TimeoutMs = 20000) {
    std::size_t HdrEnd;
    while ((HdrEnd = Buf.find("\r\n\r\n")) == std::string::npos)
      if (!fill(TimeoutMs))
        return "";
    const std::string Hdr = Buf.substr(0, HdrEnd + 4);
    std::size_t BodyLen = 0;
    // Case-insensitive scan for the Content-Length header.
    std::string Lower = Hdr;
    for (auto &C : Lower)
      C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    const std::size_t Cl = Lower.find("content-length:");
    if (Cl != std::string::npos)
      BodyLen = static_cast<std::size_t>(
          std::atol(Hdr.c_str() + Cl + std::strlen("content-length:")));
    while (Buf.size() < HdrEnd + 4 + BodyLen)
      if (!fill(TimeoutMs))
        return "";
    std::string Resp = Buf.substr(0, HdrEnd + 4 + BodyLen);
    Buf.erase(0, HdrEnd + 4 + BodyLen);
    return Resp;
  }

private:
  /// Pulls more bytes into Buf; false on timeout or EOF.
  bool fill(int TimeoutMs) {
    pollfd P = {Fd, POLLIN, 0};
    if (::poll(&P, 1, TimeoutMs) <= 0)
      return false;
    char Tmp[4096];
    const ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
    if (N <= 0)
      return false;
    Buf.append(Tmp, static_cast<std::size_t>(N));
    return true;
  }

  int Fd = -1;
  std::string Buf;
};

// Small synthetic dataset, shared by every client so concurrent bursts
// exercise the same-dataset micro-batching path.
std::string request(const std::string &Id) {
  return "{\"app\":\"pagerank\",\"dataset\":\"higgs-twitter-sim\","
         "\"scale\":0.05,\"iters\":2,\"id\":\"" +
         Id + "\"}";
}

std::string extractId(const std::string &Line) {
  const std::size_t At = Line.find("\"id\":\"");
  if (At == std::string::npos)
    return "";
  const std::size_t Start = At + 6;
  const std::size_t End = Line.find('"', Start);
  return End == std::string::npos ? "" : Line.substr(Start, End - Start);
}

TEST(CfvServeTcp, ConcurrentClientsGetExactlyOneReplyPerId) {
  TcpServe S;
  ASSERT_TRUE(S.alive());
  constexpr int NumClients = 8;
  constexpr int PerClient = 4;

  std::vector<std::map<std::string, int>> Books(NumClients);
  std::vector<int> Failures(NumClients, 0);
  std::vector<std::thread> Threads;
  for (int C = 0; C < NumClients; ++C)
    Threads.emplace_back([&, C] {
      Client Cl(S.port());
      if (!Cl.connected()) {
        ++Failures[C];
        return;
      }
      // Pipeline the whole burst before reading anything: replies may
      // come back out of order (batching, per-request completion), and
      // the id is the only correlation.
      for (int I = 0; I < PerClient; ++I)
        if (!Cl.sendLine(request("c" + std::to_string(C) + "-" +
                                 std::to_string(I))))
          ++Failures[C];
      for (int I = 0; I < PerClient; ++I) {
        const std::string L = Cl.recvLine();
        if (L.empty()) {
          ++Failures[C];
          return;
        }
        ++Books[C][extractId(L)];
        if (!contains(L, "\"ok\":true"))
          ++Failures[C];
      }
    });
  for (auto &T : Threads)
    T.join();

  for (int C = 0; C < NumClients; ++C) {
    EXPECT_EQ(0, Failures[C]) << "client " << C;
    EXPECT_EQ(static_cast<std::size_t>(PerClient), Books[C].size())
        << "client " << C;
    for (int I = 0; I < PerClient; ++I) {
      const std::string Id =
          "c" + std::to_string(C) + "-" + std::to_string(I);
      EXPECT_EQ(1, Books[C][Id]) << "id " << Id;
    }
  }

  // Shutdown over the wire: bye on this connection, then server exit.
  Client Cl(S.port());
  ASSERT_TRUE(Cl.connected());
  ASSERT_TRUE(Cl.sendLine("{\"cmd\":\"shutdown\"}"));
  EXPECT_TRUE(contains(Cl.recvLine(), "\"bye\":true"));
  EXPECT_EQ(0, S.waitExit());
}

TEST(CfvServeTcp, BatchWindowCoalescesSameDataset) {
  // A non-zero batch window makes coalescing deterministic: pipelined
  // same-dataset requests inside 20ms must land in one scheduler batch,
  // visible as cfv_net_batches_total < cfv_net_batch_requests_total in
  // the Prometheus scrape.
  ::setenv("CFV_BATCH_WINDOW_US", "20000", 1);
  TcpServe S;
  ::unsetenv("CFV_BATCH_WINDOW_US");
  ASSERT_TRUE(S.alive());

  Client Cl(S.port());
  ASSERT_TRUE(Cl.connected());
  for (int I = 0; I < 4; ++I)
    ASSERT_TRUE(Cl.sendLine(request("b" + std::to_string(I))));
  for (int I = 0; I < 4; ++I)
    EXPECT_TRUE(contains(Cl.recvLine(), "\"ok\":true"));

  Client Http(S.port());
  ASSERT_TRUE(Http.connected());
  ASSERT_TRUE(Http.sendRaw("GET /metrics HTTP/1.1\r\nHost: t\r\n"
                           "Connection: close\r\n\r\n"));
  const std::string M = Http.recvUntilClose();
  EXPECT_TRUE(contains(M, "cfv_net_batch_requests_total 4")) << M;
  // 4 requests in fewer than 4 batches proves coalescing happened; with
  // a 20ms window a pipelined burst lands in exactly one.
  EXPECT_TRUE(contains(M, "cfv_net_batches_total 1")) << M;

  Client Bye(S.port());
  ASSERT_TRUE(Bye.connected());
  ASSERT_TRUE(Bye.sendLine("{\"cmd\":\"shutdown\"}"));
  EXPECT_TRUE(contains(Bye.recvLine(), "\"bye\":true"));
  EXPECT_EQ(0, S.waitExit());
}

TEST(CfvServeTcp, HttpKeepAliveScrapes) {
  TcpServe S;
  ASSERT_TRUE(S.alive());
  Client Cl(S.port());
  ASSERT_TRUE(Cl.connected());

  // Three requests down one keep-alive connection.
  ASSERT_TRUE(Cl.sendRaw("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"));
  const std::string Health = Cl.recvHttp();
  EXPECT_TRUE(contains(Health, "HTTP/1.1 200")) << Health;
  EXPECT_TRUE(contains(Health, "\"ok\":true")) << Health;
  EXPECT_TRUE(contains(Health, "\"draining\":false")) << Health;

  ASSERT_TRUE(Cl.sendRaw("GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n"));
  const std::string Metrics = Cl.recvHttp();
  EXPECT_TRUE(contains(Metrics, "HTTP/1.1 200")) << Metrics;
  EXPECT_TRUE(contains(Metrics, "text/plain; version=0.0.4")) << Metrics;
  EXPECT_TRUE(contains(Metrics, "cfv_net_accepted_total")) << Metrics;

  ASSERT_TRUE(Cl.sendRaw("GET /nope HTTP/1.1\r\nHost: t\r\n\r\n"));
  EXPECT_TRUE(contains(Cl.recvHttp(), "HTTP/1.1 404")) << "404 expected";

  // Connection: close tears the connection down after the reply.
  ASSERT_TRUE(Cl.sendRaw("GET /healthz HTTP/1.1\r\nHost: t\r\n"
                         "Connection: close\r\n\r\n"));
  const std::string Last = Cl.recvUntilClose();
  EXPECT_TRUE(contains(Last, "HTTP/1.1 200")) << Last;

  Client Bye(S.port());
  ASSERT_TRUE(Bye.connected());
  ASSERT_TRUE(Bye.sendLine("{\"cmd\":\"shutdown\"}"));
  EXPECT_TRUE(contains(Bye.recvLine(), "\"bye\":true"));
  EXPECT_EQ(0, S.waitExit());
}

TEST(CfvServeTcp, SigtermDrainsAnsweringInFlight) {
  TcpServe S;
  ASSERT_TRUE(S.alive());
  Client Cl(S.port());
  ASSERT_TRUE(Cl.connected());
  // Warm round trip proves the server is fully up before the signal.
  ASSERT_TRUE(Cl.sendLine(request("warm")));
  ASSERT_TRUE(contains(Cl.recvLine(), "\"id\":\"warm\""));
  // A heavier cold load holds a worker while SIGTERM lands.
  ASSERT_TRUE(Cl.sendLine("{\"app\":\"pagerank\",\"dataset\":"
                          "\"higgs-twitter-sim\",\"scale\":0.4,"
                          "\"iters\":2,\"id\":\"inflight\"}"));
  ::usleep(100 * 1000); // let the loop admit it before the signal
  ASSERT_EQ(0, ::kill(S.pid(), SIGTERM));
  // The admitted request still gets its one structured reply.
  const std::string R = Cl.recvLine();
  EXPECT_TRUE(contains(R, "\"id\":\"inflight\"")) << R;
  EXPECT_TRUE(contains(R, "\"ok\":")) << R;
  // Then the drained server closes the connection and exits cleanly.
  EXPECT_EQ("", Cl.recvLine());
  EXPECT_EQ(0, S.waitExit());
}

TEST(CfvServeTcp, MaxConnsGatesAccept) {
  // With a one-connection limit the second client completes the TCP
  // handshake (kernel backlog) but is not serviced until the first
  // leaves -- admission by accept gating, not by reset.
  ::setenv("CFV_MAX_CONNS", "1", 1);
  TcpServe S;
  ::unsetenv("CFV_MAX_CONNS");
  ASSERT_TRUE(S.alive());

  Client A(S.port());
  ASSERT_TRUE(A.connected());
  ASSERT_TRUE(A.sendLine(request("a")));
  EXPECT_TRUE(contains(A.recvLine(), "\"id\":\"a\""));

  Client B(S.port());
  ASSERT_TRUE(B.connected());
  ASSERT_TRUE(B.sendLine(request("b")));
  // B waits in the backlog while A holds the one slot.
  EXPECT_TRUE(B.quietFor(300));

  A.close();
  // A's slot frees, B gets accepted and its buffered request answered.
  const std::string R = B.recvLine();
  EXPECT_TRUE(contains(R, "\"id\":\"b\"")) << R;
  EXPECT_TRUE(contains(R, "\"ok\":true")) << R;

  ASSERT_TRUE(B.sendLine("{\"cmd\":\"shutdown\"}"));
  EXPECT_TRUE(contains(B.recvLine(), "\"bye\":true"));
  EXPECT_EQ(0, S.waitExit());
}

TEST(CfvServeTcp, SurvivesInjectedConnDrop) {
  // serve.conn_drop:nth=2 severs the connection at the second reply
  // write; the server must shrug it off and keep serving new clients.
  TcpServe S({"--faults", "serve.conn_drop:nth=2"});
  ASSERT_TRUE(S.alive());

  Client A(S.port());
  ASSERT_TRUE(A.connected());
  ASSERT_TRUE(A.sendLine(request("d1")));
  EXPECT_TRUE(contains(A.recvLine(), "\"id\":\"d1\""));
  ASSERT_TRUE(A.sendLine(request("d2")));
#if CFV_FAULTS
  // The second reply's write fires the fault: connection gone.
  EXPECT_EQ("", A.recvLine(5000));
#else
  EXPECT_TRUE(contains(A.recvLine(), "\"id\":\"d2\""));
#endif

  Client B(S.port());
  ASSERT_TRUE(B.connected());
  ASSERT_TRUE(B.sendLine(request("after")));
  const std::string R = B.recvLine();
  EXPECT_TRUE(contains(R, "\"id\":\"after\"")) << R;
  EXPECT_TRUE(contains(R, "\"ok\":true")) << R;

  ASSERT_TRUE(B.sendLine("{\"cmd\":\"shutdown\"}"));
  EXPECT_TRUE(contains(B.recvLine(), "\"bye\":true"));
  EXPECT_EQ(0, S.waitExit());
}

} // namespace

#else
#include "gtest/gtest.h"
TEST(CfvServeTcp, SkippedOffLinux) { GTEST_SKIP(); }
#endif // __linux__
