//===-- service/Protocol.cpp - NDJSON line classification -----------------===//

#include "service/Protocol.h"

#include "service/Json.h"

namespace cfv {
namespace service {

const char *lineKindName(LineKind K) {
  switch (K) {
  case LineKind::Empty:
    return "empty";
  case LineKind::HttpGet:
    return "http_get";
  case LineKind::Shutdown:
    return "shutdown";
  case LineKind::Stats:
    return "stats";
  case LineKind::Metrics:
    return "metrics";
  case LineKind::Backends:
    return "backends";
  case LineKind::UnknownCmd:
    return "unknown_cmd";
  case LineKind::Malformed:
    return "malformed";
  case LineKind::BadRequest:
    return "bad_request";
  case LineKind::Request:
    return "request";
  }
  return "unknown";
}

ClassifiedLine classifyLine(const std::string &Line) {
  ClassifiedLine C;
  if (Line.empty())
    return C;
  if (Line.rfind("GET ", 0) == 0) {
    C.Kind = LineKind::HttpGet;
    return C;
  }
  const Expected<json::Value> V = json::parse(Line);
  if (!V.ok()) {
    // A malformed line is a request-level failure, not a server failure.
    C.Kind = LineKind::Malformed;
    C.Error = V.status();
    return C;
  }
  C.Id = V->getString("id", "");
  const std::string Cmd = V->getString("cmd", "");
  if (Cmd == "shutdown") {
    C.Kind = LineKind::Shutdown;
    return C;
  }
  if (Cmd == "stats") {
    C.Kind = LineKind::Stats;
    return C;
  }
  if (Cmd == "metrics") {
    C.Kind = LineKind::Metrics;
    return C;
  }
  if (Cmd == "backends") {
    C.Kind = LineKind::Backends;
    return C;
  }
  if (!Cmd.empty()) {
    C.Kind = LineKind::UnknownCmd;
    C.Error = Status::error(ErrorCode::InvalidArgument,
                            "unknown cmd '" + Cmd + "'");
    return C;
  }
  Expected<ServeRequest> R = parseRequest(*V);
  if (!R.ok()) {
    C.Kind = LineKind::BadRequest;
    C.Error = R.status();
    return C;
  }
  C.Kind = LineKind::Request;
  C.Request = *R;
  return C;
}

} // namespace service
} // namespace cfv
