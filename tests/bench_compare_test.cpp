//===- tests/bench_compare_test.cpp - Perf-gate CLI contract --------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Drives the cfv_bench_compare binary (path injected as
// CFV_BENCH_COMPARE_BIN by CMake) against golden fixture files: matched
// and improved rows exit 0, regressions past the threshold exit 1,
// missing/renamed/new rows warn to stderr without failing, and
// malformed input or a bench-suite schema mismatch exits 2 -- the full
// contract the CI perf-regression job depends on.
//
//===----------------------------------------------------------------------===//

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/wait.h>

namespace {

#ifndef CFV_BENCH_COMPARE_BIN
#error "CFV_BENCH_COMPARE_BIN must be defined to the cfv_bench_compare path"
#endif

struct CliResult {
  int Code = -1;
  std::string Stdout;
  std::string Stderr;
};

/// Runs `cfv_bench_compare <Args>`, capturing both streams.
CliResult runCompare(const std::string &Args) {
  const std::string Out = ::testing::TempDir() + "bench_compare_out.txt";
  const std::string Err = ::testing::TempDir() + "bench_compare_err.txt";
  const std::string Cmd = std::string("\"") + CFV_BENCH_COMPARE_BIN + "\" " +
                          Args + " >" + Out + " 2>" + Err;
  CliResult R;
  const int Rc = std::system(Cmd.c_str());
  if (Rc != -1 && WIFEXITED(Rc))
    R.Code = WEXITSTATUS(Rc);
  auto slurp = [](const std::string &Path, std::string &Into) {
    if (std::FILE *F = std::fopen(Path.c_str(), "r")) {
      char Buf[4096];
      std::size_t N;
      while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
        Into.append(Buf, N);
      std::fclose(F);
    }
    std::remove(Path.c_str());
  };
  slurp(Out, R.Stdout);
  slurp(Err, R.Stderr);
  return R;
}

/// Writes a fixture BENCH file and returns its path.
std::string writeFixture(const char *Name, const std::string &Body) {
  const std::string Path = ::testing::TempDir() + Name;
  std::FILE *F = std::fopen(Path.c_str(), "w");
  EXPECT_NE(F, nullptr) << Path;
  if (F) {
    std::fputs(Body.c_str(), F);
    std::fclose(F);
  }
  return Path;
}

/// A minimal well-formed BENCH document around the given result rows.
std::string benchDoc(const std::string &Rows, int Schema = 1,
                     const char *Rev = "abc1234") {
  return std::string("{\"rev\":\"") + Rev + "\",\"schema\":" +
         std::to_string(Schema) + ",\"suite_rev\":\"abc1234\",\"results\":[" +
         Rows + "]}\n";
}

} // namespace

TEST(BenchCompare, IdenticalFilesPass) {
  const std::string Rows =
      "{\"bench\":\"scale_numa\",\"app\":\"pagerank\",\"numa\":\"off\","
      "\"threads\":4,\"compute_seconds\":0.5},"
      "{\"bench\":\"serve\",\"clients\":8,\"p99_seconds\":0.01,"
      "\"requests_per_second\":5000}";
  const std::string Base = writeFixture("bc_base.json", benchDoc(Rows));
  const std::string Cur = writeFixture("bc_cur.json", benchDoc(Rows, 1, "def5678"));
  const CliResult R = runCompare(Base + " " + Cur);
  EXPECT_EQ(R.Code, 0) << R.Stdout << R.Stderr;
  EXPECT_NE(R.Stdout.find("2 compared"), std::string::npos) << R.Stdout;
}

TEST(BenchCompare, ImprovementAlwaysPasses) {
  const std::string Base = writeFixture(
      "bc_imp_base.json",
      benchDoc("{\"bench\":\"b\",\"name\":\"k\",\"real_ns\":1000}"));
  // 10x faster: far past any threshold, in the good direction.
  const std::string Cur = writeFixture(
      "bc_imp_cur.json",
      benchDoc("{\"bench\":\"b\",\"name\":\"k\",\"real_ns\":100}"));
  const CliResult R = runCompare(Base + " " + Cur + " --verbose");
  EXPECT_EQ(R.Code, 0) << R.Stdout << R.Stderr;
  EXPECT_NE(R.Stdout.find("1 improved"), std::string::npos) << R.Stdout;
}

TEST(BenchCompare, RegressionPastThresholdExitsOne) {
  const std::string Base = writeFixture(
      "bc_reg_base.json",
      benchDoc("{\"bench\":\"b\",\"name\":\"k\",\"real_ns\":1000}"));
  const std::string Cur = writeFixture(
      "bc_reg_cur.json",
      benchDoc("{\"bench\":\"b\",\"name\":\"k\",\"real_ns\":2000}"));
  const CliResult R = runCompare(Base + " " + Cur);
  EXPECT_EQ(R.Code, 1) << R.Stdout << R.Stderr;
  EXPECT_NE(R.Stdout.find("REGRESSION"), std::string::npos) << R.Stdout;

  // Within the default 20% noise allowance: passes.
  const std::string Mild = writeFixture(
      "bc_reg_mild.json",
      benchDoc("{\"bench\":\"b\",\"name\":\"k\",\"real_ns\":1100}"));
  EXPECT_EQ(runCompare(Base + " " + Mild).Code, 0);
  // A tighter --threshold turns the same delta into a failure.
  EXPECT_EQ(runCompare("--threshold 5 " + Base + " " + Mild).Code, 1);
  // A per-metric override can relax the hard regression back to passing.
  EXPECT_EQ(
      runCompare("--metric real_ns=150 " + Base + " " + Cur).Code, 0);
}

TEST(BenchCompare, HigherIsBetterMetricsGateInTheRightDirection) {
  const std::string Base = writeFixture(
      "bc_hib_base.json",
      benchDoc("{\"bench\":\"serve\",\"clients\":8,"
               "\"requests_per_second\":5000}"));
  // Throughput halved: a regression even though the number went "down".
  const std::string Worse = writeFixture(
      "bc_hib_worse.json",
      benchDoc("{\"bench\":\"serve\",\"clients\":8,"
               "\"requests_per_second\":2500}"));
  EXPECT_EQ(runCompare(Base + " " + Worse).Code, 1);
  // Throughput doubled: an improvement.
  const std::string Better = writeFixture(
      "bc_hib_better.json",
      benchDoc("{\"bench\":\"serve\",\"clients\":8,"
               "\"requests_per_second\":10000}"));
  EXPECT_EQ(runCompare(Base + " " + Better).Code, 0);
}

TEST(BenchCompare, MissingAndNewRowsWarnButPass) {
  const std::string Base = writeFixture(
      "bc_rows_base.json",
      benchDoc("{\"bench\":\"b\",\"name\":\"gone\",\"real_ns\":10},"
               "{\"bench\":\"b\",\"name\":\"stays\",\"real_ns\":10}"));
  const std::string Cur = writeFixture(
      "bc_rows_cur.json",
      benchDoc("{\"bench\":\"b\",\"name\":\"stays\",\"real_ns\":10},"
               "{\"bench\":\"b\",\"name\":\"brand_new\",\"real_ns\":10}"));
  const CliResult R = runCompare(Base + " " + Cur);
  EXPECT_EQ(R.Code, 0) << R.Stdout << R.Stderr;
  EXPECT_NE(R.Stderr.find("row missing from current"), std::string::npos)
      << R.Stderr;
  EXPECT_NE(R.Stderr.find("new row not in baseline"), std::string::npos)
      << R.Stderr;
  // Only the shared row was actually compared.
  EXPECT_NE(R.Stdout.find("1 compared"), std::string::npos) << R.Stdout;
}

TEST(BenchCompare, RowsPairByKeyNotPosition) {
  // Same rows, opposite order: must still pair correctly (no regression).
  const std::string Base = writeFixture(
      "bc_order_base.json",
      benchDoc("{\"bench\":\"b\",\"name\":\"fast\",\"real_ns\":10},"
               "{\"bench\":\"b\",\"name\":\"slow\",\"real_ns\":10000}"));
  const std::string Cur = writeFixture(
      "bc_order_cur.json",
      benchDoc("{\"bench\":\"b\",\"name\":\"slow\",\"real_ns\":10000},"
               "{\"bench\":\"b\",\"name\":\"fast\",\"real_ns\":10}"));
  EXPECT_EQ(runCompare(Base + " " + Cur).Code, 0);
}

TEST(BenchCompare, RowsWithoutSharedMetricWarnButPass) {
  const std::string Base = writeFixture(
      "bc_nometric_base.json",
      benchDoc("{\"bench\":\"b\",\"name\":\"k\",\"real_ns\":100}"));
  const std::string Cur = writeFixture(
      "bc_nometric_cur.json",
      benchDoc("{\"bench\":\"b\",\"name\":\"k\",\"speedup\":2.0}"));
  const CliResult R = runCompare(Base + " " + Cur);
  EXPECT_EQ(R.Code, 0) << R.Stdout << R.Stderr;
  EXPECT_NE(R.Stderr.find("no comparable metric"), std::string::npos)
      << R.Stderr;
}

TEST(BenchCompare, MalformedInputExitsTwo) {
  const std::string Good = writeFixture(
      "bc_good.json", benchDoc("{\"bench\":\"b\",\"real_ns\":1}"));
  const std::string Garbage = writeFixture("bc_garbage.json", "not json at all\n");
  EXPECT_EQ(runCompare(Garbage + " " + Good).Code, 2);
  EXPECT_EQ(runCompare(Good + " " + Garbage).Code, 2);
  // Valid JSON but no "results" array.
  const std::string NoResults =
      writeFixture("bc_noresults.json", "{\"rev\":\"x\",\"schema\":1}\n");
  EXPECT_EQ(runCompare(NoResults + " " + Good).Code, 2);
  EXPECT_EQ(runCompare(Good + " /nonexistent/bench.json").Code, 2);
}

TEST(BenchCompare, SchemaMismatchExitsTwo) {
  const std::string Rows = "{\"bench\":\"b\",\"real_ns\":1}";
  const std::string S1 = writeFixture("bc_s1.json", benchDoc(Rows, 1));
  const std::string S2 = writeFixture("bc_s2.json", benchDoc(Rows, 2));
  const CliResult R = runCompare(S1 + " " + S2);
  EXPECT_EQ(R.Code, 2) << R.Stdout << R.Stderr;
  EXPECT_NE(R.Stderr.find("schema mismatch"), std::string::npos) << R.Stderr;
  // Same schema on both sides: fine.
  EXPECT_EQ(runCompare(S2 + " " + S2).Code, 0);
}

TEST(BenchCompare, UsageErrorsExitTwo) {
  EXPECT_EQ(runCompare("").Code, 2);          // no files
  EXPECT_EQ(runCompare("one.json").Code, 2);  // one file
  EXPECT_EQ(runCompare("--no-such-flag a b").Code, 2);
  EXPECT_EQ(runCompare("--metric real_ns a b").Code, 2); // want NAME=PCT
  EXPECT_EQ(runCompare("--help").Code, 0);
}
