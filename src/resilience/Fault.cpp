//===- resilience/Fault.cpp - Deterministic fault injection ---------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "resilience/Fault.h"

#include "obs/Metrics.h"
#include "util/Env.h"

#include <cstdlib>

namespace cfv {
namespace fault {

const char *pointName(Point P) {
  switch (P) {
  case Point::IoReadError:
    return "io.read_error";
  case Point::IoShortRead:
    return "io.short_read";
  case Point::CacheAllocFail:
    return "cache.alloc_fail";
  case Point::CacheCorruptArtifact:
    return "cache.corrupt_artifact";
  case Point::SchedWorkerStall:
    return "sched.worker_stall";
  case Point::KernelSlowTile:
    return "kernel.slow_tile";
  case Point::ServeConnDrop:
    return "serve.conn_drop";
  case Point::IoMapFail:
    return "io.map_fail";
  }
  return "unknown";
}

Expected<Point> parsePoint(const std::string &Name) {
  for (int I = 0; I < kNumPoints; ++I) {
    const Point P = static_cast<Point>(I);
    if (Name == pointName(P))
      return P;
  }
  std::string Valid;
  for (int I = 0; I < kNumPoints; ++I) {
    if (I)
      Valid += ", ";
    Valid += pointName(static_cast<Point>(I));
  }
  return Status::error(ErrorCode::InvalidArgument,
                       "unknown fault point '" + Name + "' (valid: " + Valid +
                           ")");
}

namespace {

/// splitmix64 finalizer: a full-avalanche mix of one 64-bit word.  The
/// firing decision for hit k of point p under seed s hashes (s, p, k)
/// through this, so it is a pure function of the schedule -- identical
/// across runs, threads, and evaluation interleavings.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

Expected<Rule> parseRule(const std::string &Clause, const std::string &Spec) {
  Rule R;
  if (Clause == "always") {
    R.M = Rule::Mode::Always;
    return R;
  }
  if (Clause == "off") {
    R.M = Rule::Mode::Off;
    return R;
  }
  const auto Eq = Clause.find('=');
  const std::string Key = Clause.substr(0, Eq);
  const std::string Val = Eq == std::string::npos ? "" : Clause.substr(Eq + 1);
  auto bad = [&](const std::string &Why) -> Status {
    return Status::error(ErrorCode::InvalidArgument,
                         "bad fault schedule '" + Clause + "' in '" + Spec +
                             "': " + Why);
  };
  if (Key == "p") {
    char *End = nullptr;
    const double P = std::strtod(Val.c_str(), &End);
    if (Val.empty() || *End != '\0' || P < 0.0 || P > 1.0)
      return bad("p wants a probability in [0, 1]");
    R.M = Rule::Mode::Probability;
    R.P = P;
    return R;
  }
  if (Key == "nth") {
    char *End = nullptr;
    const unsigned long long N = std::strtoull(Val.c_str(), &End, 10);
    if (Val.empty() || *End != '\0' || N == 0)
      return bad("nth wants a 1-based hit index");
    R.M = Rule::Mode::Nth;
    R.Nth = N;
    return R;
  }
  if (Key == "burst") {
    // burst=<len>@<start>, e.g. burst=10@100 fires hits 100..109.
    const auto At = Val.find('@');
    if (At == std::string::npos)
      return bad("burst wants <len>@<start>");
    char *End = nullptr;
    const unsigned long long Len = std::strtoull(Val.c_str(), &End, 10);
    if (End != Val.c_str() + At || Len == 0)
      return bad("burst wants a positive length");
    const std::string StartText = Val.substr(At + 1);
    const unsigned long long Start = std::strtoull(StartText.c_str(), &End, 10);
    if (StartText.empty() || *End != '\0' || Start == 0)
      return bad("burst wants a 1-based start hit");
    R.M = Rule::Mode::Burst;
    R.Start = Start;
    R.Len = Len;
    return R;
  }
  return bad("schedule wants always | off | p=<prob> | nth=<k> | "
             "burst=<n>@<k>");
}

} // namespace

Expected<Plan> parsePlan(const std::string &Spec, uint64_t Seed) {
  Plan Result;
  Result.Seed = Seed;
  std::size_t Pos = 0;
  while (Pos < Spec.size()) {
    std::size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    const std::string Item = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Item.empty())
      continue;
    const auto Colon = Item.find(':');
    if (Colon == std::string::npos)
      return Status::error(ErrorCode::InvalidArgument,
                           "bad fault clause '" + Item + "' in '" + Spec +
                               "': want <point>:<schedule>");
    const Expected<Point> P = parsePoint(Item.substr(0, Colon));
    if (!P.ok())
      return P.status();
    const Expected<Rule> R = parseRule(Item.substr(Colon + 1), Spec);
    if (!R.ok())
      return R.status();
    Result.Rules[static_cast<int>(*P)] = *R;
  }
  return Result;
}

#if CFV_FAULTS

Injector &Injector::instance() {
  static Injector I;
  return I;
}

Injector::Injector() {
  // Ambient arming: CFV_FAULTS in the environment configures every tool
  // without plumbing.  A malformed spec is a loud note and a disarmed
  // injector -- never a partially-armed one.
  const char *Spec = std::getenv("CFV_FAULTS");
  if (!Spec || !*Spec)
    return;
  const uint64_t Seed = static_cast<uint64_t>(
      env::intVar("CFV_SEED", 0xCAFEBABELL, INT64_MIN, INT64_MAX));
  const Expected<Plan> P = parsePlan(Spec, Seed);
  if (!P.ok()) {
    std::fprintf(stderr, "cfv: ignoring CFV_FAULTS: %s\n",
                 P.status().message().c_str());
    return;
  }
  configure(*P);
}

void Injector::configure(const Plan &P) {
  // Disarm first so racing shouldFire() calls see a consistent
  // (disarmed) view while the rules swap.
  Armed.store(false, std::memory_order_release);
  Seed = P.Seed;
  for (int I = 0; I < kNumPoints; ++I) {
    Points[I].R = P.Rules[I];
    Points[I].Evals.store(0, std::memory_order_relaxed);
    Points[I].Fires.store(0, std::memory_order_relaxed);
  }
  Armed.store(P.anyArmed(), std::memory_order_release);
}

void Injector::disarm() { Armed.store(false, std::memory_order_release); }

bool Injector::shouldFire(Point P) {
  PointState &S = Points[static_cast<int>(P)];
  const Rule &R = S.R;
  if (R.M == Rule::Mode::Off)
    return false;
  // 1-based hit index: the k-th evaluation of this point process-wide.
  const uint64_t Hit = S.Evals.fetch_add(1, std::memory_order_relaxed) + 1;
  bool Fire = false;
  switch (R.M) {
  case Rule::Mode::Off:
    break;
  case Rule::Mode::Always:
    Fire = true;
    break;
  case Rule::Mode::Probability: {
    // Deterministic coin: hash (seed, point, hit) to a uniform in
    // [0, 1).  Same schedule, same decisions, regardless of timing.
    const uint64_t H =
        mix64(Seed ^ (static_cast<uint64_t>(P) << 56) ^ (Hit * 0x9e37ULL));
    const double U =
        static_cast<double>(H >> 11) * (1.0 / 9007199254740992.0);
    Fire = U < R.P;
    break;
  }
  case Rule::Mode::Nth:
    Fire = Hit == R.Nth;
    break;
  case Rule::Mode::Burst:
    Fire = Hit >= R.Start && Hit < R.Start + R.Len;
    break;
  }
  if (Fire) {
    S.Fires.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter &Injected = obs::MetricsRegistry::instance().counter(
        "cfv_faults_injected_total", "",
        "Faults injected by the resilience fault injector");
    Injected.inc();
  }
  return Fire;
}

uint64_t Injector::evaluated(Point P) const {
  return Points[static_cast<int>(P)].Evals.load(std::memory_order_relaxed);
}

uint64_t Injector::fired(Point P) const {
  return Points[static_cast<int>(P)].Fires.load(std::memory_order_relaxed);
}

uint64_t Injector::totalFired() const {
  uint64_t Sum = 0;
  for (const PointState &S : Points)
    Sum += S.Fires.load(std::memory_order_relaxed);
  return Sum;
}

#endif // CFV_FAULTS

} // namespace fault
} // namespace cfv
