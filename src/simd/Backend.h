//===- simd/Backend.h - SIMD backend selection ------------------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backend tags for the 16-lane SIMD abstraction.  Every primitive in
/// src/simd and every algorithm in src/core is templated on a backend:
///
///   - backend::Avx512  uses AVX-512F/CD intrinsics, the exact instruction
///     sequences the paper describes (vpconflictd, masked gather/scatter,
///     masked horizontal reductions).  Only defined when the translation
///     unit is compiled with AVX-512F and AVX-512CD enabled.
///   - backend::Scalar  is a bit-exact emulation of the same semantics in
///     portable C++.  It documents what each intrinsic does, makes the
///     library usable on any machine, and serves as the differential
///     oracle for the test suite.
///
/// The paper targets 512-bit vectors of 32-bit elements, hence a fixed
/// width of 16 lanes (§3.4: "a SIMD vector can accommodate 16 integers or
/// single-precision floats").
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SIMD_BACKEND_H
#define CFV_SIMD_BACKEND_H

#if defined(__AVX512F__) && defined(__AVX512CD__)
#define CFV_HAVE_AVX512 1
#include <immintrin.h>
#else
#define CFV_HAVE_AVX512 0
#endif

namespace cfv {
namespace simd {

/// Number of 32-bit lanes in one vector.
inline constexpr int kLanes = 16;

namespace backend {

/// Portable emulation backend; always available.
struct Scalar {};

#if CFV_HAVE_AVX512
/// Native AVX-512 backend (requires -mavx512f -mavx512cd or equivalent).
struct Avx512 {};
#endif

} // namespace backend

#if CFV_HAVE_AVX512
/// The fastest backend available in this build.
using NativeBackend = backend::Avx512;
#else
using NativeBackend = backend::Scalar;
#endif

} // namespace simd
} // namespace cfv

#endif // CFV_SIMD_BACKEND_H
