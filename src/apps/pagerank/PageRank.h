//===- apps/pagerank/PageRank.h - PageRank, five versions -------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Edge-centric PageRank (Figure 1's inner loop) in the five versions of
/// the paper's Figure 8: serial on original and on tiled data,
/// inspector/executor (tiling-and-grouping), conflict-masking, and
/// in-vector reduction.  The irregular reduction is the per-edge
/// summation sum[ny] += rank[nx] / nneighbor[nx]; each version resolves
/// the write conflicts its own way, and the result records the per-phase
/// times (computing / tiling / grouping) plus the metrics the paper
/// annotates (SIMD utilization for mask, mean D1 for invec).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_APPS_PAGERANK_PAGERANK_H
#define CFV_APPS_PAGERANK_PAGERANK_H

#include "core/RunOptions.h"
#include "graph/Graph.h"
#include "util/Stats.h"

namespace cfv {
namespace apps {

/// The five execution strategies of Figure 8.
enum class PrVersion {
  NontilingSerial,
  TilingSerial,
  TilingGrouping,
  TilingMask,
  TilingInvec,
};

/// Short id matching the paper's legend (e.g. "tiling_and_invec").
const char *versionName(PrVersion V);

struct PageRankOptions : core::RunOptions {
  PageRankOptions() { MaxIterations = 200; }

  float Damping = 0.85f;
  /// Relative L1 rank change below which iteration stops (the paper's
  /// "change of rank values being less than 0.1%").
  float Tolerance = 1e-3f;
  int TileBlockBits = 16;
};

struct PageRankResult {
  AlignedVector<float> Rank;
  int Iterations = 0;
  double ComputeSeconds = 0.0;
  double TilingSeconds = 0.0;
  double GroupingSeconds = 0.0;
  /// SIMD utilization of the conflict-masking loop (1.0 otherwise).
  double SimdUtil = 1.0;
  /// Mean distinct-conflicting-lane count observed by in-vector
  /// reduction's adaptive sampler (0 otherwise).
  double MeanD1 = 0.0;
  /// Whether the adaptive policy escalated to Algorithm 2.
  bool UsedAlg2 = false;
  /// Whether RunOptions::DeadlineSteadySeconds stopped iteration early.
  bool TimedOut = false;
  /// Per-pass D1 / useful-lane distributions (empty unless the version
  /// that ran records them and observability is compiled in).
  LaneHistogram D1Hist;
  LaneHistogram UtilHist;
  /// Tiles dispatched per pattern class, indexed by pattern::TileClass
  /// order (ConflictFree, Monotone, SmallAlphabet, HotBucket, General).
  /// All zero when classification was off or the version does not
  /// dispatch on patterns.  A plain array keeps this header below the
  /// pattern layer.
  int64_t PatternTiles[5] = {};

  double totalSeconds() const {
    return ComputeSeconds + TilingSeconds + GroupingSeconds;
  }
};

/// Runs PageRank on \p G with strategy \p V until convergence.
PageRankResult runPageRank(const graph::EdgeList &G, PrVersion V,
                           const PageRankOptions &O = {});

} // namespace apps
} // namespace cfv

#endif // CFV_APPS_PAGERANK_PAGERANK_H
