//===- core/Dispatch.h - Runtime backend dispatch ---------------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime selection between the compiled-in kernel sets.  The fat
/// binary carries a baseline (scalar-backend) tier and, when the
/// compiler supported them, AVX2 and AVX-512 instantiations of every
/// application kernel (core/Variant.h); this module probes the CPU once
/// (simd/CpuId.h) and binds the public apps API to the best set that can
/// actually execute.
///
/// Selection precedence:
///   1. setBackend()             -- programmatic override (cfv_run's
///                                  --backend flag, tests)
///   2. CFV_BACKEND environment  -- "scalar" | "avx2" | "avx512"
///   3. best available           -- avx512 > avx2 > scalar, gated on the
///                                  compiled tiers and the CPU/OS probe
///
/// Requesting a tier that cannot run degrades gracefully to the next
/// best available one, with a one-line note to stderr (once per process)
/// instead of the SIGILL a compile-time-selected binary produces on a
/// lesser machine.  `cfv_run --backend list` and the serve "backends"
/// verb surface the same information programmatically (backendInfos()).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_CORE_DISPATCH_H
#define CFV_CORE_DISPATCH_H

#include "apps/agg/Aggregation.h"
#include "apps/frontier/FrontierEngine.h"
#include "apps/mesh/MeshSolver.h"
#include "apps/moldyn/Moldyn.h"
#include "apps/pagerank/PageRank.h"
#include "apps/pagerank/PageRank64.h"
#include "apps/rbk/ReduceByKey.h"
#include "apps/spmv/Spmv.h"
#include "core/RunOptions.h"
#include "util/Status.h"

#include <string>
#include <vector>

namespace cfv {
namespace core {

// BackendKind lives in core/RunOptions.h (shared with the cfv::run
// facade); re-exported here so existing includers keep compiling.

/// "scalar" / "avx2" / "avx512".
const char *backendName(BackendKind K);

/// Parses a user-supplied backend name (CFV_BACKEND, --backend).
Expected<BackendKind> parseBackendKind(const std::string &Name);

/// One function pointer per dispatched application entry point, bound to
/// a single backend's kernel set.
struct DispatchTable {
  BackendKind Kind;
  const char *Name;
  int Lanes; ///< 32-bit lanes per vector of this kernel set

  apps::PageRankResult (*PageRank)(const graph::EdgeList &, apps::PrVersion,
                                   const apps::PageRankOptions &);
  apps::PageRank64Result (*PageRank64)(const graph::EdgeList &,
                                       apps::Pr64Version,
                                       const apps::PageRankOptions &);
  apps::FrontierResult (*Frontier)(const graph::EdgeList &, apps::FrApp,
                                   apps::FrVersion,
                                   const apps::FrontierOptions &);
  void (*MoldynForces)(apps::MoldynSim &, apps::MdVersion);
  apps::AggResult (*Aggregation)(const int32_t *, const float *, int64_t,
                                 int64_t, apps::AggVersion,
                                 const core::RunOptions &);
  int64_t (*ReduceByKeyInvec)(const int32_t *, const float *, int64_t,
                              int32_t *, float *);
  apps::RbkResult (*RbkComparison)(const graph::EdgeList &, int,
                                   const core::RunOptions &);
  apps::SpmvResult (*Spmv)(const graph::EdgeList &, const float *,
                           apps::SpmvVersion, int, const core::RunOptions &);
  apps::MeshRunResult (*MeshDiffusion)(const apps::Mesh &, const float *,
                                       int, float, apps::MeshVersion,
                                       const core::RunOptions &);
};

/// True when the AVX-512 kernel set was compiled in AND the host CPU/OS
/// can execute it.
bool avx512Available();

/// Why avx512Available() is false ("kernels not compiled in", "CPU lacks
/// AVX-512CD", ...); nullptr when it is available.
const char *avx512UnavailableReason();

/// True when the AVX2 kernel set (synthesized conflict detection) was
/// compiled in AND the host CPU/OS can execute it.
bool avx2Available();

/// Why avx2Available() is false; nullptr when it is available.
const char *avx2UnavailableReason();

/// One row of the backend matrix: what a tier is, whether this binary
/// carries it, and whether this host can run it.  Powers `cfv_run
/// --backend list` and the serve {"cmd":"backends"} verb.
struct BackendInfo {
  BackendKind Kind;
  const char *Name;         ///< "scalar" / "avx2" / "avx512"
  int Lanes;                ///< 32-bit lanes per vector
  const char *Conflict;     ///< conflict-detection mechanism
  bool Compiled;            ///< tier present in this binary
  bool Available;           ///< compiled AND executable on this host
  const char *Unavailable;  ///< reason when !Available, else nullptr
};

/// The full tier matrix, scalar first.  Every known tier is listed even
/// when not compiled in, so callers can render a complete picture.
std::vector<BackendInfo> backendInfos();

/// The table for \p K.  Requesting a tier that is unavailable degrades
/// to the next best available one (avx512 -> avx2 -> scalar) and emits a
/// one-time stderr note.
const DispatchTable &dispatchFor(BackendKind K);

/// Pure resolution helper (exposed for tests): applies the precedence
/// rules to an explicit CFV_BACKEND value.  \p EnvValue may be null.
/// When the value is unparseable, *Note receives a diagnostic and the
/// automatic choice (best of the available tiers) is returned.
BackendKind resolveBackendKind(const char *EnvValue, bool HaveAvx512,
                               bool HaveAvx2, std::string *Note);

/// The process-wide selected table (cached after first resolution).
const DispatchTable &dispatch();

/// Overrides the selection (cfv_run's --backend flag, tests); takes
/// effect on the next dispatch() call.
void setBackend(BackendKind K);

/// Drops any override and the cached resolution (tests).
void resetBackendForTest();

} // namespace core
} // namespace cfv

#endif // CFV_CORE_DISPATCH_H
