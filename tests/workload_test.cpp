//===- tests/workload_test.cpp - Skewed key distributions ----------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "workload/KeyGen.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <vector>

using namespace cfv;
using namespace cfv::workload;

namespace {

std::vector<int64_t> histogram(const AlignedVector<int32_t> &Keys,
                               int32_t C) {
  std::vector<int64_t> H(C, 0);
  for (int32_t K : Keys) {
    EXPECT_GE(K, 0);
    EXPECT_LT(K, C);
    ++H[K];
  }
  return H;
}

} // namespace

class KeyRanges : public ::testing::TestWithParam<KeyDist> {};

TEST_P(KeyRanges, AllKeysInDomain) {
  for (const int32_t C : {1, 2, 64, 100000}) {
    const auto Keys = genKeys(GetParam(), 5000, C, 42);
    histogram(Keys, C); // asserts bounds
  }
}

TEST_P(KeyRanges, Deterministic) {
  const auto A = genKeys(GetParam(), 1000, 128, 7);
  const auto B = genKeys(GetParam(), 1000, 128, 7);
  EXPECT_EQ(A, B);
  const auto C = genKeys(GetParam(), 1000, 128, 8);
  EXPECT_NE(A, C);
}

INSTANTIATE_TEST_SUITE_P(AllDists, KeyRanges,
                         ::testing::Values(KeyDist::HeavyHitter,
                                           KeyDist::Zipf,
                                           KeyDist::MovingCluster,
                                           KeyDist::Uniform),
                         [](const auto &Info) {
                           std::string N = distName(Info.param);
                           for (char &Ch : N)
                             if (Ch == ' ')
                               Ch = '_';
                           return N;
                         });

TEST(HeavyHitter, HotKeyTakesHalfTheRows) {
  const int64_t N = 100000;
  const auto Keys = genKeys(KeyDist::HeavyHitter, N, 1024, 3);
  const auto H = histogram(Keys, 1024);
  EXPECT_NEAR(static_cast<double>(H[0]) / N, 0.5, 0.01);
  // Remaining keys roughly uniform.
  const double Rest = static_cast<double>(N - H[0]) / 1023.0;
  for (int32_t K = 1; K < 1024; ++K)
    ASSERT_NEAR(H[K], Rest, Rest * 0.9 + 10.0) << "key " << K;
}

TEST(Zipf, FrequenciesFollowPowerLaw) {
  const int64_t N = 200000;
  const int32_t C = 1000;
  const auto H = histogram(genKeys(KeyDist::Zipf, N, C, 4), C);
  // With s = 0.5, f(1)/f(100) = sqrt(100) = 10.
  EXPECT_NEAR(static_cast<double>(H[0]) / H[99], 10.0, 4.0);
  // Head heavier than tail on average.
  int64_t Head = 0, Tail = 0;
  for (int32_t K = 0; K < 100; ++K)
    Head += H[K];
  for (int32_t K = C - 100; K < C; ++K)
    Tail += H[K];
  EXPECT_GT(Head, Tail * 2);
}

TEST(MovingCluster, KeysStayInSlidingWindow) {
  const int64_t N = 64000;
  const int32_t C = 4096;
  const auto Keys = genKeys(KeyDist::MovingCluster, N, C, 5);
  for (int64_t I = 0; I < N; ++I) {
    const double Frac = static_cast<double>(I) / (N - 1);
    const int32_t Base = static_cast<int32_t>(Frac * (C - 64));
    ASSERT_GE(Keys[I], Base);
    ASSERT_LT(Keys[I], Base + 64);
  }
  // The window really moves: late keys exceed early ones.
  EXPECT_LT(Keys[0], 64);
  EXPECT_GE(Keys[N - 1], C - 64);
}

TEST(MovingCluster, SmallDomainDegeneratesGracefully) {
  const auto Keys = genKeys(KeyDist::MovingCluster, 1000, 16, 6);
  histogram(Keys, 16);
}

TEST(Values, InUnitIntervalAndDeterministic) {
  const auto A = genValues(1000, 1);
  const auto B = genValues(1000, 1);
  EXPECT_EQ(A, B);
  for (float V : A) {
    ASSERT_GE(V, 0.0f);
    ASSERT_LT(V, 1.0f);
  }
}
