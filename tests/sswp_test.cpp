//===- tests/sswp_test.cpp - Wave-frontier SSWP --------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/frontier/FrontierEngine.h"

#include "graph/Generators.h"

#include "gtest/gtest.h"

#include <cmath>
#include <limits>
#include <queue>

using namespace cfv;
using namespace cfv::apps;
using namespace cfv::graph;

namespace {

/// Widest-path reference: Dijkstra variant maximizing the bottleneck.
AlignedVector<float> widestPath(const EdgeList &G, int32_t Source) {
  const Csr Adj = buildCsr(G);
  AlignedVector<float> Width(G.NumNodes, 0.0f);
  Width[Source] = std::numeric_limits<float>::infinity();
  using Item = std::pair<float, int32_t>;
  std::priority_queue<Item> Q; // max-heap on width
  Q.push({Width[Source], Source});
  while (!Q.empty()) {
    const auto [W, V] = Q.top();
    Q.pop();
    if (W < Width[V])
      continue;
    for (int64_t E = Adj.RowBegin[V]; E < Adj.RowBegin[V + 1]; ++E) {
      const float Nw = std::min(W, Adj.Weight[E]);
      if (Nw > Width[Adj.Col[E]]) {
        Width[Adj.Col[E]] = Nw;
        Q.push({Nw, Adj.Col[E]});
      }
    }
  }
  return Width;
}

constexpr FrVersion kAllVersions[] = {
    FrVersion::NontilingSerial, FrVersion::NontilingMask,
    FrVersion::NontilingInvec, FrVersion::TilingGrouping};

} // namespace

class SswpVersions : public ::testing::TestWithParam<FrVersion> {};

TEST_P(SswpVersions, MatchesReferenceOnRandomGraphs) {
  for (const uint64_t Seed : {10u, 11u}) {
    const EdgeList G = genUniform(9, 4000, Seed, 64.0f);
    const auto Want = widestPath(G, 0);
    const FrontierResult R = runFrontier(G, FrApp::Sswp, GetParam());
    for (int32_t V = 0; V < G.NumNodes; ++V)
      ASSERT_EQ(R.Value[V], Want[V]) << "seed " << Seed << " vertex " << V;
  }
}

TEST_P(SswpVersions, MatchesReferenceOnSkewedGraph) {
  const EdgeList G = genRmat(10, 10000, 12, 64.0f);
  const auto Want = widestPath(G, 0);
  const FrontierResult R = runFrontier(G, FrApp::Sswp, GetParam());
  for (int32_t V = 0; V < G.NumNodes; ++V)
    ASSERT_EQ(R.Value[V], Want[V]);
}

TEST_P(SswpVersions, BottleneckOnAChain) {
  // 0 -(8)-> 1 -(3)-> 2 -(9)-> 3 : widths 8, 3, 3.
  EdgeList G;
  G.NumNodes = 4;
  auto AddEdge = [&](int32_t S, int32_t D, float W) {
    G.Src.push_back(S);
    G.Dst.push_back(D);
    G.Weight.push_back(W);
  };
  AddEdge(0, 1, 8.0f);
  AddEdge(1, 2, 3.0f);
  AddEdge(2, 3, 9.0f);
  const FrontierResult R = runFrontier(G, FrApp::Sswp, GetParam());
  EXPECT_TRUE(std::isinf(R.Value[0])) << "source width is infinite";
  EXPECT_EQ(R.Value[1], 8.0f);
  EXPECT_EQ(R.Value[2], 3.0f);
  EXPECT_EQ(R.Value[3], 3.0f);
}

TEST_P(SswpVersions, TwoRoutesPickTheWider) {
  // 0->1->3 (bottleneck 2) and 0->2->3 (bottleneck 5): width(3) = 5.
  EdgeList G;
  G.NumNodes = 4;
  auto AddEdge = [&](int32_t S, int32_t D, float W) {
    G.Src.push_back(S);
    G.Dst.push_back(D);
    G.Weight.push_back(W);
  };
  AddEdge(0, 1, 2.0f);
  AddEdge(1, 3, 10.0f);
  AddEdge(0, 2, 5.0f);
  AddEdge(2, 3, 6.0f);
  const FrontierResult R = runFrontier(G, FrApp::Sswp, GetParam());
  EXPECT_EQ(R.Value[3], 5.0f);
}

INSTANTIATE_TEST_SUITE_P(AllVersions, SswpVersions,
                         ::testing::ValuesIn(kAllVersions),
                         [](const auto &Info) {
                           return versionName(Info.param);
                         });

TEST(Sswp, AllVersionsBitIdentical) {
  const EdgeList G = genRmat(9, 6000, 13, 64.0f);
  const FrontierResult Ref =
      runFrontier(G, FrApp::Sswp, FrVersion::NontilingSerial);
  for (const FrVersion V :
       {FrVersion::NontilingMask, FrVersion::NontilingInvec,
        FrVersion::TilingGrouping}) {
    const FrontierResult R = runFrontier(G, FrApp::Sswp, V);
    EXPECT_EQ(R.Value, Ref.Value) << versionName(V);
  }
}
