//===-- verify/Gen.h - Adversarial workload generators ----------*- C++ -*-===//
//
// Seeded generator library for the verification harness.  Every case is a
// small irregular scatter-reduce stream (index array + value array) whose
// shape is chosen to stress the conflict-handling machinery from the paper:
// skewed index distributions (Zipf / heavy-hitter), fully-conflicting lanes,
// alternating two-index streams (the worst case for Alg2's two-subset
// split), monotone runs, single hot buckets, and tails of every residue
// modulo the 16-lane vector width.  Value patterns cover mixed magnitudes,
// denormals, and huge-but-finite values so the FP tolerance model in
// verify/Oracle.h is exercised, without generating NaN or true infinities
// (which would make "agreement" undefined for min/max).
//
// Determinism is a hard requirement: (Seed, CaseNo) -> CaseSpec -> Workload
// is a pure function, so any failure seen in CI replays locally from the
// printed spec alone, and the corpus file is only a convenience.
//
//===----------------------------------------------------------------------===//

#ifndef CFV_VERIFY_GEN_H
#define CFV_VERIFY_GEN_H

#include "graph/Graph.h"
#include "pattern/Pattern.h"
#include "util/AlignedAlloc.h"
#include "util/Status.h"

#include <cstdint>
#include <string>

namespace cfv {
namespace verify {

/// Shape of the index stream.  The first four delegate to workload::genKeys
/// so the harness stresses the exact distributions the benchmarks run.
enum class IdxPattern {
  Uniform,           ///< uniform over the universe
  Zipf,              ///< power-law skew
  HeavyHitter,       ///< a few indices absorb most references
  MovingCluster,     ///< locality window sliding over the universe
  AllConflict,       ///< every element hits one index (D1 = lanes-1)
  AlternatingPair,   ///< A,B,A,B,... : two dense conflict chains
  Monotone,          ///< sorted with duplicate runs
  HotBucket,         ///< ~90% one index, remainder uniform
  DistinctRoundRobin,///< 0..U-1 cycling: conflict-free when U >= 16
  SmallAlphabet      ///< random draws from a <= 16-value alphabet
};
constexpr int kNumIdxPatterns = 10;
const char *idxPatternName(IdxPattern P);

/// Shape of the value stream.
enum class ValPattern {
  UnitRange,      ///< [-0.5, 0.5)
  MixedMagnitude, ///< magnitudes spread across 2^-20 .. 2^20
  Denormal,       ///< subnormal floats (plus a few zeros)
  HugeMagnitude,  ///< +-2^100 scale: inf-adjacent but overflow-safe in sums
  SignedZeroOnes  ///< {-0.0, +0.0, 1.0, -1.0}
};
constexpr int kNumValPatterns = 5;
const char *valPatternName(ValPattern P);

/// A fully deterministic case description.  genWorkload(Spec) is pure.
struct CaseSpec {
  uint64_t Seed = 0;
  int64_t N = 0;        ///< stream length (0 and tail residues included)
  int32_t Universe = 1; ///< index range [0, Universe)
  IdxPattern Idx = IdxPattern::Uniform;
  ValPattern Val = ValPattern::UnitRange;

  std::string toString() const;
};

/// A materialized case: Idx[i] in [0, Spec.Universe) and a float payload.
/// Integer pipelines derive their payload with intPayload() so float and
/// integer runs share one corpus format.
struct Workload {
  CaseSpec Spec;
  AlignedVector<int32_t> Idx;
  AlignedVector<float> Val;
  /// The tile class the stream *should* classify as, computed by
  /// expectedClass() -- an independent naive reference -- at generation
  /// time.  The oracle asserts pattern::classifyRange agrees, so a
  /// threshold drift between the production classifier and its spec is a
  /// verification failure, not a silent mis-dispatch.
  pattern::TileClass Expected = pattern::TileClass::General;

  int32_t arraySize() const { return Spec.Universe; }
};

/// Naive reference classifier over one whole stream (treated as a single
/// tile with windows aligned to \p Idx).  Deliberately shares no code
/// with pattern::classifyOne: std::set/std::map over the same published
/// thresholds (per-16-window duplicates, nondecreasing order, <= 16
/// distinct, strict majority), same precedence.
pattern::TileClass expectedClass(const int32_t *Idx, int64_t N);

/// Materializes \p Spec.  Pure: same spec, same workload, any host.
Workload genWorkload(const CaseSpec &Spec);

/// Deterministic enumeration for cfv_check: case \p CaseNo of run \p Seed.
/// Sweeps the cross product of index patterns, value patterns, tail sizes
/// (0, 1, every residue mod 16, 17, 31, 33, and larger random lengths) and
/// small/large universes, with per-case derived sub-seeds.
CaseSpec specForCase(uint64_t Seed, uint64_t CaseNo);

/// Small bounded integer payload derived from the float payload, so the
/// integer pipelines are exact under any association (no overflow for any
/// stream the generators emit).
AlignedVector<int32_t> intPayload(const Workload &W);

/// Lifts a stream into a SNAP-compatible edge list so the same adversarial
/// index patterns flow through graph I/O, the inspector, and the app
/// kernels: edge i is (i mod Universe) -> Idx[i].  When \p Weighted, the
/// weight is 1 + min(|Val[i]|, 63) (finite, positive, SSSP-safe).
graph::EdgeList toEdgeList(const Workload &W, bool Weighted);

/// Replayable corpus files.  The format is a commented SNAP edge list
/// ("# cfv-corpus v1" header carrying the spec, then "src dst value" rows
/// with hexfloat values for exact round-trips), so a reproducer doubles as
/// a graph input for the standard reader.
Status writeCorpus(const std::string &Path, const Workload &W);
Expected<Workload> readCorpus(const std::string &Path);

} // namespace verify
} // namespace cfv

#endif // CFV_VERIFY_GEN_H
