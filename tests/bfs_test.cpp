//===- tests/bfs_test.cpp - Wave-frontier BFS ------------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/frontier/FrontierEngine.h"

#include "graph/Generators.h"

#include "gtest/gtest.h"

#include <cmath>
#include <limits>
#include <queue>

using namespace cfv;
using namespace cfv::apps;
using namespace cfv::graph;

namespace {

/// Textbook queue BFS reference.
AlignedVector<float> bfsReference(const EdgeList &G, int32_t Source) {
  const Csr Adj = buildCsr(G);
  AlignedVector<float> Level(G.NumNodes,
                             std::numeric_limits<float>::infinity());
  Level[Source] = 0.0f;
  std::queue<int32_t> Q;
  Q.push(Source);
  while (!Q.empty()) {
    const int32_t V = Q.front();
    Q.pop();
    for (int64_t E = Adj.RowBegin[V]; E < Adj.RowBegin[V + 1]; ++E) {
      const int32_t U = Adj.Col[E];
      if (std::isinf(Level[U])) {
        Level[U] = Level[V] + 1.0f;
        Q.push(U);
      }
    }
  }
  return Level;
}

constexpr FrVersion kAllVersions[] = {
    FrVersion::NontilingSerial, FrVersion::NontilingMask,
    FrVersion::NontilingInvec, FrVersion::TilingGrouping};

} // namespace

class BfsVersions : public ::testing::TestWithParam<FrVersion> {};

TEST_P(BfsVersions, MatchesQueueBfs) {
  for (const uint64_t Seed : {31u, 32u}) {
    const EdgeList G = genRmat(9, 6000, Seed);
    const auto Want = bfsReference(G, 0);
    const FrontierResult R = runFrontier(G, FrApp::Bfs, GetParam());
    for (int32_t V = 0; V < G.NumNodes; ++V)
      ASSERT_EQ(R.Value[V], Want[V]) << "seed " << Seed << " vertex " << V;
  }
}

TEST_P(BfsVersions, LevelsOnAChain) {
  constexpr int32_t N = 40;
  EdgeList G;
  G.NumNodes = N;
  for (int32_t V = 0; V + 1 < N; ++V) {
    G.Src.push_back(V);
    G.Dst.push_back(V + 1);
  }
  const FrontierResult R = runFrontier(G, FrApp::Bfs, GetParam());
  for (int32_t V = 0; V < N; ++V)
    ASSERT_EQ(R.Value[V], static_cast<float>(V));
  // N-1 relaxing waves plus the final wave that expands the chain's last
  // vertex (whose adjacency is empty).
  EXPECT_EQ(R.Iterations, N);
}

TEST_P(BfsVersions, DiamondTakesShorterBranch) {
  // 0 -> {1, 2}, 1 -> 3, 2 -> 4 -> 3: level(3) must be 2 via vertex 1.
  EdgeList G;
  G.NumNodes = 5;
  auto Add = [&](int32_t S, int32_t D) {
    G.Src.push_back(S);
    G.Dst.push_back(D);
  };
  Add(0, 1);
  Add(0, 2);
  Add(1, 3);
  Add(2, 4);
  Add(4, 3);
  const FrontierResult R = runFrontier(G, FrApp::Bfs, GetParam());
  EXPECT_EQ(R.Value[3], 2.0f);
  EXPECT_EQ(R.Value[4], 2.0f);
}

INSTANTIATE_TEST_SUITE_P(AllVersions, BfsVersions,
                         ::testing::ValuesIn(kAllVersions),
                         [](const auto &Info) {
                           return versionName(Info.param);
                         });

TEST(Bfs, AllVersionsBitIdentical) {
  const EdgeList G = genClustered(9, 5000, 33, 8, 0.05);
  const FrontierResult Ref =
      runFrontier(G, FrApp::Bfs, FrVersion::NontilingSerial);
  for (const FrVersion V :
       {FrVersion::NontilingMask, FrVersion::NontilingInvec,
        FrVersion::TilingGrouping}) {
    const FrontierResult R = runFrontier(G, FrApp::Bfs, V);
    EXPECT_EQ(R.Value, Ref.Value) << versionName(V);
    EXPECT_EQ(R.Iterations, Ref.Iterations) << versionName(V);
  }
}
