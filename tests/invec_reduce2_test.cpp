//===- tests/invec_reduce2_test.cpp - Algorithm 2 properties -------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Algorithm 2 (invecReduce2) splits lanes into two conflict-free subsets
// updating two reduction arrays.  The tests verify the paper's Figure 6
// walk-through, the structural invariants of the two subsets, the D2
// bound, and -- the key end-to-end property -- that running the full
// two-array protocol (scatter subset 1, accumulate subset 2, mergeAux)
// produces the same reduction-array contents as Algorithm 1.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "core/CostModel.h"
#include "core/InvecReduce.h"

using namespace cfv;
using namespace cfv::core;
using namespace cfv::simd;
using namespace cfv::test;

template <typename B> class Invec2Test : public ::testing::Test {};
TYPED_TEST_SUITE(Invec2Test, AllBackends, );

TYPED_TEST(Invec2Test, PaperFigure6Example) {
  using B = TypeParam;
  const Lane16i Idx = {0, 1, 1, 1, 2, 2, 2, 2, 5, 0, 1, 1, 1, 5, 5, 5};
  auto Data = VecF32<B>::broadcast(1.0f);
  const Invec2Result R =
      invecReduce2<OpAdd>(kAllLanes, loadIdx<B>(Idx), Data);

  // Figure 6: subset 1 = first occurrences (lanes 0,1,4,8); subset 2 =
  // second occurrences (lanes 2,5,9,13); three merge iterations ("one
  // fewer than Algorithm 1").
  EXPECT_EQ(R.Ret1, 0x0113);
  EXPECT_EQ(R.Ret2, 0x2224);
  EXPECT_EQ(R.Distinct, 3);

  const Lane16f Out = toArray(Data);
  // Subset-1 lanes absorb everything except the subset-2 lane of their
  // group: idx 1 has 6 lanes, one goes to subset 2, so lane 1 holds 5.
  EXPECT_EQ(Out[0], 1.0f) << "index 0: group {0,9}, lane 9 in subset 2";
  EXPECT_EQ(Out[1], 5.0f) << "index 1: 6 lanes minus the subset-2 lane";
  EXPECT_EQ(Out[4], 3.0f) << "index 2: 4 lanes minus the subset-2 lane";
  EXPECT_EQ(Out[8], 3.0f) << "index 5: 4 lanes minus the subset-2 lane";
  // Subset-2 lanes keep their own single contribution.
  EXPECT_EQ(Out[2], 1.0f);
  EXPECT_EQ(Out[5], 1.0f);
}

TYPED_TEST(Invec2Test, ExtremeCaseTwoIdenticalGroupsNeedsNoIterations) {
  using B = TypeParam;
  // §3.4's example: two identical groups of eight distinct indices.
  // Algorithm 1 needs 8 iterations; Algorithm 2 none.
  Lane16i Idx;
  for (int I = 0; I < kMaxLanes; ++I)
    Idx[I] = I % 8;
  auto D1 = VecF32<B>::broadcast(1.0f);
  EXPECT_EQ(invecReduce<OpAdd>(kAllLanes, loadIdx<B>(Idx), D1).Distinct, 8);
  auto D2 = VecF32<B>::broadcast(1.0f);
  const Invec2Result R =
      invecReduce2<OpAdd>(kAllLanes, loadIdx<B>(Idx), D2);
  EXPECT_EQ(R.Distinct, 0);
  EXPECT_EQ(R.Ret1, 0x00FF);
  EXPECT_EQ(R.Ret2, 0xFF00);
}

TYPED_TEST(Invec2Test, SubsetInvariants) {
  using B = TypeParam;
  Xoshiro256 Rng(0x2222);
  for (const uint32_t Universe : {1u, 2u, 4u, 8u, 64u}) {
    for (int Trial = 0; Trial < 100; ++Trial) {
      const Lane16i Idx = randomIndices(Rng, Universe);
      const Mask16 Active = randomMask(Rng);
      auto Data = VecF32<B>::broadcast(1.0f);
      const Invec2Result R =
          invecReduce2<OpAdd>(Active, loadIdx<B>(Idx), Data);

      ASSERT_EQ(R.Ret1 & R.Ret2, 0) << "subsets must be disjoint";
      ASSERT_EQ((R.Ret1 | R.Ret2) & ~Active, 0);
      // Each subset must be conflict free on its own.
      ASSERT_EQ(conflictFreeSubset<B>(R.Ret1, loadIdx<B>(Idx)), R.Ret1);
      ASSERT_EQ(conflictFreeSubset<B>(R.Ret2, loadIdx<B>(Idx)), R.Ret2);
      // D2 bound of §3.4.
      ASSERT_LE(R.Distinct, kMaxLanes / 3);
    }
  }
}

namespace {

struct Sweep2Param {
  uint32_t Universe;
  uint64_t Seed;
};

class Invec2Sweep : public ::testing::TestWithParam<Sweep2Param> {};

/// End-to-end protocol equivalence: Algorithm 2 + aux array + merge must
/// leave the reduction array in the same state as Algorithm 1.
template <typename B, typename Op> void checkProtocol(Sweep2Param P) {
  Xoshiro256 Rng(P.Seed);
  constexpr int kArr = 64;
  for (int Trial = 0; Trial < 100; ++Trial) {
    const Lane16i Idx = randomIndices(Rng, std::min(P.Universe, 64u));
    const Lane16f Val = randomFloats(Rng);
    const Mask16 Active = randomMask(Rng);

    // Path A: Algorithm 1 into one array.
    AlignedVector<float> ArrA(kArr);
    fillIdentity<Op>(ArrA.data(), kArr);
    {
      auto D = loadF<B>(Val);
      const InvecResult R = invecReduce<Op>(Active, loadIdx<B>(Idx), D);
      accumulateScatter<Op>(R.Ret, loadIdx<B>(Idx), D, ArrA.data());
    }

    // Path B: Algorithm 2 into main + aux, then merge.
    AlignedVector<float> ArrB(kArr), Aux(kArr);
    fillIdentity<Op>(ArrB.data(), kArr);
    fillIdentity<Op>(Aux.data(), kArr);
    {
      auto D = loadF<B>(Val);
      const Invec2Result R = invecReduce2<Op>(Active, loadIdx<B>(Idx), D);
      accumulateScatter<Op>(R.Ret1, loadIdx<B>(Idx), D, ArrB.data());
      accumulateScatter<Op>(R.Ret2, loadIdx<B>(Idx), D, Aux.data());
      mergeAux<Op>(ArrB.data(), Aux.data(), kArr);
    }

    for (int I = 0; I < kArr; ++I) {
      if (ArrA[I] == ArrB[I])
        continue; // covers untouched entries left at +/-infinity
      ASSERT_NEAR(ArrA[I], ArrB[I], 1e-4)
          << "trial " << Trial << " entry " << I;
    }
  }
}

} // namespace

TEST_P(Invec2Sweep, ProtocolAddScalar) {
  checkProtocol<backend::Scalar, OpAdd>(GetParam());
}
TEST_P(Invec2Sweep, ProtocolMinScalar) {
  checkProtocol<backend::Scalar, OpMin>(GetParam());
}
TEST_P(Invec2Sweep, ProtocolMaxScalar) {
  checkProtocol<backend::Scalar, OpMax>(GetParam());
}
#if CFV_HAVE_AVX512
TEST_P(Invec2Sweep, ProtocolAddAvx512) {
  checkProtocol<backend::Avx512, OpAdd>(GetParam());
}
TEST_P(Invec2Sweep, ProtocolMinAvx512) {
  checkProtocol<backend::Avx512, OpMin>(GetParam());
}
TEST_P(Invec2Sweep, ProtocolMaxAvx512) {
  checkProtocol<backend::Avx512, OpMax>(GetParam());
}
#endif

INSTANTIATE_TEST_SUITE_P(
    DuplicateDensities, Invec2Sweep,
    ::testing::Values(Sweep2Param{1, 1}, Sweep2Param{2, 2},
                      Sweep2Param{4, 3}, Sweep2Param{8, 4},
                      Sweep2Param{16, 5}, Sweep2Param{64, 6}),
    [](const ::testing::TestParamInfo<Sweep2Param> &Info) {
      return "universe" + std::to_string(Info.param.Universe);
    });

TYPED_TEST(Invec2Test, MultiPayloadAgreesWithSinglePayload) {
  using B = TypeParam;
  Xoshiro256 Rng(0x4444);
  for (int Trial = 0; Trial < 50; ++Trial) {
    const Lane16i Idx = randomIndices(Rng, 3);
    const Lane16f V1 = randomFloats(Rng);
    const Lane16f V2 = randomFloats(Rng);
    const Mask16 Active = randomMask(Rng);

    auto A1 = loadF<B>(V1);
    auto A2 = loadF<B>(V2);
    const Invec2Result Rm =
        invecReduce2<OpAdd>(Active, loadIdx<B>(Idx), A1, A2);

    auto S1 = loadF<B>(V1);
    auto S2 = loadF<B>(V2);
    const Invec2Result Ra = invecReduce2<OpAdd>(Active, loadIdx<B>(Idx), S1);
    const Invec2Result Rb = invecReduce2<OpAdd>(Active, loadIdx<B>(Idx), S2);
    ASSERT_EQ(Rm.Ret1, Ra.Ret1);
    ASSERT_EQ(Rm.Ret2, Rb.Ret2);
    ASSERT_EQ(toArray(A1), toArray(S1));
    ASSERT_EQ(toArray(A2), toArray(S2));
  }
}

TEST(CostModel, PaperConstants) {
  EXPECT_DOUBLE_EQ(alg1Cost(0), 2.0);
  EXPECT_DOUBLE_EQ(alg1Cost(8), 66.0) << "§3.4: up to 66 total instructions";
  EXPECT_DOUBLE_EQ(alg2Cost(5), 47.0) << "§3.4: no more than 47 instructions";
  EXPECT_EQ(kWorstD1, 8);
  EXPECT_EQ(kWorstD2, 5);
}

TEST(CostModel, CrossoverMatchesPaper) {
  // 2 + 8*D1 > 7 + 8*D2  <=>  D1 > D2 + 0.625
  EXPECT_TRUE(alg2Profitable(2.0, 1.0));
  EXPECT_FALSE(alg2Profitable(1.0, 1.0));
  EXPECT_FALSE(alg2Profitable(1.5, 1.0));
  EXPECT_TRUE(alg2Profitable(1.7, 1.0));
  EXPECT_TRUE(preferAlg2(1.5));
  EXPECT_FALSE(preferAlg2(1.0));
  EXPECT_FALSE(preferAlg2(1e-4)) << "graph apps' tiny D1 stays on Alg 1";
}
