//===- util/Clock.h - The process-wide monotonic time source ----*- C++ -*-===//
//
// Part of the cfv project (see AlignedAlloc.h for the project banner).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One monotonic clock for everything that measures or compares time:
/// WallTimer (util/Timer.h), request deadlines
/// (core::RunOptions::DeadlineSteadySeconds), scheduler queue timestamps
/// (service/RequestScheduler.cpp), and observability spans (obs/Trace.h).
/// Before this header each of those sites spelled out its own
/// steady_clock conversion; routing them through monotonicSeconds()
/// guarantees spans and deadlines can never disagree about "now" and
/// keeps the choice of clock (steady_clock, never
/// high_resolution_clock, which may alias the system clock and jump) in
/// one place.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_UTIL_CLOCK_H
#define CFV_UTIL_CLOCK_H

#include <chrono>

namespace cfv {

/// The one clock the project reads.  Monotonic by construction;
/// high_resolution_clock is banned because libstdc++ aliases it to
/// system_clock, which NTP can step backwards mid-measurement.
using MonotonicClock = std::chrono::steady_clock;

/// Seconds since an arbitrary (but fixed per process) epoch.  Differences
/// of two readings are wall durations; absolute values are only
/// comparable within one process.
inline double monotonicSeconds() {
  return std::chrono::duration<double>(
             MonotonicClock::now().time_since_epoch())
      .count();
}

} // namespace cfv

#endif // CFV_UTIL_CLOCK_H
