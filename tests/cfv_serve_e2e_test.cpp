//===- tests/cfv_serve_e2e_test.cpp - cfv_serve subprocess tests ----------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Drives the installed cfv_serve binary (path injected as CFV_SERVE_BIN
// by CMake) end to end over the NDJSON protocol: warm-vs-cold caching
// (cache_hit flag, exactly-zero load time on the second request),
// malformed input answered with a structured error while the server
// keeps serving, and queue-full backpressure under --queue-depth 1.
//
//===----------------------------------------------------------------------===//

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <vector>

namespace {

#ifndef CFV_SERVE_BIN
#error "CFV_SERVE_BIN must be defined to the cfv_serve binary path"
#endif

struct ServeRun {
  int ExitCode = -1;
  std::vector<std::string> Lines; ///< stdout, one response per entry
};

/// Writes \p Requests to a file, pipes it through cfv_serve with the
/// given extra \p Flags / \p EnvPrefix, and collects the response lines.
ServeRun runServe(const std::string &Requests, const std::string &Flags = "",
                  const std::string &EnvPrefix = "") {
  const std::string Dir = ::testing::TempDir();
  const std::string InPath = Dir + "cfv_serve_in.txt";
  const std::string OutPath = Dir + "cfv_serve_out.txt";
  {
    std::ofstream In(InPath);
    In << Requests;
  }
  const std::string Cmd = EnvPrefix + " \"" + CFV_SERVE_BIN + "\" " + Flags +
                          " < " + InPath + " > " + OutPath + " 2>/dev/null";
  const int Rc = std::system(Cmd.c_str());

  ServeRun R;
  if (Rc != -1 && WIFEXITED(Rc))
    R.ExitCode = WEXITSTATUS(Rc);
  std::ifstream Out(OutPath);
  std::string Line;
  while (std::getline(Out, Line))
    if (!Line.empty())
      R.Lines.push_back(Line);
  std::remove(InPath.c_str());
  std::remove(OutPath.c_str());
  return R;
}

bool contains(const std::string &S, const std::string &Needle) {
  return S.find(Needle) != std::string::npos;
}

// Small synthetic inputs keep the whole suite fast while still loading
// a real dataset through the registry.
const char *kPagerank =
    "{\"app\":\"pagerank\",\"dataset\":\"higgs-twitter-sim\","
    "\"scale\":0.05,\"iters\":3";

TEST(CfvServeE2e, WarmRequestHitsTheCache) {
  std::ostringstream In;
  In << kPagerank << ",\"id\":\"cold\"}\n";
  In << kPagerank << ",\"id\":\"warm\"}\n";
  In << "{\"cmd\":\"shutdown\"}\n";
  const ServeRun R = runServe(In.str());

  ASSERT_EQ(R.ExitCode, 0);
  ASSERT_EQ(R.Lines.size(), 3u);

  EXPECT_TRUE(contains(R.Lines[0], "\"id\":\"cold\"")) << R.Lines[0];
  EXPECT_TRUE(contains(R.Lines[0], "\"ok\":true")) << R.Lines[0];
  EXPECT_TRUE(contains(R.Lines[0], "\"cache_hit\":false")) << R.Lines[0];

  EXPECT_TRUE(contains(R.Lines[1], "\"id\":\"warm\"")) << R.Lines[1];
  EXPECT_TRUE(contains(R.Lines[1], "\"ok\":true")) << R.Lines[1];
  EXPECT_TRUE(contains(R.Lines[1], "\"cache_hit\":true")) << R.Lines[1];
  EXPECT_TRUE(contains(R.Lines[1], "\"load_seconds\":0,"))
      << "warm load time must be exactly zero: " << R.Lines[1];

  EXPECT_TRUE(contains(R.Lines[2], "\"bye\":true")) << R.Lines[2];
}

TEST(CfvServeE2e, MalformedLineAnswersErrorAndKeepsServing) {
  std::ostringstream In;
  In << "this is not json\n";
  In << "{\"app\":\"nope\",\"id\":\"bad-app\"}\n";
  In << kPagerank << ",\"id\":\"after\"}\n";
  In << "{\"cmd\":\"shutdown\"}\n";
  const ServeRun R = runServe(In.str());

  ASSERT_EQ(R.ExitCode, 0);
  ASSERT_EQ(R.Lines.size(), 4u);
  EXPECT_TRUE(contains(R.Lines[0], "\"ok\":false")) << R.Lines[0];
  EXPECT_TRUE(contains(R.Lines[0], "\"error\":\"parse_error\""))
      << R.Lines[0];
  // An unknown app is a request-level error with the id echoed back.
  EXPECT_TRUE(contains(R.Lines[1], "\"ok\":false")) << R.Lines[1];
  EXPECT_TRUE(contains(R.Lines[1], "\"id\":\"bad-app\"")) << R.Lines[1];
  // The server survived both and answered the valid request.
  EXPECT_TRUE(contains(R.Lines[2], "\"id\":\"after\"")) << R.Lines[2];
  EXPECT_TRUE(contains(R.Lines[2], "\"ok\":true")) << R.Lines[2];
}

TEST(CfvServeE2e, StatsReportsCacheCounters) {
  std::ostringstream In;
  In << kPagerank << "}\n";
  In << kPagerank << "}\n";
  In << "{\"cmd\":\"stats\"}\n";
  In << "{\"cmd\":\"shutdown\"}\n";
  const ServeRun R = runServe(In.str());

  ASSERT_EQ(R.ExitCode, 0);
  ASSERT_EQ(R.Lines.size(), 4u);
  EXPECT_TRUE(contains(R.Lines[2], "\"cache_hits\":1")) << R.Lines[2];
  EXPECT_TRUE(contains(R.Lines[2], "\"cache_misses\":1")) << R.Lines[2];
  EXPECT_TRUE(contains(R.Lines[2], "\"cache_entries\":1")) << R.Lines[2];
}

TEST(CfvServeE2e, QueueFullAnswersUnavailable) {
  // One-deep queue and a flood of requests: the reader admits them far
  // faster than the worker can serve them, so most must come back as
  // structured unavailable responses -- and every line gets an answer.
  std::ostringstream In;
  constexpr int N = 8;
  for (int I = 0; I < N; ++I)
    In << kPagerank << ",\"id\":\"q" << I << "\"}\n";
  In << "{\"cmd\":\"shutdown\"}\n";
  const ServeRun R = runServe(In.str(), "--queue-depth 1");

  ASSERT_EQ(R.ExitCode, 0);
  ASSERT_EQ(R.Lines.size(), static_cast<size_t>(N + 1));
  int Ok = 0, Unavailable = 0;
  for (int I = 0; I < N; ++I) {
    if (contains(R.Lines[I], "\"ok\":true"))
      ++Ok;
    if (contains(R.Lines[I], "\"error\":\"unavailable\""))
      ++Unavailable;
  }
  EXPECT_GE(Ok, 1);
  EXPECT_GE(Unavailable, 1) << "backpressure must reject, not stall";
  EXPECT_EQ(Ok + Unavailable, N);
}

TEST(CfvServeE2e, CacheBudgetIsHonored) {
  // A tiny byte budget (1 MB) forces eviction between the two datasets;
  // the stats line must show a bounded resident size and evictions.
  std::ostringstream In;
  In << kPagerank << "}\n";
  In << "{\"app\":\"wcc\",\"dataset\":\"amazon0312-sim\",\"scale\":0.05}\n";
  In << kPagerank << "}\n";
  In << "{\"cmd\":\"stats\"}\n";
  In << "{\"cmd\":\"shutdown\"}\n";
  const ServeRun R =
      runServe(In.str(), "", "CFV_CACHE_BYTES=1000000");

  ASSERT_EQ(R.ExitCode, 0);
  ASSERT_EQ(R.Lines.size(), 5u);
  for (int I = 0; I < 3; ++I)
    EXPECT_TRUE(contains(R.Lines[I], "\"ok\":true")) << R.Lines[I];
  EXPECT_TRUE(contains(R.Lines[3], "\"cache_entries\":1")) << R.Lines[3];
}

} // namespace
