//===- tests/mapped_csr_test.cpp - Out-of-core CFVM backing ---------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The CFVM write/open roundtrip bit-for-bit (COO in original order, CSR
// equal to buildCsr), tail residues mod 8/16, the aligned-tail pad
// regression (a final section ending exactly on the 64-byte boundary
// must not lose its last payload byte), truncated/odd-length/garbage
// files as IoError, residency-window eviction and refault accounting
// under tiny CFV_MAP_BYTES budgets, mapped-vs-in-core equality through
// the run facade, and the io.map_fail degradation contract.
//
//===----------------------------------------------------------------------===//

#include "graph/MappedCsr.h"

#include "core/Api.h"
#include "graph/Generators.h"
#include "graph/Graph.h"
#include "graph/Prepared.h"
#include "resilience/Fault.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

using namespace cfv;
using namespace cfv::graph;

namespace {

/// Saves/restores one environment variable around a test.
struct EnvGuard {
  std::string Name;
  std::string Saved;
  bool Had;
  EnvGuard(const char *N, const char *Value) : Name(N) {
    const char *Prev = std::getenv(N);
    Had = Prev != nullptr;
    if (Had)
      Saved = Prev;
    if (Value)
      setenv(N, Value, 1);
    else
      unsetenv(N);
  }
  ~EnvGuard() {
    if (Had)
      setenv(Name.c_str(), Saved.c_str(), 1);
    else
      unsetenv(Name.c_str());
  }
};

/// Deletes the CFVM file when the test scope ends.
struct FileGuard {
  std::string Path;
  explicit FileGuard(std::string P) : Path(std::move(P)) {}
  ~FileGuard() { std::remove(Path.c_str()); }
};

std::string tmpPath(const char *Name) { return ::testing::TempDir() + Name; }

/// A deterministic hand-built graph: exact edge count, optional weights.
EdgeList makeGraph(int32_t N, int64_t M, bool Weighted) {
  EdgeList E;
  E.NumNodes = N;
  for (int64_t I = 0; I < M; ++I) {
    E.Src.push_back(static_cast<int32_t>(I % N));
    E.Dst.push_back(static_cast<int32_t>((I * 7 + 3) % N));
    if (Weighted)
      E.Weight.push_back(static_cast<float>(I) + 0.5f);
  }
  return E;
}

/// Write + open + full bit-level roundtrip comparison against \p E.
void expectRoundtrip(const EdgeList &E, const char *Name) {
  const std::string Path = tmpPath(Name);
  FileGuard FG(Path);
  ASSERT_TRUE(MappedCsr::write(Path, E).ok()) << Name;
  Expected<std::shared_ptr<MappedCsr>> M = MappedCsr::open(Path);
  ASSERT_TRUE(M.ok()) << Name << ": " << M.status().toString();
  const MappedCsr &G = **M;
  ASSERT_EQ(G.numNodes(), E.NumNodes) << Name;
  ASSERT_EQ(G.numEdges(), E.numEdges()) << Name;
  ASSERT_EQ(G.isWeighted(), E.isWeighted()) << Name;
  const int64_t Edges = E.numEdges();
  if (Edges > 0) {
    EXPECT_EQ(std::memcmp(G.edgeSrc(), E.Src.data(),
                          static_cast<size_t>(Edges) * sizeof(int32_t)),
              0)
        << Name << ": Src";
    EXPECT_EQ(std::memcmp(G.edgeDst(), E.Dst.data(),
                          static_cast<size_t>(Edges) * sizeof(int32_t)),
              0)
        << Name << ": Dst";
    if (E.isWeighted())
      EXPECT_EQ(std::memcmp(G.edgeWeight(), E.Weight.data(),
                            static_cast<size_t>(Edges) * sizeof(float)),
                0)
          << Name << ": Weight";
  }
  // The CSR sections are the exact buildCsr output.
  const Csr C = buildCsr(E);
  const CsrView V = G.csrView();
  ASSERT_EQ(V.NumNodes, C.NumNodes) << Name;
  EXPECT_EQ(std::memcmp(V.RowBegin, C.RowBegin.data(),
                        (static_cast<size_t>(C.NumNodes) + 1) *
                            sizeof(int64_t)),
            0)
      << Name << ": RowBegin";
  if (Edges > 0) {
    EXPECT_EQ(std::memcmp(V.Col, C.Col.data(),
                          static_cast<size_t>(Edges) * sizeof(int32_t)),
              0)
        << Name << ": Col";
    if (E.isWeighted())
      EXPECT_EQ(std::memcmp(V.Weight, C.Weight.data(),
                            static_cast<size_t>(Edges) * sizeof(float)),
                0)
          << Name << ": CsrWeight";
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Roundtrip
//===----------------------------------------------------------------------===//

TEST(MappedCsr, RoundtripWeightedAndUnweighted) {
  expectRoundtrip(genRmat(8, 2000, 42, 16.0f), "rt_rmat_w.cfvm");
  expectRoundtrip(genUniform(8, 2000, 43), "rt_uniform.cfvm");
}

TEST(MappedCsr, TailResiduesMod8And16) {
  // Every residue class the 8- and 16-lane kernels care about, plus the
  // section-alignment residues (64-byte sections hold 16 i32 / f32).
  for (const int64_t M : {int64_t(1), int64_t(7), int64_t(8), int64_t(9),
                          int64_t(15), int64_t(16), int64_t(17), int64_t(31),
                          int64_t(32), int64_t(33), int64_t(48)}) {
    const std::string Name =
        "rt_tail_" + std::to_string(M) + ".cfvm";
    expectRoundtrip(makeGraph(8, M, /*Weighted=*/true), Name.c_str());
    expectRoundtrip(makeGraph(8, M, /*Weighted=*/false),
                    ("u" + Name).c_str());
  }
}

TEST(MappedCsr, AlignedTailKeepsLastPayloadByte) {
  // Regression: with M = 16 weighted edges every payload section is
  // exactly 64 bytes, so the final section ends ON the alignment
  // boundary and Total == its end.  The writer's zero-pad used to land
  // at Total - 1 unconditionally, turning the last weight's high byte to
  // zero (64.0f -> FLT_MIN).  The last weight must survive verbatim.
  EdgeList E = makeGraph(8, 16, /*Weighted=*/true);
  E.Weight.back() = 64.0f;
  const std::string Path = tmpPath("rt_aligned_tail.cfvm");
  FileGuard FG(Path);
  ASSERT_TRUE(MappedCsr::write(Path, E).ok());
  Expected<std::shared_ptr<MappedCsr>> M = MappedCsr::open(Path);
  ASSERT_TRUE(M.ok()) << M.status().toString();
  EXPECT_EQ((*M)->edgeWeight()[15], 64.0f);
  expectRoundtrip(E, "rt_aligned_tail2.cfvm");
}

TEST(MappedCsr, EmptyGraphRoundtrips) {
  EdgeList E;
  E.NumNodes = 4;
  expectRoundtrip(E, "rt_empty.cfvm");
}

//===----------------------------------------------------------------------===//
// Malformed files
//===----------------------------------------------------------------------===//

TEST(MappedCsr, TruncatedAndOddLengthFilesAreIoError) {
  const EdgeList E = makeGraph(16, 100, /*Weighted=*/true);
  const std::string Path = tmpPath("trunc.cfvm");
  FileGuard FG(Path);
  ASSERT_TRUE(MappedCsr::write(Path, E).ok());
  const Expected<std::shared_ptr<MappedCsr>> Full = MappedCsr::open(Path);
  ASSERT_TRUE(Full.ok());
  const int64_t Total = (*Full)->mappedBytes();

  // One byte short of the layout, mid-file, header-only, odd scraps,
  // empty: all IoError, never a crash.
  for (const int64_t Len : {Total - 1, Total / 2, int64_t(32), int64_t(37),
                            int64_t(5), int64_t(0)}) {
    ASSERT_EQ(truncate(Path.c_str(), static_cast<off_t>(Len)), 0);
    const Expected<std::shared_ptr<MappedCsr>> M = MappedCsr::open(Path);
    EXPECT_FALSE(M.ok()) << "length " << Len;
    if (!M.ok())
      EXPECT_EQ(M.status().code(), ErrorCode::IoError) << "length " << Len;
  }
}

TEST(MappedCsr, BadMagicVersionAndCountsRejected) {
  const EdgeList E = makeGraph(8, 20, /*Weighted=*/false);
  const std::string Path = tmpPath("badhdr.cfvm");
  FileGuard FG(Path);

  auto corrupt = [&](int64_t Off, const void *Data, size_t Len) {
    ASSERT_TRUE(MappedCsr::write(Path, E).ok());
    std::FILE *F = std::fopen(Path.c_str(), "r+b");
    ASSERT_NE(F, nullptr);
    ASSERT_EQ(std::fseek(F, static_cast<long>(Off), SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(Data, 1, Len, F), Len);
    std::fclose(F);
    EXPECT_FALSE(MappedCsr::open(Path).ok());
  };

  corrupt(0, "JUNK", 4); // magic
  const uint32_t BadVersion = 999;
  corrupt(4, &BadVersion, sizeof(BadVersion));
  const int64_t BadNodes = -1;
  corrupt(16, &BadNodes, sizeof(BadNodes));
  // Edge count far past the file: the layout check catches it.
  const int64_t HugeEdges = int64_t(1) << 40;
  corrupt(24, &HugeEdges, sizeof(HugeEdges));

  EXPECT_FALSE(MappedCsr::open("/nonexistent/nope.cfvm").ok());
}

//===----------------------------------------------------------------------===//
// Residency window
//===----------------------------------------------------------------------===//

TEST(ResidencyWindowTest, LruEvictionAndRefaultAccounting) {
  std::vector<char> Buf(16 * 4096);
  ResidencyWindow W(Buf.data(), static_cast<int64_t>(Buf.size()),
                    /*BudgetBytes=*/2 * 4096, /*SegmentBytes=*/4096);
  auto seg = [](int64_t S) { return S * 4096; };

  W.touch(seg(0), 1);
  W.touch(seg(1), 1);
  EXPECT_EQ(W.advised(), 2);
  EXPECT_EQ(W.evictions(), 0);

  // Refresh 0, then admit 2: the LRU victim must be 1, not 0.
  W.touch(seg(0), 1);
  W.touch(seg(2), 1);
  EXPECT_EQ(W.advised(), 3);
  EXPECT_EQ(W.evictions(), 1);
  W.touch(seg(0), 1); // still resident: no refault
  EXPECT_EQ(W.refaults(), 0);
  W.touch(seg(1), 1); // evicted above: refault
  EXPECT_EQ(W.refaults(), 1);

  // Streaming the whole range cycles the window: every non-resident
  // segment is (re-)advised and the LRU churns.  (Refaults re-advise,
  // so the exact count depends on the interleaving; bound it instead.)
  W.touch(0, static_cast<int64_t>(Buf.size()));
  EXPECT_GE(W.advised(), 17);
  EXPECT_GE(W.evictions(), 14);
  EXPECT_GE(W.refaults(), 2);
}

TEST(ResidencyWindowTest, BudgetCoveringEverythingNeverEvicts) {
  std::vector<char> Buf(8 * 4096);
  ResidencyWindow W(Buf.data(), static_cast<int64_t>(Buf.size()),
                    /*BudgetBytes=*/static_cast<int64_t>(Buf.size()),
                    /*SegmentBytes=*/4096);
  for (int Pass = 0; Pass < 3; ++Pass)
    W.touch(0, static_cast<int64_t>(Buf.size()));
  EXPECT_EQ(W.advised(), 8);
  EXPECT_EQ(W.evictions(), 0);
  EXPECT_EQ(W.refaults(), 0);
}

TEST(MappedCsr, WindowOnlyUnderPartialBudget) {
  const EdgeList E = makeGraph(64, 20000, /*Weighted=*/true);
  const std::string Path = tmpPath("window.cfvm");
  FileGuard FG(Path);
  ASSERT_TRUE(MappedCsr::write(Path, E).ok());

  {
    // No budget: no window, counters stay zero.
    EnvGuard Env("CFV_MAP_BYTES", nullptr);
    Expected<std::shared_ptr<MappedCsr>> M = MappedCsr::open(Path);
    ASSERT_TRUE(M.ok());
    (*M)->adviseEdgeRange(0, (*M)->numEdges());
    EXPECT_EQ((*M)->windowAdvised(), 0);
  }
  {
    // Tiny budget: streaming the COO sections advises, evicts, and
    // refaults on the second pass.
    EnvGuard Env("CFV_MAP_BYTES", "8192");
    Expected<std::shared_ptr<MappedCsr>> M = MappedCsr::open(Path);
    ASSERT_TRUE(M.ok());
    const int64_t Edges = (*M)->numEdges();
    for (int64_t Lo = 0; Lo < Edges; Lo += 1024)
      (*M)->adviseEdgeRange(Lo, std::min(Edges, Lo + 1024));
    EXPECT_GT((*M)->windowAdvised(), 0);
    EXPECT_GT((*M)->windowEvictions(), 0);
    (*M)->adviseEdgeRange(0, 1024);
    (*M)->adviseCsrRange(0, Edges);
    EXPECT_GT((*M)->windowRefaults(), 0);
  }
  {
    // Budget covering the whole file: no window needed.
    EnvGuard Env("CFV_MAP_BYTES", "1073741824");
    Expected<std::shared_ptr<MappedCsr>> M = MappedCsr::open(Path);
    ASSERT_TRUE(M.ok());
    (*M)->adviseEdgeRange(0, (*M)->numEdges());
    EXPECT_EQ((*M)->windowAdvised(), 0);
  }
}

//===----------------------------------------------------------------------===//
// Mapped execution through the facade
//===----------------------------------------------------------------------===//

namespace {

AppResult runOnce(AppId App, int Iters, const EdgeList *G,
                  const PreparedGraph *Prep, const MappedCsr *Mapped) {
  AppRequest R;
  R.App = App;
  R.Version = AppVersion::Default;
  R.Options.MaxIterations = Iters;
  R.Graph = G;
  R.Prepared = Prep;
  R.Mapped = Mapped;
  Expected<AppResult> Res = run(R);
  EXPECT_TRUE(Res.ok()) << appIdName(App) << ": " << Res.status().toString();
  return Res.ok() ? std::move(*Res) : AppResult{};
}

} // namespace

TEST(MappedCsr, MappedRunsBitIdenticalToInCore) {
  const EdgeList E = genRmat(10, 20000, 7, 16.0f);
  const std::string Path = tmpPath("exec.cfvm");
  FileGuard FG(Path);
  ASSERT_TRUE(MappedCsr::write(Path, E).ok());
  // A small budget exercises the window during execution too.
  EnvGuard Env("CFV_MAP_BYTES", "65536");
  Expected<std::shared_ptr<MappedCsr>> M = MappedCsr::open(Path);
  ASSERT_TRUE(M.ok()) << M.status().toString();

  const struct {
    AppId App;
    int Iters;
  } Cases[] = {{AppId::PageRank, 3}, {AppId::Spmv, 1}, {AppId::Sssp, 0}};
  for (const auto &C : Cases) {
    const AppResult InCore = runOnce(C.App, C.Iters, &E, nullptr, nullptr);
    const AppResult Mapped = runOnce(C.App, C.Iters, &E, nullptr, M->get());
    EXPECT_FALSE(InCore.UsedMappedCsr) << appIdName(C.App);
    EXPECT_TRUE(Mapped.UsedMappedCsr) << appIdName(C.App);
    ASSERT_EQ(Mapped.Values.size(), InCore.Values.size()) << appIdName(C.App);
    // Pointer substitution: same edges, same order, same floats.
    EXPECT_EQ(std::memcmp(Mapped.Values.data(), InCore.Values.data(),
                          InCore.Values.size() * sizeof(float)),
              0)
        << appIdName(C.App);
  }
}

TEST(MappedCsr, PreparedAutoWiresUnderBudget) {
  PreparedGraph P(genRmat(9, 8000, 11, 16.0f));
  {
    // Budget off: the facade stays in-core even with a Prepared handle.
    EnvGuard Env("CFV_MAP_BYTES", nullptr);
    const AppResult R = runOnce(AppId::PageRank, 3, nullptr, &P, nullptr);
    EXPECT_FALSE(R.UsedMappedCsr);
  }
  {
    EnvGuard Env("CFV_MAP_BYTES", "65536");
    const AppResult R = runOnce(AppId::PageRank, 3, nullptr, &P, nullptr);
    EXPECT_TRUE(R.UsedMappedCsr);
    const AppResult Flat = runOnce(AppId::PageRank, 3, &P.edges(), nullptr,
                                   nullptr);
    ASSERT_EQ(R.Values.size(), Flat.Values.size());
    EXPECT_EQ(std::memcmp(R.Values.data(), Flat.Values.data(),
                          Flat.Values.size() * sizeof(float)),
              0);
  }
}

//===----------------------------------------------------------------------===//
// io.map_fail degradation
//===----------------------------------------------------------------------===//

#if CFV_FAULTS

namespace {

/// Arms io.map_fail:always for a scope; disarms on exit.
struct MapFailGuard {
  MapFailGuard() {
    fault::Plan P;
    P.Rules[static_cast<int>(fault::Point::IoMapFail)].M =
        fault::Rule::Mode::Always;
    fault::Injector::instance().configure(P);
  }
  ~MapFailGuard() { fault::Injector::instance().disarm(); }
};

} // namespace

TEST(MappedCsr, MapFailFaultMakesOpenFail) {
  const EdgeList E = makeGraph(8, 50, /*Weighted=*/false);
  const std::string Path = tmpPath("mapfail.cfvm");
  FileGuard FG(Path);
  ASSERT_TRUE(MappedCsr::write(Path, E).ok());
  {
    MapFailGuard Fail;
    const Expected<std::shared_ptr<MappedCsr>> M = MappedCsr::open(Path);
    ASSERT_FALSE(M.ok());
    EXPECT_EQ(M.status().code(), ErrorCode::IoError);
  }
  EXPECT_TRUE(MappedCsr::open(Path).ok()); // disarmed: fine again
}

TEST(MappedCsr, MapFailDegradesToInCoreWithIdenticalAnswers) {
  EnvGuard Env("CFV_MAP_BYTES", "65536");
  const EdgeList E = genRmat(9, 8000, 13, 16.0f);
  const AppResult Ref = runOnce(AppId::PageRank, 3, &E, nullptr, nullptr);

  PreparedGraph P{EdgeList(E)};
  {
    MapFailGuard Fail;
    // The mapping attempt fails; the run degrades to in-core and the
    // answer is the flat one, bit for bit.
    EXPECT_EQ(P.mappedCsr(), nullptr);
    const AppResult R = runOnce(AppId::PageRank, 3, nullptr, &P, nullptr);
    EXPECT_FALSE(R.UsedMappedCsr);
    ASSERT_EQ(R.Values.size(), Ref.Values.size());
    EXPECT_EQ(std::memcmp(R.Values.data(), Ref.Values.data(),
                          Ref.Values.size() * sizeof(float)),
              0);
  }
  // The failure is memoized per PreparedGraph: one attempt per dataset.
  EXPECT_EQ(P.mappedCsr(), nullptr);
  // A fresh PreparedGraph maps fine once the fault clears.
  PreparedGraph Q{EdgeList(E)};
  EXPECT_NE(Q.mappedCsr(), nullptr);
}

#endif // CFV_FAULTS
