//===- apps/mesh/MeshSolver.cpp - Unstructured-mesh edge solver ----------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/mesh/MeshSolver.h"

#include "core/Backends.h"
#include "core/InvecReduce.h"
#include "core/ParallelEngine.h"
#include "core/Variant.h"
#include "simd/Traits.h"
#include "inspector/Grouping.h"
#include "inspector/Tiling.h"
#include "obs/Trace.h"
#include "util/Prng.h"
#include "util/Stats.h"
#include "util/Timer.h"

#include <cassert>
#include <vector>

using namespace cfv;
using namespace cfv::apps;

using B = simd::NativeBackend;
using IVec = simd::VecI32<B>;
using FVec = simd::VecF32<B>;
using simd::Mask16;
constexpr int kLanes = B::kLanes;
constexpr Mask16 kAllLanes = simd::BackendTraits<B>::kFullMask;

#if CFV_VARIANT_PRIMARY
const char *apps::versionName(MeshVersion V) {
  switch (V) {
  case MeshVersion::Serial:
    return "serial";
  case MeshVersion::Mask:
    return "mask";
  case MeshVersion::Invec:
    return "invec";
  case MeshVersion::Grouping:
    return "grouping";
  }
  return "unknown";
}

Mesh apps::makeTriangulatedGrid(int32_t Nx, int32_t Ny, uint64_t Seed,
                                float KMin, float KMax) {
  assert(Nx > 1 && Ny > 1 && "grid must be at least 2x2");
  Mesh M;
  M.NumCells = Nx * Ny;
  Xoshiro256 Rng(Seed);
  auto Cell = [&](int32_t X, int32_t Y) { return Y * Nx + X; };
  auto AddEdge = [&](int32_t A, int32_t Bc) {
    M.EdgeA.push_back(A);
    M.EdgeB.push_back(Bc);
    M.K.push_back(KMin + Rng.nextFloat() * (KMax - KMin));
  };
  for (int32_t Y = 0; Y < Ny; ++Y)
    for (int32_t X = 0; X < Nx; ++X) {
      if (X + 1 < Nx)
        AddEdge(Cell(X, Y), Cell(X + 1, Y));
      if (Y + 1 < Ny)
        AddEdge(Cell(X, Y), Cell(X, Y + 1));
      // One diagonal per quad, orientation coin-flipped: this is what
      // makes the connectivity "unstructured".
      if (X + 1 < Nx && Y + 1 < Ny) {
        if (Rng.next() & 1)
          AddEdge(Cell(X, Y), Cell(X + 1, Y + 1));
        else
          AddEdge(Cell(X + 1, Y), Cell(X, Y + 1));
      }
    }
  return M;
}
#endif // CFV_VARIANT_PRIMARY

namespace {

/// One serial flux sweep chunk into a privatized sink.
void sweepSerial(const Mesh &M, const float *U, int64_t Lo, int64_t Hi,
                 core::FloatSink Out) {
  for (int64_t I = Lo; I < Hi; ++I) {
    const int32_t A = M.EdgeA[I];
    const int32_t Bc = M.EdgeB[I];
    const float Flux = M.K[I] * (U[A] - U[Bc]);
    Out.add(A, -Flux);
    Out.add(Bc, Flux);
  }
}

/// Vector flux for the active lanes of one block.
FVec fluxOf(Mask16 Active, const Mesh &M, int64_t Base, IVec VA, IVec VB,
            const float *U) {
  const FVec K = FVec::maskLoad(FVec::zero(), Active, M.K.data() + Base);
  const FVec Ua = FVec::maskGather(FVec::zero(), Active, U, VA);
  const FVec Ub = FVec::maskGather(FVec::zero(), Active, U, VB);
  return K * (Ua - Ub);
}

/// Conflict-masking sweep: a lane commits when conflict free in both
/// endpoint vectors; the two sides update in ordered phases.
void sweepMask(const Mesh &M, const float *U, int64_t Lo, int64_t Hi,
               core::FloatSink Out, SimdUtilCounter &Util) {
  if (Lo >= Hi)
    return;
  IVec Pos = IVec::broadcast(static_cast<int32_t>(Lo)) + IVec::iota();
  int64_t Next = Lo + kLanes;
  const IVec Limit = IVec::broadcast(static_cast<int32_t>(Hi));
  Mask16 Active = Pos.lt(Limit);

  while (Active) {
    const IVec VA = IVec::maskGather(IVec::zero(), Active, M.EdgeA.data(),
                                     Pos);
    const IVec VB = IVec::maskGather(IVec::zero(), Active, M.EdgeB.data(),
                                     Pos);
    const Mask16 Safe = simd::conflictFreeSubset(
        simd::conflictFreeSubset(Active, VA), VB);

    const FVec K = FVec::maskGather(FVec::zero(), Safe, M.K.data(), Pos);
    const FVec Ua = FVec::maskGather(FVec::zero(), Safe, U, VA);
    const FVec Ub = FVec::maskGather(FVec::zero(), Safe, U, VB);
    const FVec Flux = K * (Ua - Ub);
    Out.commit(Safe, VA, FVec::zero() - Flux);
    Out.commit(Safe, VB, Flux);

    Util.recordPass(simd::popcount(Safe), simd::popcount(Active));
    IVec Fresh = IVec::broadcast(static_cast<int32_t>(Next)) + IVec::iota();
    Fresh = IVec::expand(Safe, Fresh);
    Pos = IVec::blend(Safe, Pos, Fresh);
    Next += simd::popcount(Safe);
    Active = Pos.lt(Limit);
  }
}

/// In-vector reduction sweep: reduce -Flux by A and +Flux by B.
void sweepInvec(const Mesh &M, const float *U, int64_t Lo, int64_t Hi,
                core::FloatSink Out, ConflictCounter &MeanD1) {
  for (int64_t I = Lo; I < Hi; I += kLanes) {
    const int64_t Left = Hi - I;
    const Mask16 Active =
        Left >= kLanes ? kAllLanes
                       : static_cast<Mask16>((1u << Left) - 1u);
    const IVec VA = IVec::maskLoad(IVec::zero(), Active, M.EdgeA.data() + I);
    const IVec VB = IVec::maskLoad(IVec::zero(), Active, M.EdgeB.data() + I);
    const FVec Flux = fluxOf(Active, M, I, VA, VB, U);

    FVec Na = FVec::zero() - Flux;
    const core::InvecResult Ra =
        core::invecReduce<simd::OpAdd>(Active, VA, Na);
    Out.commit(Ra.Ret, VA, Na);

    FVec Pb = Flux;
    const core::InvecResult Rb =
        core::invecReduce<simd::OpAdd>(Active, VB, Pb);
    Out.commit(Rb.Ret, VB, Pb);
    MeanD1.add(Ra.Distinct + Rb.Distinct);
  }
}

/// Pre-grouped sweep: atoms unique across both endpoint vectors of each
/// group (groupConflictFreePairs), so both sides scatter directly.
struct GroupedMesh {
  AlignedVector<int32_t> A, Bv;
  AlignedVector<float> K;
  AlignedVector<Mask16> GroupMask;
  int64_t NumGroups = 0;
};

GroupedMesh groupMesh(const Mesh &M) {
  inspector::TilingResult Identity;
  Identity.BlockBits = 31;
  Identity.Order.resize(M.numEdges());
  for (int64_t E = 0; E < M.numEdges(); ++E)
    Identity.Order[E] = static_cast<int32_t>(E);
  Identity.TileBegin = {0, M.numEdges()};
  inspector::GroupingResult G = inspector::groupConflictFreePairs(
      M.EdgeA.data(), M.EdgeB.data(), M.NumCells, Identity, kLanes);
  GroupedMesh GM;
  GM.A = inspector::applyGrouping(G, M.EdgeA.data(), int32_t(0));
  GM.Bv = inspector::applyGrouping(G, M.EdgeB.data(), int32_t(0));
  GM.K = inspector::applyGrouping(G, M.K.data(), 0.0f);
  GM.GroupMask = std::move(G.GroupMask);
  GM.NumGroups = G.NumGroups;
  return GM;
}

void sweepGrouped(const GroupedMesh &GM, const float *U, int64_t GLo,
                  int64_t GHi, core::FloatSink Out) {
  for (int64_t G = GLo; G < GHi; ++G) {
    const Mask16 Msk = GM.GroupMask[G];
    const IVec VA = IVec::load(GM.A.data() + G * kLanes);
    const IVec VB = IVec::load(GM.Bv.data() + G * kLanes);
    const FVec K = FVec::load(GM.K.data() + G * kLanes);
    const FVec Ua = FVec::maskGather(FVec::zero(), Msk, U, VA);
    const FVec Ub = FVec::maskGather(FVec::zero(), Msk, U, VB);
    const FVec Flux = K * (Ua - Ub);
    Out.commit(Msk, VA, FVec::zero() - Flux);
    Out.commit(Msk, VB, Flux);
  }
}

} // namespace

// Compiled once per backend variant; the public apps::runMeshDiffusion
// forwards here through core::dispatch().
MeshRunResult apps::CFV_VARIANT_NS::runMeshDiffusion(const Mesh &M,
                                                     const float *U0,
                                                     int Sweeps, float Dt,
                                                     MeshVersion V,
                                                     const core::RunOptions &O) {
  MeshRunResult R;
  R.U.assign(U0, U0 + M.NumCells);
  AlignedVector<float> Res(M.NumCells, 0.0f);
  const int NumThreads = core::resolveThreads(O.Threads);
  std::vector<SimdUtilCounter> Utils(NumThreads);
  std::vector<ConflictCounter> D1s(NumThreads);

  GroupedMesh GM;
  if (V == MeshVersion::Grouping) {
    WallTimer T;
    GM = groupMesh(M);
    R.GroupSeconds = T.seconds();
    obs::Tracer::instance().recordAt("mesh:group", "inspector",
                                     monotonicSeconds() - R.GroupSeconds,
                                     R.GroupSeconds);
  }

  const std::vector<int64_t> Bounds =
      V == MeshVersion::Grouping
          ? core::chunkBounds(GM.NumGroups, NumThreads, 1)
          : core::chunkBounds(M.numEdges(), NumThreads, kLanes);
  const bool Dense = NumThreads <= 1 ||
                     core::useDensePrivatization(M.NumCells, sizeof(float),
                                                 M.numEdges(), NumThreads);
  const int Replicas = NumThreads > 1 ? NumThreads - 1 : 0;
  std::vector<AlignedVector<float>> Parts(Dense ? Replicas : 0);
  for (auto &P : Parts)
    P.assign(M.NumCells, 0.0f);
  std::vector<core::SpillListF> Spills(Dense ? 0 : Replicas);
  core::ParallelEngine &Engine = core::ParallelEngine::instance();

  const auto Body = [&](int Tid) {
    const int64_t Lo = Bounds[Tid], Hi = Bounds[Tid + 1];
    const core::FloatSink Out =
        Tid == 0 ? core::FloatSink::dense(Res.data())
        : Dense  ? core::FloatSink::dense(Parts[Tid - 1].data())
                 : core::FloatSink::spill(&Spills[Tid - 1]);
    switch (V) {
    case MeshVersion::Serial:
      sweepSerial(M, R.U.data(), Lo, Hi, Out);
      break;
    case MeshVersion::Mask:
      sweepMask(M, R.U.data(), Lo, Hi, Out, Utils[Tid]);
      break;
    case MeshVersion::Invec:
      sweepInvec(M, R.U.data(), Lo, Hi, Out, D1s[Tid]);
      break;
    case MeshVersion::Grouping:
      sweepGrouped(GM, R.U.data(), Lo, Hi, Out);
      break;
    }
  };

  WallTimer Compute;
  for (int S = 0; S < Sweeps; ++S) {
    std::fill(Res.begin(), Res.end(), 0.0f);
    Engine.run(NumThreads, Body);
    if (Dense) {
      core::mergeTreeAdd(Res.data(), Parts, M.NumCells);
    } else {
      for (auto &L : Spills) {
        core::applySpillAdd(L, Res.data());
        L.clear();
      }
    }
    for (int32_t C = 0; C < M.NumCells; ++C)
      R.U[C] += Dt * Res[C];
  }
  R.ComputeSeconds = Compute.seconds();
  SimdUtilCounter Util = Utils[0];
  ConflictCounter MeanD1 = D1s[0];
  for (int T = 1; T < NumThreads; ++T) {
    Util.merge(Utils[T]);
    MeanD1.merge(D1s[T]);
  }
  R.SimdUtil = Util.utilization();
  R.UtilHist = Util.laneHistogram();
  R.MeanD1 = MeanD1.count() ? MeanD1.mean() / 2.0 : 0.0;
  R.D1Hist = MeanD1.histogram();
  return R;
}
