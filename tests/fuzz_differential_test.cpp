//===- tests/fuzz_differential_test.cpp - Cross-component fuzzing ---------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Randomized end-to-end pipelines: the same scatter-add workload pushed
// through (a) a scalar loop, (b) the conflict-masking driver, (c) the
// in-vector reduction block loop on each backend, and (d) the
// Algorithm 2 two-array protocol, over thousands of generated cases with
// mixed duplicate densities, stream lengths (including non-multiple-of-16
// tails), and operators.  The per-module sweeps prove each unit; this
// suite proves the compositions the applications rely on.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "core/InvecReduce.h"
#include "masking/ConflictMask.h"

#include <vector>

using namespace cfv;
using namespace cfv::core;
using namespace cfv::simd;
using namespace cfv::test;

namespace {

struct FuzzCase {
  AlignedVector<int32_t> Idx;
  AlignedVector<float> Val;
  int32_t ArraySize;
};

FuzzCase makeCase(Xoshiro256 &Rng) {
  FuzzCase C;
  // Sizes straddle vector boundaries; universes straddle density regimes.
  const int64_t N = 1 + Rng.nextBounded(200);
  const uint32_t Universe = 1 + Rng.nextBounded(64);
  C.ArraySize = 64;
  C.Idx.resize(N);
  C.Val.resize(N);
  for (int64_t I = 0; I < N; ++I) {
    C.Idx[I] = static_cast<int32_t>(Rng.nextBounded(Universe));
    C.Val[I] = Rng.nextFloat() - 0.5f;
  }
  return C;
}

AlignedVector<double> scalarScatterAdd(const FuzzCase &C) {
  AlignedVector<double> Out(C.ArraySize, 0.0);
  for (std::size_t I = 0; I < C.Idx.size(); ++I)
    Out[C.Idx[I]] += C.Val[I];
  return Out;
}

template <typename B> AlignedVector<float> invecScatterAdd(const FuzzCase &C) {
  AlignedVector<float> Out(C.ArraySize, 0.0f);
  const int64_t N = static_cast<int64_t>(C.Idx.size());
  for (int64_t I = 0; I < N; I += kLanes) {
    const int64_t Left = N - I;
    const Mask16 Active =
        Left >= kLanes ? kAllLanes
                       : static_cast<Mask16>((1u << Left) - 1u);
    const auto Idx =
        VecI32<B>::maskLoad(VecI32<B>::zero(), Active, C.Idx.data() + I);
    auto Val =
        VecF32<B>::maskLoad(VecF32<B>::zero(), Active, C.Val.data() + I);
    const InvecResult R = invecReduce<OpAdd>(Active, Idx, Val);
    accumulateScatter<OpAdd>(R.Ret, Idx, Val, Out.data());
  }
  return Out;
}

template <typename B> AlignedVector<float> alg2ScatterAdd(const FuzzCase &C) {
  AlignedVector<float> Out(C.ArraySize, 0.0f), Aux(C.ArraySize, 0.0f);
  const int64_t N = static_cast<int64_t>(C.Idx.size());
  for (int64_t I = 0; I < N; I += kLanes) {
    const int64_t Left = N - I;
    const Mask16 Active =
        Left >= kLanes ? kAllLanes
                       : static_cast<Mask16>((1u << Left) - 1u);
    const auto Idx =
        VecI32<B>::maskLoad(VecI32<B>::zero(), Active, C.Idx.data() + I);
    auto Val =
        VecF32<B>::maskLoad(VecF32<B>::zero(), Active, C.Val.data() + I);
    const Invec2Result R = invecReduce2<OpAdd>(Active, Idx, Val);
    accumulateScatter<OpAdd>(R.Ret1, Idx, Val, Out.data());
    accumulateScatter<OpAdd>(R.Ret2, Idx, Val, Aux.data());
  }
  mergeAux<OpAdd>(Out.data(), Aux.data(), C.ArraySize);
  return Out;
}

template <typename B> AlignedVector<float> maskScatterAdd(const FuzzCase &C) {
  AlignedVector<float> Out(C.ArraySize, 0.0f);
  using IVec = VecI32<B>;
  using FVec = VecF32<B>;
  auto LoadIdx = [&](IVec Pos, Mask16 Lanes) {
    return IVec::maskGather(IVec::zero(), Lanes, C.Idx.data(), Pos);
  };
  auto Commit = [&](Mask16 Safe, IVec Pos, IVec Idx) {
    const FVec V = FVec::maskGather(FVec::zero(), Safe, C.Val.data(), Pos);
    const FVec Old = FVec::maskGather(FVec::zero(), Safe, Out.data(), Idx);
    (Old + V).maskScatter(Safe, Out.data(), Idx);
  };
  masking::maskedStreamLoop<B>(static_cast<int64_t>(C.Idx.size()), LoadIdx,
                               masking::AllLanesNeedUpdate{}, Commit);
  return Out;
}

void expectMatches(const AlignedVector<float> &Got,
                   const AlignedVector<double> &Want, const char *Tag,
                   int Case) {
  for (std::size_t I = 0; I < Want.size(); ++I)
    ASSERT_NEAR(Got[I], Want[I], 1e-3)
        << Tag << " case " << Case << " entry " << I;
}

} // namespace

template <typename B> class FuzzPipelines : public ::testing::Test {};
TYPED_TEST_SUITE(FuzzPipelines, AllBackends, );

TYPED_TEST(FuzzPipelines, AllPipelinesAgreeOnRandomCases) {
  using B = TypeParam;
  Xoshiro256 Rng(0xF022);
  for (int Case = 0; Case < 1500; ++Case) {
    const FuzzCase C = makeCase(Rng);
    const auto Want = scalarScatterAdd(C);
    expectMatches(invecScatterAdd<B>(C), Want, "invec", Case);
    expectMatches(alg2ScatterAdd<B>(C), Want, "alg2", Case);
    expectMatches(maskScatterAdd<B>(C), Want, "mask", Case);
  }
}

#if CFV_HAVE_AVX512
TEST(FuzzPipelines, BackendsAgreeBitwiseOnIntegerPayloads) {
  // Integer addition is exact: the AVX-512 and scalar backends must
  // produce identical arrays, not merely close ones.
  Xoshiro256 Rng(0xF023);
  for (int Case = 0; Case < 1000; ++Case) {
    const int64_t N = 1 + Rng.nextBounded(150);
    AlignedVector<int32_t> Idx(N), Val(N);
    for (int64_t I = 0; I < N; ++I) {
      Idx[I] = static_cast<int32_t>(Rng.nextBounded(32));
      Val[I] = static_cast<int32_t>(Rng.nextBounded(1000)) - 500;
    }
    auto Run = [&]<typename B>() {
      AlignedVector<int32_t> Out(32, 0);
      for (int64_t I = 0; I < N; I += kLanes) {
        const int64_t Left = N - I;
        const Mask16 Active =
            Left >= kLanes ? kAllLanes
                           : static_cast<Mask16>((1u << Left) - 1u);
        const auto Iv =
            VecI32<B>::maskLoad(VecI32<B>::zero(), Active, Idx.data() + I);
        auto Vv =
            VecI32<B>::maskLoad(VecI32<B>::zero(), Active, Val.data() + I);
        const InvecResult R = invecReduce<OpAdd>(Active, Iv, Vv);
        accumulateScatter<OpAdd>(R.Ret, Iv, Vv, Out.data());
      }
      return Out;
    };
    const auto A = Run.template operator()<backend::Scalar>();
    const auto Bv = Run.template operator()<backend::Avx512>();
    ASSERT_EQ(A, Bv) << "case " << Case;
  }
}
#endif
