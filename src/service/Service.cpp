//===- service/Service.cpp - The serving layer front door -----------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "pattern/Pattern.h"
#include "util/Clock.h"
#include "util/Timer.h"

#include <utility>

using namespace cfv;
using namespace cfv::service;

//===----------------------------------------------------------------------===//
// Wire mapping
//===----------------------------------------------------------------------===//

Expected<ServeRequest> service::parseRequest(const json::Value &V) {
  if (!V.isObject())
    return Status::error(ErrorCode::InvalidArgument,
                         "request must be a JSON object");
  ServeRequest R;
  R.Id = V.getString("id", "");
  R.App = V.getString("app", "");
  if (R.App.empty())
    return Status::error(ErrorCode::InvalidArgument,
                         "request needs an \"app\" field (pagerank, sssp, ...)");
  R.Version = V.getString("version", "");
  R.File = V.getString("file", "");
  R.Dataset = V.getString("dataset", R.Dataset);
  R.Scale = V.getNumber("scale", R.Scale);
  R.Seed = static_cast<uint64_t>(
      V.getInt("seed", static_cast<int64_t>(R.Seed)));
  R.Source = static_cast<int32_t>(V.getInt("source", 0));
  R.Iters = static_cast<int>(V.getInt("iters", 0));
  R.Threads = static_cast<int>(V.getInt("threads", 0));
  R.TimeoutMs = V.getNumber("timeout_ms", 0.0);
  return R;
}

std::string ServeResponse::toJson() const {
  json::ObjectWriter W;
  if (!Id.empty())
    W.field("id", Id);
  W.field("ok", Ok);
  if (!Ok) {
    W.field("error", errorCodeName(Error.code()));
    W.field("message", Error.message());
    if (RetryAfterMs > 0)
      W.field("retry_after_ms", RetryAfterMs);
    if (!App.empty())
      W.field("app", App);
    W.field("queue_seconds", QueueSeconds);
    return W.str();
  }
  W.field("app", App)
      .field("version", Version)
      .field("backend", Backend)
      .field("lanes", Lanes)
      .field("threads", Threads)
      .field("iterations", Iterations)
      .field("checksum", Checksum)
      .field("edges_processed", EdgesProcessed)
      .field("simd_util", SimdUtil)
      .field("mean_d1", MeanD1)
      .field("queue_seconds", QueueSeconds)
      .field("load_seconds", LoadSeconds)
      .field("prep_seconds", PrepSeconds)
      .field("kernel_seconds", KernelSeconds)
      .field("cache_hit", CacheHit);
  if (!PatternMode.empty()) {
    W.field("pattern_mode", PatternMode);
    json::ObjectWriter T;
    for (int C = 0; C < 5; ++C)
      T.field(pattern::tileClassName(static_cast<pattern::TileClass>(C)),
              PatternTiles[C]);
    W.fieldRaw("pattern_tiles", T.str());
  }
  return W.str();
}

//===----------------------------------------------------------------------===//
// Service
//===----------------------------------------------------------------------===//

namespace {

/// Whether the serving layer covers \p App (has a cacheable graph input).
bool isServable(AppId App) {
  switch (App) {
  case AppId::PageRank:
  case AppId::PageRank64:
  case AppId::Sssp:
  case AppId::Sswp:
  case AppId::Wcc:
  case AppId::Bfs:
  case AppId::Rbk:
  case AppId::Spmv:
    return true;
  default:
    return false;
  }
}

bool needsWeights(AppId App) {
  return App == AppId::Sssp || App == AppId::Sswp || App == AppId::Spmv;
}

RequestScheduler::Config schedConfig(const Service::Config &C) {
  RequestScheduler::Config S;
  S.QueueDepth = C.QueueDepth;
  S.Workers = C.Workers;
  if (C.ShedQueuePct >= 0)
    S.ShedQueuePct = C.ShedQueuePct;
  if (C.ShedLatencyMs >= 0.0)
    S.ShedLatencySeconds = C.ShedLatencyMs / 1000.0;
  if (C.WatchdogMs >= 0.0)
    S.WatchdogSeconds = C.WatchdogMs / 1000.0;
  return S;
}

/// Label values come from request fields; clamp them to the safe label
/// alphabet so a hostile "app" string cannot corrupt the exposition.
std::string labelValue(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    const bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                    (C >= '0' && C <= '9') || C == '_' || C == '-';
    Out.push_back(Ok ? C : '_');
  }
  return Out.empty() ? std::string("unknown") : Out;
}

} // namespace

Service::Service(Config C)
    : Cache(C.CacheBytes < 0 ? DatasetCache::envCacheBytes() : C.CacheBytes,
            C.Loader ? std::move(C.Loader) : DatasetCache::defaultLoader()),
      Sched(schedConfig(C)) {}

std::future<ServeResponse> Service::submit(ServeRequest R) {
  auto Promise = std::make_shared<std::promise<ServeResponse>>();
  std::future<ServeResponse> Future = Promise->get_future();
  submitAsync(std::move(R),
              [Promise](ServeResponse Resp) { Promise->set_value(std::move(Resp)); });
  return Future;
}

void Service::submitAsync(ServeRequest R, Completion Done) {
  // Exactly-one-reply guard: the completion can be fired by the task
  // (normal path) or by the watchdog (stalled worker), whichever flips
  // Fired first; the loser discards its response.  Cancel tells the
  // still-running task its answer is no longer wanted.
  auto Cb = std::make_shared<Completion>(std::move(Done));
  auto Fired = std::make_shared<std::atomic<bool>>(false);
  auto Cancel = std::make_shared<std::atomic<bool>>(false);

  const std::string FairKey = R.App;
  const std::string Id = R.Id;
  const std::string App = R.App;

  int64_t RetryAfterMs = 0;
  RequestScheduler::SubmitExtras Extras;
  Extras.RetryAfterMs = &RetryAfterMs;
  Extras.OnStall = [Cb, Fired, Cancel, Id, App] {
    Cancel->store(true, std::memory_order_relaxed);
    if (!Fired->exchange(true)) {
      ServeResponse Resp;
      Resp.Ok = false;
      Resp.Id = Id;
      Resp.App = App;
      Resp.Error = Status::error(
          ErrorCode::Unavailable,
          "watchdog: worker stalled past its budget; request abandoned");
      (*Cb)(std::move(Resp));
    }
  };

  const Status Admit = Sched.submit(
      FairKey, R.TimeoutMs > 0.0 ? R.TimeoutMs / 1000.0 : 0.0,
      [this, Cb, Fired, Cancel, Req = std::move(R)](const TaskInfo &Info) {
        ServeResponse Resp = execute(Req, Info, Cancel.get());
        if (!Fired->exchange(true))
          (*Cb)(std::move(Resp));
      },
      Extras);
  if (!Admit.ok()) {
    // Backpressure: complete immediately with a structured rejection so
    // the caller sees exactly why nothing ran.
    ServeResponse Resp;
    Resp.Ok = false;
    Resp.Id = Id;
    Resp.App = App;
    Resp.Error = Admit;
    Resp.RetryAfterMs = RetryAfterMs;
    if (!Fired->exchange(true))
      (*Cb)(std::move(Resp));
  }
}

DatasetKey Service::datasetKeyFor(const ServeRequest &R) {
  DatasetKey Key;
  Key.FromFile = !R.File.empty();
  Key.Source = Key.FromFile ? R.File : R.Dataset;
  Key.Scale = R.Scale;
  const Expected<AppId> App = parseAppId(R.App);
  Key.Weighted = App.ok() && needsWeights(*App);
  Key.WeightSeed = R.Seed;
  return Key;
}

void Service::submitBatch(std::vector<BatchItem> Items) {
  if (Items.empty())
    return;
  if (Items.size() == 1) {
    submitAsync(std::move(Items[0].Req), std::move(Items[0].Done));
    return;
  }

  // Per-item exactly-once guards: the batch task, the watchdog, and the
  // admission-rejection path race per item, never per batch.
  struct Shared {
    std::vector<BatchItem> Items;
    std::vector<std::atomic<bool>> Fired;
    std::atomic<bool> Cancel{false};
    explicit Shared(std::vector<BatchItem> I)
        : Items(std::move(I)), Fired(Items.size()) {}
  };
  auto S = std::make_shared<Shared>(std::move(Items));

  auto failAll = [S](const Status &Err, int64_t RetryAfterMs) {
    for (size_t I = 0; I < S->Items.size(); ++I) {
      if (S->Fired[I].exchange(true))
        continue;
      ServeResponse Resp;
      Resp.Ok = false;
      Resp.Id = S->Items[I].Req.Id;
      Resp.App = S->Items[I].Req.App;
      Resp.Error = Err;
      Resp.RetryAfterMs = RetryAfterMs;
      S->Items[I].Done(std::move(Resp));
    }
  };

  // The batch rides one fairness slot under the first member's app key;
  // the in-queue deadline is the tightest member timeout (per-member
  // expiry is still enforced inside execute via TimeoutMs).
  double MinTimeoutMs = 0.0;
  for (const BatchItem &I : S->Items)
    if (I.Req.TimeoutMs > 0.0 &&
        (MinTimeoutMs == 0.0 || I.Req.TimeoutMs < MinTimeoutMs))
      MinTimeoutMs = I.Req.TimeoutMs;

  int64_t RetryAfterMs = 0;
  RequestScheduler::SubmitExtras Extras;
  Extras.RetryAfterMs = &RetryAfterMs;
  Extras.OnStall = [S, failAll] {
    S->Cancel.store(true, std::memory_order_relaxed);
    failAll(Status::error(
                ErrorCode::Unavailable,
                "watchdog: worker stalled past its budget; request abandoned"),
            0);
  };

  const Status Admit = Sched.submit(
      S->Items.front().Req.App, MinTimeoutMs > 0.0 ? MinTimeoutMs / 1000.0 : 0.0,
      [this, S](const TaskInfo &Info) {
        // One cache round trip feeds the whole batch: the first member
        // resolves the shared PreparedGraph (charging any load to
        // itself), and the rest execute as pure cache hits against it.
        const DatasetKey Key = datasetKeyFor(S->Items.front().Req);
        Expected<CacheLookup> Looked = Cache.get(Key);
        if (obs::enabled()) {
          obs::MetricsRegistry::instance()
              .counter("cfv_net_batches_total", "",
                       "Same-dataset micro-batches executed")
              .inc();
          obs::MetricsRegistry::instance()
              .counter("cfv_net_batch_requests_total", "",
                       "Requests served inside a micro-batch of size >= 2")
              .inc(static_cast<int64_t>(S->Items.size()));
        }
        for (size_t I = 0; I < S->Items.size(); ++I) {
          const ServeRequest &Req = S->Items[I].Req;
          ServeResponse Resp;
          if (!Looked.ok()) {
            Resp.Id = Req.Id;
            Resp.App = Req.App;
            Resp.QueueSeconds = Info.QueueSeconds;
            Resp.Ok = false;
            Resp.Error = Looked.status();
          } else {
            CacheLookup Shared = *Looked;
            if (I > 0) {
              // Members after the first see the entry the batch already
              // resolved: a hit with zero incremental load time.
              Shared.Hit = true;
              Shared.LoadSeconds = 0.0;
            }
            Resp = execute(Req, Info, &S->Cancel, &Shared);
          }
          if (!S->Fired[I].exchange(true))
            S->Items[I].Done(std::move(Resp));
        }
      },
      Extras);
  if (!Admit.ok())
    failAll(Admit, RetryAfterMs);
}

ServeResponse Service::execute(const ServeRequest &R, const TaskInfo &Info,
                               const std::atomic<bool> *Cancel,
                               const CacheLookup *Shared) {
  // The queue span is retroactive -- the wait already happened by the
  // time the task runs -- and uses the exact QueueSeconds the response
  // reports.
  obs::Tracer::instance().recordAt("service:queue", "service",
                                   monotonicSeconds() - Info.QueueSeconds,
                                   Info.QueueSeconds);
  obs::Span ExecSpan("service:execute", "service");
  WallTimer T;
  ServeResponse Resp = executeInner(R, Info, Cancel, Shared);
  if (obs::enabled()) {
    obs::MetricsRegistry &M = obs::MetricsRegistry::instance();
    const std::string App = labelValue(Resp.App);
    M.counter("cfv_requests_total",
              "app=\"" + App + "\",outcome=\"" +
                  (Resp.Ok ? "ok" : errorCodeName(Resp.Error.code())) + "\"",
              "Serving requests by app and outcome")
        .inc();
    // End-to-end latency: queue wait plus everything execute did (load,
    // prep, kernel, serialization overhead).
    M.histogram("cfv_request_seconds", obs::log2Bounds(1e-6, 26),
                "app=\"" + App + "\"",
                "End-to-end request seconds (queue + load + prep + kernel)")
        .observe(Info.QueueSeconds + T.seconds());
  }
  return Resp;
}

ServeResponse Service::executeInner(const ServeRequest &R,
                                    const TaskInfo &Info,
                                    const std::atomic<bool> *Cancel,
                                    const CacheLookup *Shared) {
  ServeResponse Resp;
  Resp.Id = R.Id;
  Resp.App = R.App;
  Resp.QueueSeconds = Info.QueueSeconds;

  auto fail = [&Resp](Status S) {
    Resp.Ok = false;
    Resp.Error = std::move(S);
    return Resp;
  };

  if (Info.DeadlineExpired)
    return fail(Status::error(ErrorCode::DeadlineExceeded,
                              "request expired after " +
                                  std::to_string(Info.QueueSeconds) +
                                  "s in queue"));

  const Expected<AppId> App = parseAppId(R.App);
  if (!App.ok())
    return fail(App.status());
  if (!isServable(*App))
    return fail(Status::error(
        ErrorCode::InvalidArgument,
        "app '" + R.App +
            "' is not servable (no cacheable dataset input); serve covers "
            "pagerank, pagerank64, sssp, sswp, wcc, bfs, rbk, spmv"));
  const Expected<AppVersion> Version =
      parseAppVersion(*App, R.Version.empty() ? "default" : R.Version);
  if (!Version.ok())
    return fail(Version.status());

  // A batch member arrives with its lookup already resolved; everyone
  // else pays their own cache round trip.
  Expected<CacheLookup> Looked =
      Shared ? Expected<CacheLookup>(*Shared)
             : Cache.get(datasetKeyFor(R));
  if (!Looked.ok())
    return fail(Looked.status());
  Resp.CacheHit = Looked->Hit;
  Resp.LoadSeconds = Looked->LoadSeconds;
  if (Resp.LoadSeconds > 0.0)
    obs::Tracer::instance().recordAt("service:load", "service",
                                     monotonicSeconds() - Resp.LoadSeconds,
                                     Resp.LoadSeconds);

  AppRequest Run;
  Run.App = *App;
  Run.Version = *Version;
  Run.Prepared = Looked->Graph.get();
  Run.Source = R.Source;
  Run.Options.Threads = R.Threads;
  if (R.Iters > 0)
    Run.Options.MaxIterations = R.Iters;
  else if (*App == AppId::Rbk || *App == AppId::Spmv)
    Run.Options.MaxIterations = 10; // keep default serve requests short
  if (R.TimeoutMs > 0.0)
    Run.Options.DeadlineSteadySeconds =
        core::steadyNowSeconds() + R.TimeoutMs / 1000.0 -
        Info.QueueSeconds; // deadline is measured from admission
  Run.Options.CancelFlag = Cancel; // watchdog abandonment stops the run

  const Expected<AppResult> Result = cfv::run(Run);
  if (!Result.ok())
    return fail(Result.status());

  Resp.Version = Result->VersionName;
  Resp.Backend = core::backendName(Result->Backend);
  Resp.Lanes = Result->Backend == core::BackendKind::Avx2 ? 8 : 16;
  Resp.Threads = Result->Threads;
  Resp.Iterations = Result->Iterations;
  Resp.TimedOut = Result->TimedOut;
  Resp.PrepSeconds = Result->PrepSeconds;
  Resp.KernelSeconds = Result->ComputeSeconds;
  Resp.SimdUtil = Result->SimdUtil;
  Resp.MeanD1 = Result->MeanD1;
  Resp.EdgesProcessed = Result->EdgesProcessed;
  Resp.PatternMode = Result->PatternModeName;
  for (int C = 0; C < 5; ++C)
    Resp.PatternTiles[C] = Result->PatternTiles[C];

  if (Result->TimedOut)
    return fail(Status::error(ErrorCode::DeadlineExceeded,
                              "deadline expired after " +
                                  std::to_string(Result->Iterations) +
                                  " iterations"));

  Resp.Ok = true;
  Resp.Checksum = resultChecksum(*Result);
  return Resp;
}

void Service::drain() { Sched.drain(); }
