//===- examples/sssp_example.cpp - Wave-frontier shortest paths -----------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The paper's Figure 2 workload: single-source shortest paths with a
// dynamic wave frontier, where the relaxation `dis_new[ny] =
// min(dis_new[ny], dis[nx] + w)` is an associative irregular reduction.
// Demonstrates that in-vector reduction handles *dynamic* active sets --
// the regime where inspector/executor reorganization cannot amortize.
//
// Build & run:  ./examples/sssp_example
//
//===----------------------------------------------------------------------===//

#include "apps/frontier/FrontierEngine.h"
#include "graph/Generators.h"

#include <cmath>
#include <cstdio>

using namespace cfv;
using namespace cfv::apps;

int main() {
  const graph::EdgeList G = graph::genRmat(/*ScaleBits=*/16,
                                           /*NumEdges=*/1000000,
                                           /*Seed=*/7, /*MaxWeight=*/64.0f);
  std::printf("graph: %d vertices, %lld weighted edges\n", G.NumNodes,
              static_cast<long long>(G.numEdges()));

  FrontierResult Serial =
      runFrontier(G, FrApp::Sssp, FrVersion::NontilingSerial);
  FrontierResult Mask =
      runFrontier(G, FrApp::Sssp, FrVersion::NontilingMask);
  FrontierResult Invec =
      runFrontier(G, FrApp::Sssp, FrVersion::NontilingInvec);

  std::printf("%-22s %6.3fs  (%d wavefront iterations, %lld edge "
              "relaxations)\n",
              "nontiling_serial", Serial.ComputeSeconds, Serial.Iterations,
              static_cast<long long>(Serial.EdgesProcessed));
  std::printf("%-22s %6.3fs  (simd_util %.1f%%)\n", "nontiling_and_mask",
              Mask.ComputeSeconds, Mask.SimdUtil * 100.0);
  std::printf("%-22s %6.3fs  (mean D1 %.4f)\n", "nontiling_and_invec",
              Invec.ComputeSeconds, Invec.MeanD1);
  std::printf("invec speedup: %.2fx over serial, %.2fx over mask\n",
              Serial.ComputeSeconds / Invec.ComputeSeconds,
              Mask.ComputeSeconds / Invec.ComputeSeconds);

  // Distance summary (identical across versions: min is exact).
  int64_t Reached = 0;
  double MaxDist = 0.0;
  for (int32_t V = 0; V < G.NumNodes; ++V) {
    if (!std::isinf(Invec.Value[V])) {
      ++Reached;
      MaxDist = std::max<double>(MaxDist, Invec.Value[V]);
    }
    if (Invec.Value[V] != Serial.Value[V]) {
      std::printf("MISMATCH at vertex %d\n", V);
      return 1;
    }
  }
  std::printf("reached %lld of %d vertices; farthest distance %.1f\n",
              static_cast<long long>(Reached), G.NumNodes, MaxDist);
  return 0;
}
