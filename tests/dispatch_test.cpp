//===- tests/dispatch_test.cpp - Runtime backend dispatch ------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Selection-rule unit tests plus backend-equivalence checks: every
// dispatched application must produce the same answer through the scalar
// table as through the best-available table.  On a host without AVX-512
// the second run degrades to scalar and the comparisons are trivially
// equal -- the graceful-fallback path itself is what's exercised then.
//
//===----------------------------------------------------------------------===//

#include "core/Dispatch.h"
#include "graph/Generators.h"
#include "util/Status.h"
#include "workload/KeyGen.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cmath>

using namespace cfv;
using namespace cfv::apps;

namespace {

/// Restores automatic backend selection after each test.
class DispatchTest : public ::testing::Test {
protected:
  void TearDown() override { core::resetBackendForTest(); }

  template <typename Fn> auto onBothBackends(Fn &&Run) {
    core::setBackend(core::BackendKind::Scalar);
    auto Scalar = Run();
    core::setBackend(core::BackendKind::Avx512); // falls back if absent
    auto Best = Run();
    core::resetBackendForTest();
    return std::make_pair(std::move(Scalar), std::move(Best));
  }
};

} // namespace

TEST_F(DispatchTest, ParseBackendKind) {
  ASSERT_TRUE(core::parseBackendKind("scalar").ok());
  EXPECT_EQ(*core::parseBackendKind("scalar"), core::BackendKind::Scalar);
  ASSERT_TRUE(core::parseBackendKind("avx512").ok());
  EXPECT_EQ(*core::parseBackendKind("avx512"), core::BackendKind::Avx512);
  const auto Bad = core::parseBackendKind("sse2");
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.status().code(), ErrorCode::InvalidArgument);
  EXPECT_NE(Bad.status().message().find("sse2"), std::string::npos);
}

TEST_F(DispatchTest, ResolvePrecedence) {
  std::string Note;
  // Explicit env value wins regardless of availability.
  EXPECT_EQ(core::resolveBackendKind("scalar", true, &Note),
            core::BackendKind::Scalar);
  EXPECT_TRUE(Note.empty());
  EXPECT_EQ(core::resolveBackendKind("avx512", false, &Note),
            core::BackendKind::Avx512);
  // No value: best available.
  EXPECT_EQ(core::resolveBackendKind(nullptr, true, &Note),
            core::BackendKind::Avx512);
  EXPECT_EQ(core::resolveBackendKind(nullptr, false, &Note),
            core::BackendKind::Scalar);
  EXPECT_EQ(core::resolveBackendKind("", true, &Note),
            core::BackendKind::Avx512);
  // Unparseable value: diagnostic note, automatic choice.
  EXPECT_EQ(core::resolveBackendKind("turbo", false, &Note),
            core::BackendKind::Scalar);
  EXPECT_NE(Note.find("turbo"), std::string::npos);
}

TEST_F(DispatchTest, TablesReportTheirKind) {
  const core::DispatchTable &S = core::dispatchFor(core::BackendKind::Scalar);
  EXPECT_EQ(S.Kind, core::BackendKind::Scalar);
  EXPECT_STREQ(S.Name, "scalar");

  const core::DispatchTable &B = core::dispatchFor(core::BackendKind::Avx512);
  if (core::avx512Available()) {
    EXPECT_EQ(B.Kind, core::BackendKind::Avx512);
    EXPECT_STREQ(B.Name, "avx512");
    EXPECT_EQ(core::avx512UnavailableReason(), nullptr);
  } else {
    // Graceful degradation: the request resolves to the scalar table.
    EXPECT_EQ(B.Kind, core::BackendKind::Scalar);
    ASSERT_NE(core::avx512UnavailableReason(), nullptr);
  }
}

TEST_F(DispatchTest, OverrideSticksUntilReset) {
  core::setBackend(core::BackendKind::Scalar);
  EXPECT_EQ(core::dispatch().Kind, core::BackendKind::Scalar);
  core::resetBackendForTest();
  // Automatic selection never yields a table the host cannot run.
  if (!core::avx512Available()) {
    EXPECT_EQ(core::dispatch().Kind, core::BackendKind::Scalar);
  }
}

TEST_F(DispatchTest, PageRankAgreesAcrossBackends) {
  const graph::EdgeList G = graph::genRmat(10, 6000, 42);
  PageRankOptions O;
  O.MaxIterations = 5;
  O.Tolerance = 0.0f;
  const auto [A, B] = onBothBackends(
      [&] { return runPageRank(G, PrVersion::TilingInvec, O); });
  ASSERT_EQ(A.Rank.size(), B.Rank.size());
  for (std::size_t I = 0; I < A.Rank.size(); ++I)
    ASSERT_NEAR(A.Rank[I], B.Rank[I], 2e-4f) << "vertex " << I;
}

TEST_F(DispatchTest, FrontierSsspAgreesAcrossBackends) {
  const graph::EdgeList G = graph::genRmat(10, 8000, 7, /*MaxWeight=*/16.0f);
  FrontierOptions O;
  const auto [A, B] = onBothBackends(
      [&] { return runFrontier(G, FrApp::Sssp, FrVersion::NontilingInvec, O); });
  ASSERT_EQ(A.Value.size(), B.Value.size());
  for (std::size_t I = 0; I < A.Value.size(); ++I)
    ASSERT_FLOAT_EQ(A.Value[I], B.Value[I]) << "vertex " << I;
}

TEST_F(DispatchTest, AggregationAgreesAcrossBackends) {
  const int64_t Rows = 50000;
  const int32_t Card = 512;
  const auto Keys = workload::genKeys(workload::KeyDist::Zipf, Rows, Card, 11);
  const auto Vals = workload::genValues(Rows, 12);
  const auto [A, B] = onBothBackends([&] {
    return runAggregation(Keys.data(), Vals.data(), Rows, Card,
                          AggVersion::LinearInvec);
  });
  ASSERT_EQ(A.Groups.size(), B.Groups.size());
  for (std::size_t I = 0; I < A.Groups.size(); ++I) {
    ASSERT_EQ(A.Groups[I].Key, B.Groups[I].Key);
    ASSERT_EQ(A.Groups[I].Cnt, B.Groups[I].Cnt);
    ASSERT_NEAR(A.Groups[I].Sum, B.Groups[I].Sum,
                1e-4f * (1.0f + std::abs(A.Groups[I].Sum)));
  }
}

TEST_F(DispatchTest, ReduceByKeyAgreesAcrossBackends) {
  const int64_t N = 20000;
  auto Keys = workload::genKeys(workload::KeyDist::Zipf, N, 256, 21);
  std::sort(Keys.begin(), Keys.end());
  const auto Vals = workload::genValues(N, 22);
  struct Out {
    AlignedVector<int32_t> K;
    AlignedVector<float> V;
    int64_t Runs;
  };
  const auto [A, B] = onBothBackends([&] {
    Out O;
    O.K.resize(N);
    O.V.resize(N);
    O.Runs = reduceByKeyInvec(Keys.data(), Vals.data(), N, O.K.data(),
                              O.V.data());
    return O;
  });
  ASSERT_EQ(A.Runs, B.Runs);
  for (int64_t I = 0; I < A.Runs; ++I) {
    ASSERT_EQ(A.K[I], B.K[I]);
    ASSERT_NEAR(A.V[I], B.V[I], 1e-4f * (1.0f + std::abs(A.V[I])));
  }
}

TEST_F(DispatchTest, MoldynAgreesAcrossBackends) {
  MoldynOptions O;
  O.Cells = 4;
  const auto [A, B] =
      onBothBackends([&] { return runMoldyn(O, MdVersion::TilingInvec, 2); });
  EXPECT_EQ(A.Atoms, B.Atoms);
  EXPECT_EQ(A.Pairs, B.Pairs);
  EXPECT_NEAR(A.FinalKinetic, B.FinalKinetic,
              1e-3 * (1.0 + std::abs(A.FinalKinetic)));
  EXPECT_NEAR(A.FinalPotential, B.FinalPotential,
              1e-3 * (1.0 + std::abs(A.FinalPotential)));
}

TEST_F(DispatchTest, SpmvAgreesAcrossBackends) {
  const graph::EdgeList M = graph::genRmat(9, 4000, 33, /*MaxWeight=*/4.0f);
  AlignedVector<float> X(M.NumNodes, 1.0f);
  const auto [A, B] = onBothBackends(
      [&] { return runSpmv(M, X.data(), SpmvVersion::CooInvec, 1); });
  ASSERT_EQ(A.Y.size(), B.Y.size());
  for (std::size_t I = 0; I < A.Y.size(); ++I)
    ASSERT_NEAR(A.Y[I], B.Y[I], 1e-4f * (1.0f + std::abs(A.Y[I])));
}

TEST_F(DispatchTest, MeshAgreesAcrossBackends) {
  const Mesh M = makeTriangulatedGrid(16, 16, 5);
  AlignedVector<float> U0(M.NumCells, 0.0f);
  U0[0] = 100.0f;
  const auto [A, B] = onBothBackends([&] {
    return runMeshDiffusion(M, U0.data(), 10, 0.2f, MeshVersion::Invec);
  });
  ASSERT_EQ(A.U.size(), B.U.size());
  for (std::size_t I = 0; I < A.U.size(); ++I)
    ASSERT_NEAR(A.U[I], B.U[I], 1e-4f * (1.0f + std::abs(A.U[I])));
}
