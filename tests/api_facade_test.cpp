//===- tests/api_facade_test.cpp - Unified run API -------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// cfv::run(AppRequest) facade: name parsing, happy path through every
// application, structured error reporting, and the no-global-mutation
// guarantee for per-request backend selection.
//
//===----------------------------------------------------------------------===//

#include "core/Api.h"
#include "graph/Generators.h"
#include "workload/KeyGen.h"

#include "gtest/gtest.h"

#include <cmath>

using namespace cfv;

namespace {

/// Small shared inputs, built once per process.
struct Fixtures {
  graph::EdgeList G = graph::genRmat(9, 4000, 42, /*MaxWeight=*/8.0f);
  graph::EdgeList Unweighted = graph::genRmat(9, 4000, 43);
  AlignedVector<int32_t> Keys =
      workload::genKeys(workload::KeyDist::Zipf, 20000, 256, 11);
  AlignedVector<float> Vals = workload::genValues(20000, 12);
  apps::Mesh M = apps::makeTriangulatedGrid(12, 12, 5);
  AlignedVector<float> U0;
  Fixtures() {
    U0.assign(M.NumCells, 0.0f);
    U0[0] = 50.0f;
  }
  static const Fixtures &get() {
    static Fixtures F;
    return F;
  }
};

AppRequest baseRequest(AppId App) {
  const Fixtures &F = Fixtures::get();
  AppRequest R;
  R.App = App;
  R.Graph = &F.G;
  R.Keys = F.Keys.data();
  R.Vals = F.Vals.data();
  R.Rows = 20000;
  R.Cardinality = 256;
  R.Moldyn.Cells = 4;
  R.MeshIn = &F.M;
  R.U0 = F.U0.data();
  R.Options.MaxIterations = 3;
  R.Options.Threads = 1; // deterministic regardless of CFV_THREADS
  return R;
}

void expectInvalid(const AppRequest &R, const char *What) {
  const Expected<AppResult> Res = run(R);
  ASSERT_FALSE(Res.ok()) << What;
  EXPECT_EQ(Res.status().code(), ErrorCode::InvalidArgument) << What;
  EXPECT_FALSE(Res.status().message().empty()) << What;
}

} // namespace

//===----------------------------------------------------------------------===//
// Name parsing
//===----------------------------------------------------------------------===//

TEST(ParseAppId, KnownAndUnknown) {
  const struct {
    const char *Name;
    AppId Want;
  } Cases[] = {
      {"pagerank", AppId::PageRank}, {"pagerank64", AppId::PageRank64},
      {"sssp", AppId::Sssp},         {"sswp", AppId::Sswp},
      {"wcc", AppId::Wcc},           {"bfs", AppId::Bfs},
      {"moldyn", AppId::Moldyn},     {"agg", AppId::Agg},
      {"rbk", AppId::Rbk},           {"spmv", AppId::Spmv},
      {"mesh", AppId::Mesh},
  };
  for (const auto &C : Cases) {
    const Expected<AppId> Got = parseAppId(C.Name);
    ASSERT_TRUE(Got.ok()) << C.Name;
    EXPECT_EQ(*Got, C.Want);
    EXPECT_STREQ(appIdName(*Got), C.Name);
  }
  const Expected<AppId> Bad = parseAppId("warshall");
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.status().code(), ErrorCode::InvalidArgument);
  EXPECT_NE(Bad.status().message().find("warshall"), std::string::npos);
}

TEST(ParseAppVersion, UnifiedAndHistoricalSpellings) {
  // The unified names.
  EXPECT_EQ(*parseAppVersion(AppId::PageRank, "default"), AppVersion::Default);
  EXPECT_EQ(*parseAppVersion(AppId::PageRank, "invec"), AppVersion::Invec);
  EXPECT_EQ(*parseAppVersion(AppId::Spmv, "csr_serial"),
            AppVersion::CsrSerial);
  EXPECT_EQ(*parseAppVersion(AppId::Agg, "bucket_invec"),
            AppVersion::BucketInvec);
  // Historical per-app spellings keep working.
  EXPECT_EQ(*parseAppVersion(AppId::PageRank, "tiling_and_invec"),
            AppVersion::Invec);
  EXPECT_EQ(*parseAppVersion(AppId::Sssp, "nontiling_and_mask"),
            AppVersion::Mask);
  EXPECT_EQ(*parseAppVersion(AppId::Agg, "linear_serial"),
            AppVersion::Serial);
  EXPECT_EQ(*parseAppVersion(AppId::Spmv, "coo_grouping"),
            AppVersion::Grouping);
}

TEST(ParseAppVersion, RejectsVersionForeignToApp) {
  // Valid spellings that the given app does not implement.
  const Expected<AppVersion> A = parseAppVersion(AppId::PageRank, "csr_serial");
  ASSERT_FALSE(A.ok());
  EXPECT_EQ(A.status().code(), ErrorCode::InvalidArgument);
  EXPECT_FALSE(parseAppVersion(AppId::Mesh, "bucket_invec").ok());
  EXPECT_FALSE(parseAppVersion(AppId::Rbk, "invec").ok());
  // Unknown spelling anywhere.
  EXPECT_FALSE(parseAppVersion(AppId::PageRank, "hyperspeed").ok());
}

//===----------------------------------------------------------------------===//
// Happy path through every application
//===----------------------------------------------------------------------===//

TEST(RunFacade, PageRank) {
  AppRequest R = baseRequest(AppId::PageRank);
  const Expected<AppResult> Res = run(R);
  ASSERT_TRUE(Res.ok()) << Res.status().message();
  EXPECT_EQ(Res->App, AppId::PageRank);
  EXPECT_EQ(Res->VersionName, "tiling_and_invec");
  EXPECT_EQ(Res->Threads, 1);
  EXPECT_EQ(Res->Iterations, 3);
  ASSERT_EQ(Res->Values.size(), static_cast<std::size_t>(Fixtures::get().G.NumNodes));
  // Dangling vertices leak mass, so the total is only bounded by 1.
  double Mass = 0.0;
  for (const float V : Res->Values) {
    EXPECT_GT(V, 0.0f);
    Mass += V;
  }
  EXPECT_GT(Mass, 0.0);
  EXPECT_LT(Mass, 1.0 + 1e-3);
  EXPECT_GT(Res->EdgesProcessed, 0);
}

TEST(RunFacade, PageRank64) {
  AppRequest R = baseRequest(AppId::PageRank64);
  const Expected<AppResult> Res = run(R);
  ASSERT_TRUE(Res.ok()) << Res.status().message();
  EXPECT_EQ(Res->VersionName, "invec");
  ASSERT_EQ(Res->Values64.size(),
            static_cast<std::size_t>(Fixtures::get().G.NumNodes));
  double Mass = 0.0;
  for (const double V : Res->Values64) {
    EXPECT_GT(V, 0.0);
    Mass += V;
  }
  EXPECT_GT(Mass, 0.0);
  EXPECT_LT(Mass, 1.0 + 1e-9);
}

TEST(RunFacade, FrontierApps) {
  for (const AppId App : {AppId::Sssp, AppId::Sswp, AppId::Wcc, AppId::Bfs}) {
    AppRequest R = baseRequest(App);
    R.Options.MaxIterations = 0; // app default (1000)
    R.Source = 1;
    const Expected<AppResult> Res = run(R);
    ASSERT_TRUE(Res.ok()) << Res.status().message();
    EXPECT_EQ(Res->VersionName, "nontiling_and_invec");
    ASSERT_EQ(Res->Values.size(),
              static_cast<std::size_t>(Fixtures::get().G.NumNodes));
    EXPECT_GT(Res->Iterations, 0);
  }
}

TEST(RunFacade, FacadeMatchesDirectCall) {
  // Same options through the facade and the classic entry point must
  // produce bit-identical output.
  AppRequest R = baseRequest(AppId::PageRank);
  R.Options.Backend = core::BackendChoice::Scalar;
  const Expected<AppResult> Res = run(R);
  ASSERT_TRUE(Res.ok());

  apps::PageRankOptions O;
  O.MaxIterations = 3;
  O.Threads = 1;
  const apps::PageRankResult Direct =
      core::dispatchFor(core::BackendKind::Scalar)
          .PageRank(Fixtures::get().G, apps::PrVersion::TilingInvec, O);
  ASSERT_EQ(Res->Values.size(), Direct.Rank.size());
  for (std::size_t I = 0; I < Direct.Rank.size(); ++I)
    ASSERT_EQ(Res->Values[I], Direct.Rank[I]) << "vertex " << I;
}

TEST(RunFacade, Moldyn) {
  AppRequest R = baseRequest(AppId::Moldyn);
  R.Options.MaxIterations = 2;
  const Expected<AppResult> Res = run(R);
  ASSERT_TRUE(Res.ok()) << Res.status().message();
  EXPECT_GT(Res->Moldyn.Atoms, 0);
  EXPECT_GT(Res->Moldyn.Pairs, 0);
  EXPECT_TRUE(std::isfinite(Res->Moldyn.FinalPotential));
}

TEST(RunFacade, Aggregation) {
  AppRequest R = baseRequest(AppId::Agg);
  const Expected<AppResult> Res = run(R);
  ASSERT_TRUE(Res.ok()) << Res.status().message();
  EXPECT_EQ(Res->VersionName, "linear_invec");
  ASSERT_FALSE(Res->Groups.empty());
  int64_t Cnt = 0;
  for (const auto &G : Res->Groups)
    Cnt += G.Cnt;
  EXPECT_EQ(Cnt, 20000);
}

TEST(RunFacade, ReduceByKey) {
  AppRequest R = baseRequest(AppId::Rbk);
  R.Options.MaxIterations = 2;
  const Expected<AppResult> Res = run(R);
  ASSERT_TRUE(Res.ok()) << Res.status().message();
  // The three contenders in the comparison must agree on the answer.
  EXPECT_NEAR(Res->Rbk.InvecChecksum, Res->Rbk.FusedSerialChecksum,
              1e-4 * (1.0 + std::abs(Res->Rbk.FusedSerialChecksum)));
}

TEST(RunFacade, Spmv) {
  AppRequest R = baseRequest(AppId::Spmv);
  R.Options.MaxIterations = 1;
  const Expected<AppResult> Res = run(R); // null X -> vector of ones
  ASSERT_TRUE(Res.ok()) << Res.status().message();
  ASSERT_EQ(Res->Values.size(),
            static_cast<std::size_t>(Fixtures::get().G.NumNodes));
  double Norm = 0.0;
  for (const float V : Res->Values)
    Norm += double(V) * V;
  EXPECT_GT(Norm, 0.0);
}

TEST(RunFacade, Mesh) {
  AppRequest R = baseRequest(AppId::Mesh);
  R.Options.MaxIterations = 5;
  R.Dt = 0.2f;
  const Expected<AppResult> Res = run(R);
  ASSERT_TRUE(Res.ok()) << Res.status().message();
  ASSERT_EQ(Res->Values.size(),
            static_cast<std::size_t>(Fixtures::get().M.NumCells));
  // Diffusion conserves the total.
  double Total = 0.0;
  for (const float V : Res->Values)
    Total += V;
  EXPECT_NEAR(Total, 50.0, 1e-2);
}

TEST(RunFacade, ThreadsAreResolvedAndReported) {
  AppRequest R = baseRequest(AppId::PageRank);
  R.Options.Threads = 3;
  const Expected<AppResult> Res = run(R);
  ASSERT_TRUE(Res.ok());
  EXPECT_EQ(Res->Threads, 3);
}

TEST(RunFacade, ExplicitBackendDoesNotMutateGlobalDispatch) {
  const core::BackendKind Before = core::dispatch().Kind;
  AppRequest R = baseRequest(AppId::PageRank);
  R.Options.Backend = core::BackendChoice::Scalar;
  const Expected<AppResult> Res = run(R);
  ASSERT_TRUE(Res.ok());
  EXPECT_EQ(Res->Backend, core::BackendKind::Scalar);
  EXPECT_EQ(core::dispatch().Kind, Before);
}

//===----------------------------------------------------------------------===//
// Error reporting
//===----------------------------------------------------------------------===//

TEST(RunFacadeErrors, GraphValidation) {
  AppRequest R = baseRequest(AppId::PageRank);
  R.Graph = nullptr;
  expectInvalid(R, "null graph");

  R = baseRequest(AppId::Sssp);
  R.Graph = &Fixtures::get().Unweighted;
  expectInvalid(R, "sssp needs weights");

  R = baseRequest(AppId::Spmv);
  R.Graph = &Fixtures::get().Unweighted;
  expectInvalid(R, "spmv needs weights");

  R = baseRequest(AppId::Sssp);
  R.Source = -1;
  expectInvalid(R, "negative source");
  R.Source = Fixtures::get().G.NumNodes;
  expectInvalid(R, "source past last vertex");
}

TEST(RunFacadeErrors, VersionForeignToApp) {
  AppRequest R = baseRequest(AppId::PageRank);
  R.Version = AppVersion::CsrSerial;
  expectInvalid(R, "csr_serial for pagerank");

  R = baseRequest(AppId::Rbk);
  R.Version = AppVersion::Invec;
  expectInvalid(R, "rbk only runs the comparison");
}

TEST(RunFacadeErrors, NegativeThreads) {
  AppRequest R = baseRequest(AppId::PageRank);
  R.Options.Threads = -1;
  expectInvalid(R, "negative threads");
}

TEST(RunFacadeErrors, AggregationInputs) {
  AppRequest R = baseRequest(AppId::Agg);
  R.Keys = nullptr;
  expectInvalid(R, "null keys");

  R = baseRequest(AppId::Agg);
  R.Vals = nullptr;
  expectInvalid(R, "null values");

  R = baseRequest(AppId::Agg);
  R.Rows = 0;
  expectInvalid(R, "zero rows");

  R = baseRequest(AppId::Agg);
  R.Cardinality = 0;
  expectInvalid(R, "zero cardinality");

  R = baseRequest(AppId::Agg);
  R.Cardinality = (int64_t(1) << 24) + 1;
  expectInvalid(R, "cardinality past cap");
}

TEST(RunFacadeErrors, MoldynAndMeshInputs) {
  AppRequest R = baseRequest(AppId::Moldyn);
  R.Moldyn.Cells = 0;
  expectInvalid(R, "zero cells");

  R = baseRequest(AppId::Mesh);
  R.MeshIn = nullptr;
  expectInvalid(R, "null mesh");

  R = baseRequest(AppId::Mesh);
  R.U0 = nullptr;
  expectInvalid(R, "null initial state");
}
