//===- tests/aggregation_test.cpp - Hash-based aggregation ---------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/agg/Aggregation.h"

#include "util/Prng.h"
#include "workload/KeyGen.h"

#include "gtest/gtest.h"

#include <cmath>
#include <map>

using namespace cfv;
using namespace cfv::apps;
using namespace cfv::workload;

namespace {

struct RefAgg {
  double Cnt = 0, Sum = 0, SumSq = 0;
};

std::map<int32_t, RefAgg> refAggregate(const AlignedVector<int32_t> &Keys,
                                       const AlignedVector<float> &Vals) {
  std::map<int32_t, RefAgg> M;
  for (std::size_t I = 0; I < Keys.size(); ++I) {
    RefAgg &A = M[Keys[I]];
    A.Cnt += 1;
    A.Sum += Vals[I];
    A.SumSq += static_cast<double>(Vals[I]) * Vals[I];
  }
  return M;
}

void expectMatchesReference(const AggResult &R,
                            const std::map<int32_t, RefAgg> &Ref,
                            const char *Tag) {
  ASSERT_EQ(R.Groups.size(), Ref.size()) << Tag;
  auto It = Ref.begin();
  for (const GroupAgg &G : R.Groups) {
    ASSERT_EQ(G.Key, It->first) << Tag;
    ASSERT_EQ(G.Cnt, static_cast<float>(It->second.Cnt))
        << Tag << " key " << G.Key << " (counts are exact)";
    ASSERT_NEAR(G.Sum, It->second.Sum, 1e-2 + 1e-4 * It->second.Cnt)
        << Tag << " key " << G.Key;
    ASSERT_NEAR(G.SumSq, It->second.SumSq, 1e-2 + 1e-4 * It->second.Cnt)
        << Tag << " key " << G.Key;
    ++It;
  }
}

constexpr AggVersion kAllVersions[] = {
    AggVersion::LinearSerial, AggVersion::LinearMask,
    AggVersion::BucketMask, AggVersion::LinearInvec,
    AggVersion::BucketInvec};

struct AggCase {
  KeyDist Dist;
  int32_t Cardinality;
};

} // namespace

class AggSweep
    : public ::testing::TestWithParam<std::tuple<AggVersion, AggCase>> {};

TEST_P(AggSweep, MatchesReference) {
  const auto [Version, Case] = GetParam();
  const int64_t N = 40000;
  const auto Keys = genKeys(Case.Dist, N, Case.Cardinality, 0x5EED);
  const auto Vals = genValues(N, 0xF00D);
  const auto Ref = refAggregate(Keys, Vals);
  const AggResult R =
      runAggregation(Keys.data(), Vals.data(), N, Case.Cardinality, Version);
  expectMatchesReference(R, Ref, versionName(Version));
}

INSTANTIATE_TEST_SUITE_P(
    VersionsTimesDistributions, AggSweep,
    ::testing::Combine(
        ::testing::ValuesIn(kAllVersions),
        ::testing::Values(AggCase{KeyDist::HeavyHitter, 64},
                          AggCase{KeyDist::HeavyHitter, 4096},
                          AggCase{KeyDist::Zipf, 64},
                          AggCase{KeyDist::Zipf, 4096},
                          AggCase{KeyDist::MovingCluster, 256},
                          AggCase{KeyDist::Uniform, 1},
                          AggCase{KeyDist::Uniform, 17},
                          AggCase{KeyDist::Uniform, 8192})),
    [](const auto &Info) {
      const AggVersion V = std::get<0>(Info.param);
      const AggCase C = std::get<1>(Info.param);
      std::string D = distName(C.Dist);
      for (char &Ch : D) {
        if (Ch == ' ')
          Ch = '_';
      }
      return std::string(versionName(V)) + "_" + D + "_" +
             std::to_string(C.Cardinality);
    });

class AggVersions : public ::testing::TestWithParam<AggVersion> {};

TEST_P(AggVersions, EmptyInput) {
  const AggResult R = runAggregation(nullptr, nullptr, 0, 16, GetParam());
  EXPECT_EQ(R.numGroups(), 0);
}

TEST_P(AggVersions, SingleRow) {
  const int32_t K = 5;
  const float V = 2.0f;
  const AggResult R = runAggregation(&K, &V, 1, 16, GetParam());
  ASSERT_EQ(R.numGroups(), 1);
  EXPECT_EQ(R.Groups[0].Key, 5);
  EXPECT_EQ(R.Groups[0].Cnt, 1.0f);
  EXPECT_EQ(R.Groups[0].Sum, 2.0f);
  EXPECT_EQ(R.Groups[0].SumSq, 4.0f);
}

TEST_P(AggVersions, TailUnderOneVector) {
  AlignedVector<int32_t> Keys = {3, 3, 1, 3, 1};
  AlignedVector<float> Vals = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  const AggResult R =
      runAggregation(Keys.data(), Vals.data(), 5, 8, GetParam());
  ASSERT_EQ(R.numGroups(), 2);
  EXPECT_EQ(R.Groups[0].Key, 1);
  EXPECT_EQ(R.Groups[0].Cnt, 2.0f);
  EXPECT_FLOAT_EQ(R.Groups[0].Sum, 8.0f);
  EXPECT_EQ(R.Groups[1].Key, 3);
  EXPECT_EQ(R.Groups[1].Cnt, 3.0f);
  EXPECT_FLOAT_EQ(R.Groups[1].Sum, 7.0f);
}

TEST_P(AggVersions, AllRowsOneKey) {
  const int64_t N = 1000;
  AlignedVector<int32_t> Keys(N, 7);
  AlignedVector<float> Vals(N, 0.5f);
  const AggResult R =
      runAggregation(Keys.data(), Vals.data(), N, 8, GetParam());
  ASSERT_EQ(R.numGroups(), 1);
  EXPECT_EQ(R.Groups[0].Cnt, 1000.0f);
  EXPECT_NEAR(R.Groups[0].Sum, 500.0f, 0.1f);
}

INSTANTIATE_TEST_SUITE_P(AllVersions, AggVersions,
                         ::testing::ValuesIn(kAllVersions),
                         [](const auto &Info) {
                           return versionName(Info.param);
                         });

TEST(Aggregation, InvecReportsHighD1UnderHeavyHitter) {
  const int64_t N = 40000;
  const auto Keys = genKeys(KeyDist::HeavyHitter, N, 1 << 14, 1);
  const auto Vals = genValues(N, 2);
  const AggResult R = runAggregation(Keys.data(), Vals.data(), N, 1 << 14,
                                     AggVersion::LinearInvec);
  // Half the rows share one key: each vector has ~8 copies of it, so at
  // least one distinct conflicting lane almost every time.
  EXPECT_GT(R.MeanD1, 0.5);
}

TEST(Aggregation, MaskUtilizationDropsUnderHeavyHitter) {
  const int64_t N = 40000;
  const auto Vals = genValues(N, 3);
  const auto Hot = genKeys(KeyDist::HeavyHitter, N, 1 << 14, 4);
  const auto Flat = genKeys(KeyDist::Uniform, N, 1 << 14, 4);
  const AggResult Rh = runAggregation(Hot.data(), Vals.data(), N, 1 << 14,
                                      AggVersion::LinearMask);
  const AggResult Rf = runAggregation(Flat.data(), Vals.data(), N, 1 << 14,
                                      AggVersion::LinearMask);
  EXPECT_LT(Rh.SimdUtil, Rf.SimdUtil)
      << "the hot key must depress mask utilization";
}

class AggPolicies : public ::testing::TestWithParam<InvecPolicy> {};

TEST_P(AggPolicies, AllPoliciesProduceIdenticalGroups) {
  const int64_t N = 30000;
  for (const KeyDist D :
       {KeyDist::HeavyHitter, KeyDist::Zipf, KeyDist::MovingCluster,
        KeyDist::Uniform}) {
    const auto Keys = genKeys(D, N, 512, 0xA11);
    const auto Vals = genValues(N, 0xA12);
    const auto Ref = refAggregate(Keys, Vals);
    const AggResult R = runAggregationWithPolicy(Keys.data(), Vals.data(),
                                                 N, 512, GetParam());
    expectMatchesReference(R, Ref, distName(D));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, AggPolicies,
                         ::testing::Values(InvecPolicy::Alg1,
                                           InvecPolicy::Alg2,
                                           InvecPolicy::Adaptive),
                         [](const auto &Info) {
                           switch (Info.param) {
                           case InvecPolicy::Alg1:
                             return "Alg1";
                           case InvecPolicy::Alg2:
                             return "Alg2";
                           default:
                             return "Adaptive";
                           }
                         });

TEST(Aggregation, AdversarialSlotCollisions) {
  // Keys spaced so the Fibonacci multiply-shift maps many of them into a
  // narrow slot range: long probe chains and frequent distinct-key slot
  // collisions in the vectorized paths.
  const int64_t N = 20000;
  AlignedVector<int32_t> Keys(N);
  Xoshiro256 Rng(0xC0);
  for (int64_t I = 0; I < N; ++I) {
    // 64 keys that are consecutive multiples of a power of two: the
    // multiplicative hash keeps them clustered in the upper bits.
    Keys[I] = static_cast<int32_t>(Rng.nextBounded(64)) << 10;
  }
  const auto Vals = genValues(N, 0xC1);
  const auto Ref = refAggregate(Keys, Vals);
  for (const AggVersion V : kAllVersions) {
    const AggResult R =
        runAggregation(Keys.data(), Vals.data(), N, 1 << 16, V);
    expectMatchesReference(R, Ref, versionName(V));
  }
}

TEST(Aggregation, CardinalityHintMayOverestimate) {
  // Sizing by an upper bound far above the true distinct count must not
  // change results.
  const int64_t N = 5000;
  const auto Keys = genKeys(KeyDist::Uniform, N, 32, 0xC2);
  const auto Vals = genValues(N, 0xC3);
  const auto Ref = refAggregate(Keys, Vals);
  for (const AggVersion V : kAllVersions) {
    const AggResult R =
        runAggregation(Keys.data(), Vals.data(), N, 1 << 18, V);
    expectMatchesReference(R, Ref, versionName(V));
  }
}

TEST(Aggregation, ThroughputReported) {
  const int64_t N = 100000;
  const auto Keys = genKeys(KeyDist::Uniform, N, 256, 5);
  const auto Vals = genValues(N, 6);
  const AggResult R = runAggregation(Keys.data(), Vals.data(), N, 256,
                                     AggVersion::LinearSerial);
  EXPECT_GT(R.MRowsPerSec, 0.0);
  EXPECT_GT(R.Seconds, 0.0);
}
