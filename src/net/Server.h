//===- net/Server.h - async multi-client serve front-end --------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event-loop network front-end of cfv_serve --port: many concurrent
/// NDJSON clients over one epoll loop (net::EventLoop), replacing the
/// old one-client-at-a-time accept loop.  Per connection it runs the
/// same protocol the stdin session speaks (service::classifyLine), plus:
///
///  - Pipelining with out-of-order delivery: every request line is
///    admitted immediately and its response line is written when it
///    completes, identified by the echoed "id" -- a slow request never
///    blocks the fast one behind it on the same connection.
///  - Same-dataset micro-batching (net::Batcher): request lines arriving
///    within CFV_BATCH_WINDOW_US that resolve to one dataset identity
///    ride a single scheduler admission and a single cache lookup
///    (Service::submitBatch); replies fan back out per request.
///  - Admission control before parsing: when the scheduler's overload
///    watermarks (queue depth, latency EWMA -- see RequestScheduler)
///    would shed, a request line is answered {"error":"overloaded",
///    "retry_after_ms":...} from a cheap id scan without JSON parsing.
///    Control verbs ({"cmd":...}) and HTTP lines are exempt: operators
///    must be able to observe an overloaded server.
///  - Connection limits (CFV_MAX_CONNS) enforced by accept gating: at
///    the cap the listener's EPOLLIN interest is dropped, so new
///    clients queue in the (CFV_LISTEN_BACKLOG-deep) accept queue
///    instead of being churned through accept+close.
///  - Write backpressure: responses buffer per connection, flush as far
///    as the socket allows (netio::writeSome), and EPOLLOUT continues
///    partial writes; past a buffer cap the connection's read interest
///    is shed until the client drains what it owes.
///  - Idle timeouts (CFV_IDLE_TIMEOUT_MS), the serve.conn_drop fault
///    point on the write path, and SIGTERM graceful drain: stop
///    accepting, stop reading, flush held batches, answer everything in
///    flight, then close.
///  - A minimal real HTTP/1.1 GET surface on the same port: /metrics
///    (Prometheus text exposition) and /healthz, keep-alive honored, so
///    `curl http://127.0.0.1:<port>/metrics` scrapes a serving process.
///
/// Single-threaded by construction: every connection mutation happens on
/// the loop thread; scheduler workers hand completions back via
/// EventLoop::post.  Linux-only, like EventLoop.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_NET_SERVER_H
#define CFV_NET_SERVER_H

#include "net/Batcher.h"
#include "net/EventLoop.h"
#include "service/Service.h"
#include "util/Env.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

namespace cfv {
namespace net {

class Server {
public:
  struct Config {
    /// Listen port on 127.0.0.1; 0 picks an ephemeral port (tests/bench
    /// read it back from boundPort()).
    int Port = 0;
    /// accept(2) backlog.  The old front-end hardcoded 4, which under a
    /// connect burst overflows the SYN queue and (listen_overflows)
    /// stalls clients in retransmit; default now comes from
    /// CFV_LISTEN_BACKLOG.
    int Backlog = static_cast<int>(
        env::intVar("CFV_LISTEN_BACKLOG", 128, 1, 65535));
    /// Concurrent-connection cap (accept gating past it).
    int MaxConns = static_cast<int>(env::intVar("CFV_MAX_CONNS", 256, 1,
                                                1 << 20));
    /// Micro-batch window in microseconds; 0 still coalesces requests
    /// landing in the same loop iteration (see net::Batcher).
    int64_t BatchWindowUs = env::intVar("CFV_BATCH_WINDOW_US", 0, 0,
                                        10 * 1000 * 1000);
    /// Close connections idle (no bytes, nothing in flight) longer than
    /// this; 0 disables.
    int64_t IdleTimeoutMs = env::intVar("CFV_IDLE_TIMEOUT_MS", 0, 0,
                                        24 * 3600 * 1000);
    /// Per-connection write-buffer cap before read interest is shed.
    std::size_t MaxWriteBuffer = 4 << 20;
    /// Polled every tick; true triggers a graceful drain (the SIGTERM
    /// flag in cfv_serve).
    std::function<bool()> ShouldDrain;
  };

  Server(service::Service &Svc, Config C);
  ~Server();

  /// Binds and listens; on success boundPort() is the concrete port.
  Status listen();
  int boundPort() const { return BoundPort; }

  /// Serves until a shutdown verb or ShouldDrain, then drains: admitted
  /// work answers, buffers flush, connections close.  Returns 0 on a
  /// clean exit.
  int run();

  struct Stats {
    int64_t Accepted = 0;
    int64_t Closed = 0;
    int64_t IdleClosed = 0;
    int64_t PreparseShed = 0;
    int64_t HttpRequests = 0;
    int64_t RepliesDropped = 0; ///< completions whose connection vanished
    int64_t FlushedBatches = 0;
    int64_t FlushedBatchRequests = 0;
  };
  Stats stats() const;

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

private:
  struct Conn {
    uint64_t Id = 0;
    int Fd = -1;
    std::string RdBuf;
    std::string WrBuf;
    std::size_t WrOff = 0; ///< flushed prefix of WrBuf
    int InFlight = 0;      ///< admitted requests not yet answered
    double LastActivity = 0.0;
    bool ReadShed = false;   ///< EPOLLIN dropped for write backpressure
    bool ReadClosed = false; ///< client half-closed; replies may still owe
    bool Http = false;       ///< switched to HTTP request framing
    bool CloseAfterFlush = false;
    std::string HttpReqLine; ///< request line awaiting its blank line
    bool HttpClose = false;  ///< Connection: close (or HTTP/1.0) seen
  };

  void acceptReady();
  void connReady(uint64_t Id, uint32_t Events);
  void onReadable(Conn &C);
  void onWritable(Conn &C);
  /// Processes complete lines sitting in C.RdBuf; \p Eof additionally
  /// flushes a trailing unterminated line.
  void consumeLines(Conn &C, bool Eof);
  void handleLine(Conn &C, const std::string &Line);
  void handleHttp(Conn &C);
  void sendLine(Conn &C, const std::string &Json);
  void sendBytes(Conn &C, const std::string &Bytes);
  void flushWrites(Conn &C);
  void updateInterest(Conn &C);
  void closeConn(uint64_t Id);
  void completeOn(uint64_t ConnId, service::ServeResponse Resp);
  void flushBatch(std::vector<service::Service::BatchItem> Items);
  void beginDrain();
  void tick();
  void gateAccept();
  uint32_t eventsFor(const Conn &C) const;

  service::Service &Svc;
  const Config Cfg;
  EventLoop Loop;
  Batcher Batches;

  int Listener = -1;
  int BoundPort = 0;
  bool AcceptGated = false;
  bool Draining = false;
  bool ShutdownSeen = false;

  uint64_t NextConnId = 1;
  std::map<uint64_t, std::unique_ptr<Conn>> Conns;
  std::map<int, uint64_t> FdToConn;
  int TotalInFlight = 0;

  Stats Counters;
};

} // namespace net
} // namespace cfv

#endif // CFV_NET_SERVER_H
