//===- tests/verify_tails_test.cpp - Tail / degenerate-size coverage -----===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Every vectorized application version must agree with its serial scalar
// version on inputs whose size exercises the tail-masking path: edge
// counts of every residue modulo both vector widths (8-lane AVX2 and the
// 16-lane scalar/AVX-512 shape), the empty graph, and single-vertex
// graphs.  The streams come from the adversarial generator so the tails
// are also conflict-heavy, not benign.  The residue sweep runs once per
// SIMD tier; on hosts lacking a tier the run degrades to the next best
// backend and the comparison is still meaningful.
//
//===----------------------------------------------------------------------===//

#include "core/Api.h"
#include "verify/Gen.h"

#include "gtest/gtest.h"

#include <cmath>
#include <string>
#include <vector>

using namespace cfv;
using namespace cfv::verify;

namespace {

/// Residues 1..15 plus block-straddling sizes; 1..7 double as every
/// nonzero residue mod 8 (the AVX2 width) and 8, 9, 17, 33 straddle
/// 8-lane block boundaries.  Index 0 stays in the generator-driven sweep
/// below (the empty case is its own test).
const int64_t kTailSizes[] = {1,  2,  3,  4,  5,  6,  7,  8,  9,
                              10, 11, 12, 13, 14, 15, 16, 17, 31, 33};

/// The SIMD tiers the residue sweep pins against the scalar serial
/// reference.
const core::BackendChoice kTiers[] = {core::BackendChoice::Avx2,
                                      core::BackendChoice::Avx512};

/// Lifts a generated conflict-heavy stream of exactly \p Edges edges into
/// a weighted graph.
graph::EdgeList tailGraph(int64_t Edges, uint64_t Seed, IdxPattern P) {
  CaseSpec S;
  S.Seed = Seed;
  S.N = Edges;
  S.Universe = Edges < 8 ? static_cast<int32_t>(Edges) : 8;
  S.Idx = P;
  S.Val = ValPattern::UnitRange;
  return toEdgeList(genWorkload(S), /*Weighted=*/true);
}

Expected<AppResult> runOn(const graph::EdgeList &G, AppId App,
                          AppVersion V, int Iters,
                          core::BackendChoice Backend =
                              core::BackendChoice::Auto) {
  AppRequest R;
  R.App = App;
  R.Version = V;
  R.Graph = &G;
  R.Options.Backend = Backend;
  R.Options.Threads = 1;
  if (Iters > 0)
    R.Options.MaxIterations = Iters;
  // Spmv multiplies against a dense vector; a deterministic ramp keeps
  // every slot distinguishable.
  AlignedVector<float> X;
  if (App == AppId::Spmv) {
    X.resize(G.NumNodes);
    for (int64_t I = 0; I < G.NumNodes; ++I)
      X[I] = 0.25f + 0.5f * static_cast<float>(I % 7);
    R.X = X.data();
  }
  return run(R);
}

void expectAgree(const AppResult &Ref, const AppResult &Got,
                 const std::string &What, bool Exact) {
  ASSERT_EQ(Ref.Values.size(), Got.Values.size()) << What;
  for (std::size_t I = 0; I < Ref.Values.size(); ++I) {
    const float A = Ref.Values[I], B = Got.Values[I];
    if (Exact) {
      EXPECT_EQ(A, B) << What << " slot " << I;
    } else {
      const double Tol = 1e-5 + 1e-4 * std::fabs(A);
      EXPECT_NEAR(A, B, Tol) << What << " slot " << I;
    }
  }
}

struct VersionPlan {
  AppId App;
  std::vector<AppVersion> Vectorized;
  bool Exact; ///< min-plus style fixpoints agree exactly; sums need tol
  int Iters;
};

std::vector<VersionPlan> plans() {
  return {
      {AppId::PageRank,
       {AppVersion::Grouping, AppVersion::Mask, AppVersion::Invec},
       false,
       3},
      {AppId::Sssp,
       {AppVersion::Mask, AppVersion::Invec, AppVersion::Grouping},
       true,
       0},
      {AppId::Wcc,
       {AppVersion::Mask, AppVersion::Invec, AppVersion::Grouping},
       true,
       0},
      {AppId::Bfs,
       {AppVersion::Mask, AppVersion::Invec, AppVersion::Grouping},
       true,
       0},
      {AppId::Spmv,
       {AppVersion::CsrSerial, AppVersion::Mask, AppVersion::Invec,
        AppVersion::Grouping},
       false,
       2},
  };
}

TEST(VerifyTails, EveryResidueEveryAppVersion) {
  for (const VersionPlan &P : plans()) {
    for (int64_t Edges : kTailSizes) {
      // AllConflict makes the one partial vector also fully conflicting;
      // the generic skewed pattern covers the mixed case.
      for (IdxPattern Pat : {IdxPattern::AllConflict, IdxPattern::Zipf}) {
        const graph::EdgeList G =
            tailGraph(Edges, 0xE0 + static_cast<uint64_t>(Edges), Pat);
        const Expected<AppResult> Ref =
            runOn(G, P.App, AppVersion::Serial, P.Iters,
                  core::BackendChoice::Scalar);
        ASSERT_TRUE(Ref.ok()) << Ref.status().toString();
        for (AppVersion V : P.Vectorized) {
          for (const core::BackendChoice Tier : kTiers) {
            const Expected<AppResult> Got =
                runOn(G, P.App, V, P.Iters, Tier);
            const std::string What =
                std::string(appIdName(P.App)) + "/" +
                std::to_string(static_cast<int>(V)) +
                " edges=" + std::to_string(Edges) +
                " pat=" + idxPatternName(Pat) + " tier=" +
                (Tier == core::BackendChoice::Avx2 ? "avx2" : "avx512");
            ASSERT_TRUE(Got.ok()) << What << ": " << Got.status().toString();
            expectAgree(*Ref, *Got, What, P.Exact);
          }
        }
      }
    }
  }
}

TEST(VerifyTails, EmptyGraphIsAStructuredError) {
  graph::EdgeList G;
  G.NumNodes = 0;
  for (const VersionPlan &P : plans()) {
    const Expected<AppResult> R =
        runOn(G, P.App, AppVersion::Serial, P.Iters);
    ASSERT_FALSE(R.ok()) << appIdName(P.App);
    EXPECT_EQ(R.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(R.status().message().find("no vertices"), std::string::npos);
  }
}

TEST(VerifyTails, SingleVertexGraph) {
  // One vertex, one self-loop: the smallest stream that still scatters.
  graph::EdgeList G;
  G.NumNodes = 1;
  G.Src = {0};
  G.Dst = {0};
  G.Weight = {1.5f};
  for (const VersionPlan &P : plans()) {
    const Expected<AppResult> Ref =
        runOn(G, P.App, AppVersion::Serial, P.Iters);
    ASSERT_TRUE(Ref.ok()) << appIdName(P.App) << ": "
                          << Ref.status().toString();
    for (AppVersion V : P.Vectorized) {
      const Expected<AppResult> Got = runOn(G, P.App, V, P.Iters);
      ASSERT_TRUE(Got.ok()) << appIdName(P.App) << ": "
                            << Got.status().toString();
      expectAgree(*Ref, *Got, appIdName(P.App), P.Exact);
    }
  }
}

TEST(VerifyTails, EdgelessGraphRuns) {
  // Vertices but no edges: every version must produce the same fixpoint
  // (sources keep their init value, nothing propagates) without touching
  // a single lane.
  graph::EdgeList G;
  G.NumNodes = 5;
  for (const VersionPlan &P : plans()) {
    const Expected<AppResult> Ref =
        runOn(G, P.App, AppVersion::Serial, P.Iters);
    ASSERT_TRUE(Ref.ok()) << appIdName(P.App) << ": "
                          << Ref.status().toString();
    for (AppVersion V : P.Vectorized) {
      const Expected<AppResult> Got = runOn(G, P.App, V, P.Iters);
      ASSERT_TRUE(Got.ok()) << appIdName(P.App) << ": "
                            << Got.status().toString();
      expectAgree(*Ref, *Got, appIdName(P.App), /*Exact=*/true);
    }
  }
}

} // namespace
