//===- tests/moldyn_test.cpp - Molecular dynamics -------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/moldyn/Moldyn.h"
#include "core/Dispatch.h"

#include "gtest/gtest.h"

#include <cmath>

using namespace cfv;
using namespace cfv::apps;

namespace {

MoldynOptions smallOptions() {
  MoldynOptions O;
  O.Cells = 4; // 256 atoms
  return O;
}

constexpr MdVersion kAllVersions[] = {
    MdVersion::TilingSerial, MdVersion::TilingGrouping,
    MdVersion::TilingMask, MdVersion::TilingInvec};

} // namespace

TEST(Moldyn, LatticeSetup) {
  MoldynSim Sim(smallOptions());
  EXPECT_EQ(Sim.numAtoms(), 4 * 4 * 4 * 4);
  EXPECT_GT(Sim.boxLength(), 0.0f);
  // All atoms inside the box.
  for (int32_t I = 0; I < Sim.numAtoms(); ++I) {
    ASSERT_GE(Sim.x()[I], -0.1f);
    ASSERT_LE(Sim.x()[I], Sim.boxLength() + 0.1f);
  }
}

TEST(Moldyn, NeighborListHasReasonableDensity) {
  MoldynSim Sim(smallOptions());
  Sim.rebuildNeighborList();
  // LJ liquid at rho=0.8442 with rc ~ 3 sigma: roughly 45-55 pairs/atom.
  const double PairsPerAtom =
      static_cast<double>(Sim.numPairs()) / Sim.numAtoms();
  EXPECT_GT(PairsPerAtom, 20.0);
  EXPECT_LT(PairsPerAtom, 80.0);
}

class MoldynVersions : public ::testing::TestWithParam<MdVersion> {};

TEST_P(MoldynVersions, ForcesMatchSerial) {
  MoldynSim Ref(smallOptions());
  Ref.rebuildNeighborList();
  Ref.computeForces(MdVersion::TilingSerial);

  MoldynSim Sim(smallOptions());
  Sim.rebuildNeighborList();
  if (GetParam() == MdVersion::TilingGrouping)
    Sim.regroupPairs(core::dispatch().Lanes);
  Sim.computeForces(GetParam());

  double MaxF = 0.0;
  for (int32_t I = 0; I < Ref.numAtoms(); ++I)
    MaxF = std::max<double>(MaxF, std::fabs(Ref.fx()[I]));
  ASSERT_GT(MaxF, 0.0) << "perturbed lattice must produce nonzero forces";

  for (int32_t I = 0; I < Ref.numAtoms(); ++I) {
    ASSERT_NEAR(Sim.fx()[I], Ref.fx()[I], 1e-2 + 1e-4 * MaxF)
        << versionName(GetParam()) << " atom " << I;
    ASSERT_NEAR(Sim.fy()[I], Ref.fy()[I], 1e-2 + 1e-4 * MaxF);
    ASSERT_NEAR(Sim.fz()[I], Ref.fz()[I], 1e-2 + 1e-4 * MaxF);
  }
  EXPECT_NEAR(Sim.potentialEnergy(), Ref.potentialEnergy(),
              1e-4 * std::fabs(Ref.potentialEnergy()) + 1e-3);
}

TEST_P(MoldynVersions, NewtonsThirdLawHolds) {
  MoldynSim Sim(smallOptions());
  Sim.rebuildNeighborList();
  if (GetParam() == MdVersion::TilingGrouping)
    Sim.regroupPairs(core::dispatch().Lanes);
  Sim.computeForces(GetParam());
  double Sx = 0, Sy = 0, Sz = 0, Mag = 0;
  for (int32_t I = 0; I < Sim.numAtoms(); ++I) {
    Sx += Sim.fx()[I];
    Sy += Sim.fy()[I];
    Sz += Sim.fz()[I];
    Mag += std::fabs(Sim.fx()[I]);
  }
  // Pair forces are equal and opposite: net force ~ 0 relative to the
  // total force magnitude.
  EXPECT_LT(std::fabs(Sx), 1e-3 * Mag + 1e-2);
  EXPECT_LT(std::fabs(Sy), 1e-3 * Mag + 1e-2);
  EXPECT_LT(std::fabs(Sz), 1e-3 * Mag + 1e-2);
}

TEST_P(MoldynVersions, ShortRunStaysFinite) {
  MoldynOptions O = smallOptions();
  const MoldynResult R = runMoldyn(O, GetParam(), /*Iterations=*/5);
  EXPECT_TRUE(std::isfinite(R.FinalKinetic));
  EXPECT_TRUE(std::isfinite(R.FinalPotential));
  EXPECT_GT(R.FinalKinetic, 0.0);
  EXPECT_GT(R.Pairs, 0);
  EXPECT_GT(R.ComputeSeconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllVersions, MoldynVersions,
                         ::testing::ValuesIn(kAllVersions),
                         [](const auto &Info) {
                           return versionName(Info.param);
                         });

TEST(Moldyn, TrajectoriesAgreeAcrossVersionsOverSteps) {
  // After a few velocity-Verlet steps the positions of all versions must
  // still agree (forces differ only by float reassociation).
  MoldynSim Ref(smallOptions());
  Ref.rebuildNeighborList();
  Ref.computeForces(MdVersion::TilingSerial);
  for (int S = 0; S < 3; ++S)
    Ref.step(MdVersion::TilingSerial);

  for (const MdVersion V : {MdVersion::TilingMask, MdVersion::TilingInvec,
                            MdVersion::TilingGrouping}) {
    MoldynSim Sim(smallOptions());
    Sim.rebuildNeighborList();
    if (V == MdVersion::TilingGrouping)
      Sim.regroupPairs(core::dispatch().Lanes);
    Sim.computeForces(V);
    for (int S = 0; S < 3; ++S)
      Sim.step(V);
    for (int32_t I = 0; I < Ref.numAtoms(); ++I)
      ASSERT_NEAR(Sim.x()[I], Ref.x()[I], 1e-3)
          << versionName(V) << " atom " << I;
  }
}

TEST(Moldyn, MaskVersionHasLowUtilization) {
  // The double reduction (i and j) makes conflicts frequent; the paper
  // reports 9-19% utilization for Moldyn's mask version.
  MoldynSim Sim(smallOptions());
  Sim.rebuildNeighborList();
  Sim.computeForces(MdVersion::TilingMask);
  EXPECT_LT(Sim.simdUtil(), 0.9);
  EXPECT_GT(Sim.simdUtil(), 0.01);
}

TEST(Moldyn, InvecReportsD1) {
  MoldynSim Sim(smallOptions());
  Sim.rebuildNeighborList();
  Sim.computeForces(MdVersion::TilingInvec);
  EXPECT_GT(Sim.meanD1(), 0.0) << "tiled pairs conflict within vectors";
}

TEST(Moldyn, MomentumConservedOverSteps) {
  // Velocities start with zero net momentum; antisymmetric pair forces
  // must keep it zero through integration.
  MoldynSim Sim(smallOptions());
  Sim.rebuildNeighborList();
  Sim.computeForces(MdVersion::TilingInvec);
  for (int S = 0; S < 8; ++S)
    Sim.step(MdVersion::TilingInvec);
  // Recompute momentum through kinetic-energy-like accessors: use
  // forces=0 check indirectly via kinetic energy stability instead; the
  // direct momentum needs velocity access -- approximate via energy
  // boundedness plus Newton's-third-law test above.  Here we assert the
  // kinetic energy stays within a sane band (no momentum blow-up).
  const double Ek = Sim.kineticEnergy();
  EXPECT_GT(Ek, 0.0);
  EXPECT_LT(Ek, 1e6);
}

TEST(Moldyn, PositionsStayInBox) {
  MoldynSim Sim(smallOptions());
  Sim.rebuildNeighborList();
  Sim.computeForces(MdVersion::TilingSerial);
  for (int S = 0; S < 10; ++S)
    Sim.step(MdVersion::TilingSerial);
  const float L = Sim.boxLength();
  for (int32_t I = 0; I < Sim.numAtoms(); ++I) {
    ASSERT_GE(Sim.x()[I], -1e-4f) << "atom " << I;
    ASSERT_LT(Sim.x()[I], L + 1e-4f) << "atom " << I;
  }
}

TEST(Moldyn, PairListIsCanonicalAndUnique) {
  MoldynSim Sim(smallOptions());
  Sim.rebuildNeighborList();
  // Probe the pair list indirectly: rebuilding twice from the same state
  // must give the same pair count (determinism), and force evaluation
  // must be stable under the rebuild.
  const int64_t Pairs1 = Sim.numPairs();
  Sim.computeForces(MdVersion::TilingSerial);
  const double P1 = Sim.potentialEnergy();
  Sim.rebuildNeighborList();
  EXPECT_EQ(Sim.numPairs(), Pairs1);
  Sim.computeForces(MdVersion::TilingSerial);
  EXPECT_NEAR(Sim.potentialEnergy(), P1, 1e-6 * std::fabs(P1) + 1e-6);
}

TEST(Moldyn, EnergyRoughlyConservedOverShortRun) {
  MoldynOptions O = smallOptions();
  O.TimeStep = 0.001f;
  MoldynSim Sim(O);
  Sim.rebuildNeighborList();
  Sim.computeForces(MdVersion::TilingSerial);
  const double E0 = Sim.kineticEnergy() + Sim.potentialEnergy();
  for (int S = 0; S < 10; ++S)
    Sim.step(MdVersion::TilingSerial);
  const double E1 = Sim.kineticEnergy() + Sim.potentialEnergy();
  EXPECT_NEAR(E1, E0, 0.05 * std::fabs(E0) + 1.0)
      << "velocity Verlet should not blow up over 10 small steps";
}
