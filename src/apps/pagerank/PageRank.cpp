//===- apps/pagerank/PageRank.cpp - PageRank, five versions --------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/pagerank/PageRank.h"

#include "core/Adaptive.h"
#include "core/Backends.h"
#include "core/ParallelEngine.h"
#include "core/Variant.h"
#include "graph/MappedCsr.h"
#include "inspector/Grouping.h"
#include "inspector/Tiling.h"
#include "masking/ConflictMask.h"
#include "obs/Trace.h"
#include "pattern/Classify.h"
#include "pattern/Dispatch.h"
#include "simd/Traits.h"
#include "util/Stats.h"
#include "util/Timer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

using namespace cfv;
using namespace cfv::apps;

using B = simd::NativeBackend;
using IVec = simd::VecI32<B>;
using FVec = simd::VecF32<B>;
using simd::Mask16;
constexpr int kLanes = B::kLanes;
constexpr Mask16 kAllLanes = simd::BackendTraits<B>::kFullMask;

#if CFV_VARIANT_PRIMARY
const char *apps::versionName(PrVersion V) {
  switch (V) {
  case PrVersion::NontilingSerial:
    return "nontiling_serial";
  case PrVersion::TilingSerial:
    return "tiling_serial";
  case PrVersion::TilingGrouping:
    return "tiling_and_grouping";
  case PrVersion::TilingMask:
    return "tiling_and_mask";
  case PrVersion::TilingInvec:
    return "tiling_and_invec";
  }
  return "unknown";
}
#endif // CFV_VARIANT_PRIMARY

namespace {

using PrReducer = core::AdaptiveReducer<simd::OpAdd, float, B>;

/// Mutable per-run state shared by all versions.  The edge-phase kernels
/// read Rank/DegF and write only through a FloatSink, so the state can be
/// shared read-only across parallel-engine workers.
struct PrState {
  int32_t N;
  int64_t M;
  AlignedVector<float> Rank; ///< current rank per vertex
  AlignedVector<float> Sum;  ///< irregular-reduction target
  AlignedVector<float> DegF; ///< out-degree as float (nneighbor)
};

PrState makeState(int32_t N, int64_t M, const int32_t *SrcPtr) {
  PrState S;
  S.N = N;
  S.M = M;
  S.Rank.assign(S.N, 1.0f / static_cast<float>(S.N));
  S.Sum.assign(S.N, 0.0f);
  S.DegF.resize(S.N);
  const AlignedVector<int32_t> Deg = graph::outDegrees(SrcPtr, M, N);
  for (int32_t V = 0; V < S.N; ++V)
    S.DegF[V] = static_cast<float>(Deg[V]);
  return S;
}

/// The regular (vertex-indexed) phase: damp the accumulated sums into new
/// ranks, reset the sums, and return the L1 rank change.  Identical in
/// every version; the total rank mass stays near 1, so the L1 change
/// doubles as the relative change of the termination test.
float applyDampingAndReset(PrState &S, float Damping) {
  const float Base = (1.0f - Damping) / static_cast<float>(S.N);
  float Delta = 0.0f;
  for (int32_t V = 0; V < S.N; ++V) {
    const float NewRank = Base + Damping * S.Sum[V];
    Delta += std::fabs(NewRank - S.Rank[V]);
    S.Rank[V] = NewRank;
    S.Sum[V] = 0.0f;
  }
  return Delta;
}

/// Serial edge phase over [Lo, Hi): Figure 1's loop verbatim; a dense
/// sink makes Out.add exactly Sum[Ny] += Rank[Nx] / DegF[Nx].
void edgePhaseSerial(const PrState &S, const int32_t *Src, const int32_t *Dst,
                     int64_t Lo, int64_t Hi, core::FloatSink Out) {
  for (int64_t J = Lo; J < Hi; ++J) {
    const int32_t Nx = Src[J];
    const int32_t Ny = Dst[J];
    Out.add(Ny, S.Rank[Nx] / S.DegF[Nx]);
  }
}

/// Conflict-masking edge phase (Figure 3 applied to Figure 1) over
/// [Lo, Hi).  The dense Out.commit performs the same gather/add/scatter
/// the original hand-written commit did.
void edgePhaseMask(const PrState &S, const int32_t *Src, const int32_t *Dst,
                   int64_t Lo, int64_t Hi, core::FloatSink Out,
                   SimdUtilCounter &Util) {
  auto LoadIdx = [&](IVec Pos, Mask16 Lanes) {
    return IVec::maskGather(IVec::zero(), Lanes, Dst + Lo, Pos);
  };
  auto Commit = [&](Mask16 Safe, IVec Pos, IVec Idx) {
    const IVec Vnx = IVec::maskGather(IVec::zero(), Safe, Src + Lo, Pos);
    const FVec Vrank = FVec::maskGather(FVec::zero(), Safe, S.Rank.data(),
                                        Vnx);
    const FVec Vdeg = FVec::maskGather(FVec::broadcast(1.0f), Safe,
                                       S.DegF.data(), Vnx);
    const FVec Vadd = Vrank / Vdeg;
    Out.commit(Safe, Idx, Vadd);
  };
  masking::maskedStreamLoop<B>(Hi - Lo, LoadIdx, masking::AllLanesNeedUpdate{},
                               Commit, &Util);
}

/// In-vector reduction edge phase (Figure 7) over [Lo, Hi).  With a
/// \p Reducer (dense sinks only: Algorithm 2 scatters into the reducer's
/// auxiliary array, merged into the sink at the end) the §3.4 adaptive
/// policy applies; without one the kernel stays on Algorithm 1 and
/// records D1 into \p D1 -- the spill-sink configuration.
void edgePhaseInvecRange(const PrState &S, const int32_t *Src,
                         const int32_t *Dst, int64_t Lo, int64_t Hi,
                         core::FloatSink Out, PrReducer *Reducer,
                         ConflictCounter *D1) {
  const int64_t Count = Hi - Lo;
  const int64_t Whole = Lo + (Count - Count % kLanes);
  for (int64_t J = Lo; J < Whole; J += kLanes) {
    const IVec Vnx = IVec::load(Src + J);
    const IVec Vny = IVec::load(Dst + J);
    const FVec Vrank = FVec::gather(S.Rank.data(), Vnx);
    const FVec Vdeg = FVec::gather(S.DegF.data(), Vnx);
    FVec Vadd = Vrank / Vdeg;
    Mask16 Mret;
    if (Reducer) {
      Mret = Reducer->reduce(kAllLanes, Vny, Vadd);
    } else {
      const core::InvecResult IR =
          core::invecReduce<simd::OpAdd>(kAllLanes, Vny, Vadd);
      D1->add(IR.Distinct);
      Mret = IR.Ret;
    }
    Out.commit(Mret, Vny, Vadd);
  }
  // Tail lanes, processed with a partial active mask.
  if (Whole != Hi) {
    const Mask16 Active =
        static_cast<Mask16>((1u << (Hi - Whole)) - 1u);
    const IVec Vnx = IVec::maskLoad(IVec::zero(), Active, Src + Whole);
    const IVec Vny = IVec::maskLoad(IVec::zero(), Active, Dst + Whole);
    const FVec Vrank = FVec::maskGather(FVec::zero(), Active, S.Rank.data(),
                                        Vnx);
    const FVec Vdeg = FVec::maskGather(FVec::broadcast(1.0f), Active,
                                       S.DegF.data(), Vnx);
    FVec Vadd = Vrank / Vdeg;
    Mask16 Mret;
    if (Reducer) {
      Mret = Reducer->reduce(Active, Vny, Vadd);
    } else {
      const core::InvecResult IR =
          core::invecReduce<simd::OpAdd>(Active, Vny, Vadd);
      D1->add(IR.Distinct);
      Mret = IR.Ret;
    }
    Out.commit(Mret, Vny, Vadd);
  }
}

void edgePhaseInvec(const PrState &S, const int32_t *Src, const int32_t *Dst,
                    int64_t Lo, int64_t Hi, core::FloatSink Out,
                    PrReducer *Reducer, ConflictCounter *D1) {
  edgePhaseInvecRange(S, Src, Dst, Lo, Hi, Out, Reducer, D1);
  if (Reducer)
    Reducer->mergeInto(Out.densePtr());
}

/// Pattern-dispatch edge phase (src/pattern/): walks the whole tiles
/// inside [Lo, Hi) -- chunk bounds are tile-aligned for the tiled
/// versions -- and routes each to its class-specialized kernel.  General
/// tiles fall back to the existing invec range; the Algorithm 2
/// auxiliary merge is hoisted to one mergeInto at the end so a run of
/// General tiles does not pay it per tile.
void edgePhasePattern(const PrState &S, const int32_t *Src, const int32_t *Dst,
                      const std::vector<int64_t> &TileBounds,
                      const pattern::PatternResult &P, int64_t Lo, int64_t Hi,
                      core::FloatSink Out, PrReducer *Reducer,
                      ConflictCounter *D1, pattern::DispatchCounts &Counts) {
  auto It = std::lower_bound(TileBounds.begin(), TileBounds.end(), Lo);
  for (std::size_t T = static_cast<std::size_t>(It - TileBounds.begin());
       T + 1 < TileBounds.size() && TileBounds[T] < Hi; ++T) {
    const int64_t TLo = TileBounds[T];
    const int64_t THi = std::min(TileBounds[T + 1], Hi);
    const pattern::TileInfo &Info = P.Tiles[T];
    // Payload offsets are relative to the tile start the kernel walks
    // from; inactive lanes gather rank 0 / degree 1, i.e. add 0.
    const auto Payload = [&](Mask16 Active, int64_t I) {
      const IVec Vnx =
          IVec::maskLoad(IVec::zero(), Active, Src + TLo + I);
      const FVec Vrank =
          FVec::maskGather(FVec::zero(), Active, S.Rank.data(), Vnx);
      const FVec Vdeg = FVec::maskGather(FVec::broadcast(1.0f), Active,
                                         S.DegF.data(), Vnx);
      return Vrank / Vdeg;
    };
    if (!pattern::runTileSpecialized<simd::OpAdd, float, B>(
            Info, Dst + TLo, THi - TLo, Payload, Out, &Counts))
      edgePhaseInvecRange(S, Src, Dst, TLo, THi, Out, Reducer, D1);
  }
  if (Reducer)
    Reducer->mergeInto(Out.densePtr());
}

/// Inspector/executor edge phase over pre-grouped, conflict-free lane
/// groups [GLo, GHi).  Destinations within a group are pairwise distinct,
/// so the dense commit cannot lose updates.
void edgePhaseGrouped(const PrState &S, const AlignedVector<int32_t> &GSrc,
                      const AlignedVector<int32_t> &GDst,
                      const AlignedVector<Mask16> &GroupMask, int64_t GLo,
                      int64_t GHi, core::FloatSink Out) {
  for (int64_t G = GLo; G < GHi; ++G) {
    const Mask16 M = GroupMask[G];
    const IVec Vnx = IVec::load(GSrc.data() + G * kLanes);
    const IVec Vny = IVec::load(GDst.data() + G * kLanes);
    const FVec Vrank = FVec::maskGather(FVec::zero(), M, S.Rank.data(), Vnx);
    const FVec Vdeg = FVec::maskGather(FVec::broadcast(1.0f), M,
                                       S.DegF.data(), Vnx);
    const FVec Vadd = Vrank / Vdeg;
    Out.commit(M, Vny, Vadd);
  }
}

} // namespace

// This translation unit is compiled once per backend variant; the public
// apps::runPageRank forwards here through core::dispatch().
PageRankResult apps::CFV_VARIANT_NS::runPageRank(const graph::EdgeList &G,
                                                 PrVersion V,
                                                 const PageRankOptions &O) {
  PageRankResult R;
  // Out-of-core substitution: a compatible MappedCsr replaces the
  // EdgeList COO arrays (same edges, same order -- bit-identical), and
  // also serves a hollow EdgeList whose edges live only in the mapping.
  const graph::MappedCsr *Mapped = O.SharedMapped;
  const bool UseMapped =
      Mapped && Mapped->numNodes() == G.NumNodes &&
      (G.numEdges() == 0 || G.numEdges() == Mapped->numEdges());
  const int32_t *ESrc = UseMapped ? Mapped->edgeSrc() : G.Src.data();
  const int32_t *EDst = UseMapped ? Mapped->edgeDst() : G.Dst.data();
  const int64_t NumEdges = UseMapped ? Mapped->numEdges() : G.numEdges();
  // The degree pass streams the whole Src section once.
  if (UseMapped)
    Mapped->adviseEdgeRange(0, NumEdges);
  PrState S = makeState(G.NumNodes, NumEdges, ESrc);

  // --- Inspector phases -------------------------------------------------
  AlignedVector<int32_t> TSrc, TDst;      // tiled edge order
  AlignedVector<int32_t> GSrc, GDst;      // grouped + padded edge order
  AlignedVector<Mask16> GroupMask;
  std::vector<int64_t> TileBounds;        // tile boundaries, for chunking
  const bool Tiled = V != PrVersion::NontilingSerial;
  // Pattern classification (src/pattern/) for the invec dispatch.
  const pattern::Mode PMode = pattern::resolveMode(O.Pattern);
  std::shared_ptr<const pattern::PatternResult> Pat;

  if (Tiled) {
    WallTimer T;
    // Reuse a compatible precomputed schedule (PreparedGraph through the
    // cfv::run facade): the counting sort is skipped and only the cheap
    // permutation application remains in TilingSeconds.
    const inspector::TilingResult *Shared =
        O.SharedTiling && O.SharedTiling->BlockBits == O.TileBlockBits &&
                static_cast<int64_t>(O.SharedTiling->Order.size()) == S.M
            ? O.SharedTiling
            : nullptr;
    inspector::TilingResult Local;
    if (!Shared)
      Local = inspector::tileByDestination(EDst, S.M, S.N, O.TileBlockBits);
    const inspector::TilingResult &Tiling = Shared ? *Shared : Local;
    // The permutation gathers randomly across the mapped COO; prime the
    // whole range once rather than faulting edge by edge.
    if (UseMapped)
      Mapped->adviseEdgeRange(0, S.M);
    TSrc = inspector::applyPermutation(Tiling.Order, ESrc);
    TDst = inspector::applyPermutation(Tiling.Order, EDst);
    TileBounds = Tiling.TileBegin;
    // Reuse the classification a shared schedule carries; classify
    // locally otherwise.  Local classification is inspector work, so it
    // lands in TilingSeconds like the counting sort it rides on.
    if (V == PrVersion::TilingInvec && PMode != pattern::Mode::Off) {
      if (Shared && pattern::compatible(Shared->Pattern.get()) &&
          Shared->Pattern->numTiles() ==
              static_cast<int64_t>(TileBounds.size()) - 1)
        Pat = Shared->Pattern;
      else
        Pat = std::make_shared<pattern::PatternResult>(
            pattern::classifyTiles(TDst.data(), TileBounds,
                                   O.TileBlockBits));
    }
    R.TilingSeconds = T.seconds();
    // Retroactive span from the same measurement the result reports, so
    // the trace and PageRankResult::TilingSeconds cannot disagree.
    obs::Tracer::instance().recordAt("pagerank:tile", "inspector",
                                     monotonicSeconds() - R.TilingSeconds,
                                     R.TilingSeconds);

    if (V == PrVersion::TilingGrouping) {
      WallTimer TG;
      inspector::GroupingResult Grouping =
          inspector::groupConflictFree(EDst, S.N, Tiling, kLanes);
      // Padded lanes use vertex 0, which is always a valid gather target;
      // they are masked out of every store.
      GSrc = inspector::applyGrouping(Grouping, ESrc, int32_t(0));
      GDst = inspector::applyGrouping(Grouping, EDst, int32_t(0));
      GroupMask = std::move(Grouping.GroupMask);
      R.GroupingSeconds = TG.seconds();
      obs::Tracer::instance().recordAt(
          "pagerank:group", "inspector",
          monotonicSeconds() - R.GroupingSeconds, R.GroupingSeconds);
    }
  }

  const int32_t *Src = Tiled ? TSrc.data() : ESrc;
  const int32_t *Dst = Tiled ? TDst.data() : EDst;

  // --- Executor ----------------------------------------------------------
  const int NumThreads = core::resolveThreads(O.Threads);
  const bool IsGrouped = V == PrVersion::TilingGrouping;
  const int64_t NumGroups = static_cast<int64_t>(GroupMask.size());

  // Static chunk assignment: tile-aligned where the inspector tiled the
  // edges (a cache-sized tile never splits across workers), SIMD-block
  // aligned otherwise; groups chunk by group index.  With one thread the
  // single chunk is the full range and everything below reduces to the
  // serial path.
  const std::vector<int64_t> Bounds =
      IsGrouped ? core::chunkBounds(NumGroups, NumThreads, 1)
      : (Tiled && !TileBounds.empty())
          ? core::chunkBoundsFromTilesSharded(TileBounds, NumThreads)
          : core::chunkBounds(S.M, NumThreads, kLanes);

  // Privatization strategy for the Sum array (thread 0 always writes the
  // base directly; replicas/spill lists exist for workers 1..T-1 only).
  const bool Dense =
      NumThreads <= 1 ||
      core::useDensePrivatization(S.N, sizeof(float), S.M, NumThreads);
  std::vector<AlignedVector<float>> Parts;
  std::vector<core::SpillListF> Spills;
  if (NumThreads > 1) {
    if (Dense) {
      Parts.resize(NumThreads - 1);
      for (auto &P : Parts)
        P.assign(S.N, 0.0f);
    } else {
      Spills.resize(NumThreads - 1);
    }
  }

  // Per-worker instrumentation and adaptive reducers.  The reducers (and
  // their Algorithm 2 auxiliary arrays) persist across iterations like
  // the single-core version's; the spill configuration runs Algorithm 1
  // only (its auxiliary merge needs a dense target).
  std::vector<SimdUtilCounter> Utils(NumThreads);
  std::vector<ConflictCounter> D1s(NumThreads);
  // Specialized dispatch only under mode On; ClassifyOnly keeps the
  // plain invec executor and reports the mix.
  const bool UsePattern = Pat != nullptr && PMode == pattern::Mode::On &&
                          !TileBounds.empty();
  std::vector<pattern::DispatchCounts> PCounts;
  if (UsePattern)
    PCounts.resize(NumThreads);
  std::vector<AlignedVector<float>> AuxParts;
  std::vector<std::unique_ptr<PrReducer>> Reducers;
  if (V == PrVersion::TilingInvec && Dense) {
    AuxParts.resize(NumThreads);
    Reducers.resize(NumThreads);
    for (int T = 0; T < NumThreads; ++T) {
      AuxParts[T].assign(S.N, 0.0f);
      Reducers[T] = std::make_unique<PrReducer>(AuxParts[T].data(),
                                                AuxParts[T].size());
    }
  }

  core::ParallelEngine &Engine = core::ParallelEngine::instance();
  const auto EdgeBody = [&](int Tid) {
    const int64_t Lo = Bounds[Tid];
    const int64_t Hi = Bounds[Tid + 1];
    // The nontiled versions stream the mapped COO directly; the tiled
    // ones permuted it into RAM above, so there is nothing to advise.
    if (UseMapped && !Tiled)
      Mapped->adviseEdgeRange(Lo, Hi);
    const core::FloatSink Out =
        Tid == 0 ? core::FloatSink::dense(S.Sum.data())
        : Dense  ? core::FloatSink::dense(Parts[Tid - 1].data())
                 : core::FloatSink::spill(&Spills[Tid - 1]);
    switch (V) {
    case PrVersion::NontilingSerial:
    case PrVersion::TilingSerial:
      edgePhaseSerial(S, Src, Dst, Lo, Hi, Out);
      return;
    case PrVersion::TilingGrouping:
      edgePhaseGrouped(S, GSrc, GDst, GroupMask, Lo, Hi, Out);
      return;
    case PrVersion::TilingMask:
      edgePhaseMask(S, Src, Dst, Lo, Hi, Out, Utils[Tid]);
      return;
    case PrVersion::TilingInvec:
      if (UsePattern)
        edgePhasePattern(S, Src, Dst, TileBounds, *Pat, Lo, Hi, Out,
                         Reducers.empty() ? nullptr : Reducers[Tid].get(),
                         &D1s[Tid], PCounts[Tid]);
      else
        edgePhaseInvec(S, Src, Dst, Lo, Hi, Out,
                       Reducers.empty() ? nullptr : Reducers[Tid].get(),
                       &D1s[Tid]);
      return;
    }
  };

  WallTimer Compute;
  for (int Iter = 0; Iter < O.MaxIterations; ++Iter) {
    if (core::shouldStop(O)) {
      R.TimedOut = true;
      break;
    }
    Engine.run(NumThreads, EdgeBody);
    if (Dense) {
      core::mergeTreeAdd(S.Sum.data(), Parts, S.N);
    } else {
      for (auto &L : Spills) {
        core::applySpillAdd(L, S.Sum.data());
        L.clear();
      }
    }
    const float Delta = applyDampingAndReset(S, O.Damping);
    ++R.Iterations;
    if (Delta < O.Tolerance)
      break;
  }
  R.ComputeSeconds = Compute.seconds();

  R.Rank = std::move(S.Rank);
  SimdUtilCounter Util;
  for (const SimdUtilCounter &U : Utils)
    Util.merge(U);
  R.SimdUtil = Util.utilization();
  R.UtilHist = Util.laneHistogram();
  if (!Reducers.empty()) {
    RunningMean MD;
    for (const auto &Rd : Reducers) {
      if (Rd->meanD1() > 0.0)
        MD.add(Rd->meanD1());
      R.UsedAlg2 = R.UsedAlg2 || Rd->usingAlg2();
      R.D1Hist.merge(Rd->d1Histogram());
    }
    R.MeanD1 = Reducers.size() == 1 ? Reducers[0]->meanD1() : MD.mean();
  } else if (V == PrVersion::TilingInvec) {
    ConflictCounter MD;
    for (const ConflictCounter &D : D1s)
      MD.merge(D);
    R.MeanD1 = MD.mean();
    R.D1Hist = MD.histogram();
  }
  if (Pat)
    for (int C = 0; C < pattern::kNumTileClasses; ++C)
      R.PatternTiles[C] = Pat->Counts[C];
  if (UsePattern) {
    pattern::DispatchCounts Total;
    for (const pattern::DispatchCounts &PC : PCounts)
      Total.merge(PC);
    pattern::recordDispatch(Total);
  }
  return R;
}
