//===- net/EventLoop.h - epoll readiness loop -------------------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal single-threaded epoll readiness loop, the foundation of the
/// network front-end (net::Server).  Design points:
///
///  - One callback per fd, invoked with the ready event mask.  The
///    callback owns all per-fd work; the loop never reads or writes
///    sockets itself.
///  - Deferred close: a callback that decides to drop a connection calls
///    deferClose(fd), which removes the fd from epoll and the callback
///    table immediately but delays the ::close() until the current
///    dispatch batch finishes.  This prevents the classic epoll hazard
///    where a closed fd's number is reused by accept() mid-batch and a
///    stale ready-event fires the new owner's callback.
///  - Cross-thread post(): worker threads (RequestScheduler completions)
///    hand results back to the loop thread through a mutex-guarded task
///    list flushed on an eventfd wakeup, so connection state is only
///    ever touched from the loop thread.
///  - run() spins until stop() or until a ShouldExit predicate says the
///    loop has nothing left to wait for (used by graceful drain).
///
/// Linux-only (epoll + eventfd); the build gates net/ sources on
/// __linux__ the same way the serve TCP path always was.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_NET_EVENT_LOOP_H
#define CFV_NET_EVENT_LOOP_H

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

namespace cfv {
namespace net {

class EventLoop {
public:
  /// Ready-event callback; \p Events is the epoll event mask (EPOLLIN,
  /// EPOLLOUT, EPOLLHUP, ...).
  using Callback = std::function<void(uint32_t Events)>;

  EventLoop();
  ~EventLoop();

  /// False when the loop failed to initialize (epoll_create1/eventfd).
  bool valid() const { return EpollFd >= 0 && WakeFd >= 0; }

  /// Registers \p Fd for \p Events with \p Cb.  Replaces any prior
  /// registration for the same fd.
  bool add(int Fd, uint32_t Events, Callback Cb);
  /// Changes the event mask of an already-registered fd.
  bool mod(int Fd, uint32_t Events);
  /// Unregisters \p Fd without closing it (caller keeps ownership).
  void del(int Fd);
  /// Unregisters \p Fd and closes it after the current dispatch batch.
  void deferClose(int Fd);

  /// Queues \p Fn to run on the loop thread and wakes the loop.  Safe
  /// from any thread, including the loop thread itself.
  void post(std::function<void()> Fn);

  /// Runs until stop() is called, or -- checked once per iteration,
  /// after posted tasks and the per-tick hook -- \p ShouldExit (may be
  /// null) returns true.  \p TickMs bounds the epoll wait so the
  /// per-iteration hook \p OnTick (may be null) runs at least that
  /// often; <= 0 means block indefinitely until an event or post().
  void run(int TickMs, const std::function<void()> &OnTick,
           const std::function<bool()> &ShouldExit);

  /// Makes run() return after the current iteration.  Safe from any
  /// thread (it is a post()).
  void stop();

  /// Number of registered fds (excluding the internal wakeup fd).
  std::size_t watched() const { return Callbacks.size(); }

  EventLoop(const EventLoop &) = delete;
  EventLoop &operator=(const EventLoop &) = delete;

private:
  void drainWake();
  void runPosted();

  int EpollFd = -1;
  int WakeFd = -1; ///< eventfd for post() wakeups
  bool Stopped = false;

  std::map<int, Callback> Callbacks;
  std::vector<int> DeferredCloses;

  std::mutex PostedMu;
  std::vector<std::function<void()>> Posted;
};

} // namespace net
} // namespace cfv

#endif // CFV_NET_EVENT_LOOP_H
