//===- tests/cfv_run_cli_test.cpp - cfv_run argument handling --------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Drives the installed cfv_run binary (path injected as CFV_RUN_BIN by
// CMake) in subprocesses: bad invocations must exit 2 with usage text,
// bad inputs must exit nonzero with a structured error, and valid runs
// under both --backend values must exit 0.
//
//===----------------------------------------------------------------------===//

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/wait.h>

// The CMake-level kill switch only defines CFV_OBS when turning it OFF;
// default-on matches the headers so the observability expectations below
// track the build of the tool under test.
#ifndef CFV_OBS
#define CFV_OBS 1
#endif

namespace {

#ifndef CFV_RUN_BIN
#error "CFV_RUN_BIN must be defined to the cfv_run binary path"
#endif

/// Runs `cfv_run <Args>` with stdout/stderr discarded; returns the exit
/// code (or -1 if the child did not exit normally).
int runCli(const std::string &Args, const std::string &EnvPrefix = "") {
  const std::string Cmd =
      EnvPrefix + " \"" + CFV_RUN_BIN + "\" " + Args + " >/dev/null 2>&1";
  const int Rc = std::system(Cmd.c_str());
  if (Rc == -1 || !WIFEXITED(Rc))
    return -1;
  return WEXITSTATUS(Rc);
}

/// Writes a tiny valid weighted SNAP file and returns its path.
std::string writeTinyGraph() {
  const std::string Path = ::testing::TempDir() + "cfv_cli_tiny.txt";
  std::FILE *F = std::fopen(Path.c_str(), "w");
  EXPECT_NE(F, nullptr);
  std::fputs("# tiny test graph\n", F);
  for (int I = 0; I < 32; ++I)
    std::fprintf(F, "%d\t%d\t%.1f\n", I % 8, (I * 3 + 1) % 8,
                 1.0f + float(I % 5));
  std::fclose(F);
  return Path;
}

} // namespace

TEST(CfvRunCli, NoArgumentsShowsUsage) { EXPECT_EQ(runCli(""), 2); }

TEST(CfvRunCli, UnknownAppShowsUsage) { EXPECT_EQ(runCli("frobnicate"), 2); }

TEST(CfvRunCli, UnknownFlagShowsUsage) {
  EXPECT_EQ(runCli("pagerank --no-such-flag"), 2);
}

TEST(CfvRunCli, MissingFlagValueShowsUsage) {
  EXPECT_EQ(runCli("pagerank --iters"), 2);
  EXPECT_EQ(runCli("pagerank --backend"), 2);
}

TEST(CfvRunCli, MalformedNumericFlagShowsUsage) {
  EXPECT_EQ(runCli("pagerank --iters banana"), 2);
  EXPECT_EQ(runCli("pagerank --iters 5x"), 2);
  EXPECT_EQ(runCli("pagerank --scale 1.0.0"), 2);
}

TEST(CfvRunCli, UnknownBackendShowsUsage) {
  EXPECT_EQ(runCli("pagerank --backend sse2"), 2);
}

TEST(CfvRunCli, UnknownDatasetFailsCleanly) {
  EXPECT_EQ(runCli("pagerank --dataset no-such-graph"), 2);
}

TEST(CfvRunCli, MissingFileFailsCleanly) {
  EXPECT_EQ(runCli("pagerank --file /nonexistent/graph.txt"), 1);
}

TEST(CfvRunCli, RunsUnderBothBackends) {
  const std::string G = writeTinyGraph();
  const std::string Base = "pagerank --file " + G + " --iters 3";
  EXPECT_EQ(runCli(Base + " --backend scalar"), 0);
  // On a host without AVX-512 this exercises the graceful fallback.
  EXPECT_EQ(runCli(Base + " --backend avx512"), 0);
  EXPECT_EQ(runCli(Base, "CFV_BACKEND=scalar"), 0);
  EXPECT_EQ(runCli(Base, "CFV_BACKEND=avx512"), 0);
  std::remove(G.c_str());
}

TEST(CfvRunCli, InvalidThreadsShowsUsage) {
  EXPECT_EQ(runCli("pagerank --threads -1"), 2);
  EXPECT_EQ(runCli("pagerank --threads banana"), 2);
  EXPECT_EQ(runCli("pagerank --threads"), 2);
}

TEST(CfvRunCli, ThreadedAndJsonRunsPass) {
  const std::string G = writeTinyGraph();
  const std::string Base = "pagerank --file " + G + " --iters 3";
  EXPECT_EQ(runCli(Base + " --threads 2"), 0);
  EXPECT_EQ(runCli(Base + " --threads 0"), 0); // all hardware threads
  EXPECT_EQ(runCli(Base + " --threads 2 --json"), 0);
  EXPECT_EQ(runCli(Base, "CFV_THREADS=3"), 0);
  std::remove(G.c_str());
}

TEST(CfvRunCli, NewAppsRun) {
  const std::string G = writeTinyGraph();
  EXPECT_EQ(runCli("pagerank64 --file " + G + " --iters 3"), 0);
  EXPECT_EQ(runCli("rbk --file " + G + " --iters 2 --threads 2"), 0);
  std::remove(G.c_str());
}

TEST(CfvRunCli, ValidatedInvecRunPasses) {
  const std::string G = writeTinyGraph();
  EXPECT_EQ(runCli("pagerank --file " + G + " --iters 3 --version invec",
                   "CFV_VALIDATE=1"),
            0);
  std::remove(G.c_str());
}

namespace {

/// Reads a whole file ("" when missing).
std::string slurp(const std::string &Path) {
  std::string Out;
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return Out;
  int C;
  while ((C = std::fgetc(F)) != EOF)
    Out.push_back(static_cast<char>(C));
  std::fclose(F);
  return Out;
}

bool has(const std::string &S, const std::string &Needle) {
  return S.find(Needle) != std::string::npos;
}

} // namespace

#if CFV_OBS

TEST(CfvRunCli, TraceFlagWritesChromeTracingJson) {
  const std::string G = writeTinyGraph();
  const std::string Trace = ::testing::TempDir() + "cfv_cli_trace.json";
  std::remove(Trace.c_str());
  EXPECT_EQ(runCli("pagerank --file " + G + " --iters 3 --version invec"
                   " --trace " + Trace),
            0);
  const std::string J = slurp(Trace);
  ASSERT_FALSE(J.empty()) << "--trace must create " << Trace;
  // The chrome://tracing envelope with complete events from the run
  // pipeline: the tool's load span plus the engine's kernel spans.
  EXPECT_TRUE(has(J, "\"traceEvents\"")) << J;
  EXPECT_TRUE(has(J, "\"ph\":\"X\"")) << J;
  EXPECT_TRUE(has(J, "\"name\":\"tool:load\"")) << J;
  EXPECT_TRUE(has(J, "engine:run")) << J;
  std::remove(Trace.c_str());
  std::remove(G.c_str());
}

TEST(CfvRunCli, TraceFlagToUnwritablePathFails) {
  const std::string G = writeTinyGraph();
  EXPECT_EQ(runCli("pagerank --file " + G +
                   " --iters 2 --trace /nonexistent-dir/t.json"),
            1);
  std::remove(G.c_str());
}

#endif // CFV_OBS

TEST(CfvRunCli, MetricsFlagDumpsPrometheusToStderr) {
  const std::string G = writeTinyGraph();
  const std::string Err = ::testing::TempDir() + "cfv_cli_metrics.txt";
  // Pattern dispatch off: the D1 histogram this test pins is recorded
  // by the in-vector reduction, which the specialized kernels bypass.
  const std::string Cmd = std::string("CFV_PATTERN=off \"") + CFV_RUN_BIN +
                          "\" pagerank" + " --file " + G +
                          " --iters 3 --version invec --metrics" +
                          " >/dev/null 2>" + Err;
  const int Rc = std::system(Cmd.c_str());
  ASSERT_TRUE(Rc != -1 && WIFEXITED(Rc) && WEXITSTATUS(Rc) == 0);
  const std::string M = slurp(Err);
#if CFV_OBS
  EXPECT_TRUE(has(M, "# TYPE cfv_runs_total counter")) << M;
  EXPECT_TRUE(has(M, "cfv_runs_total{app=\"pagerank\"} 1")) << M;
  EXPECT_TRUE(has(M, "# TYPE cfv_kernel_d1_lanes histogram")) << M;
  EXPECT_TRUE(has(M, "le=\"+Inf\"")) << M;
#else
  EXPECT_TRUE(has(M, "compiled out")) << M;
#endif
  std::remove(Err.c_str());
  std::remove(G.c_str());
}
