//===-- verify/Gen.cpp - Adversarial workload generators ------------------===//

#include "verify/Gen.h"

#include "util/Prng.h"
#include "workload/KeyGen.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>

namespace cfv {
namespace verify {

const char *idxPatternName(IdxPattern P) {
  switch (P) {
  case IdxPattern::Uniform:
    return "uniform";
  case IdxPattern::Zipf:
    return "zipf";
  case IdxPattern::HeavyHitter:
    return "heavy_hitter";
  case IdxPattern::MovingCluster:
    return "moving_cluster";
  case IdxPattern::AllConflict:
    return "all_conflict";
  case IdxPattern::AlternatingPair:
    return "alternating_pair";
  case IdxPattern::Monotone:
    return "monotone";
  case IdxPattern::HotBucket:
    return "hot_bucket";
  case IdxPattern::DistinctRoundRobin:
    return "distinct_round_robin";
  case IdxPattern::SmallAlphabet:
    return "small_alphabet";
  }
  return "unknown";
}

const char *valPatternName(ValPattern P) {
  switch (P) {
  case ValPattern::UnitRange:
    return "unit_range";
  case ValPattern::MixedMagnitude:
    return "mixed_magnitude";
  case ValPattern::Denormal:
    return "denormal";
  case ValPattern::HugeMagnitude:
    return "huge_magnitude";
  case ValPattern::SignedZeroOnes:
    return "signed_zero_ones";
  }
  return "unknown";
}

std::string CaseSpec::toString() const {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "seed=%" PRIu64 " n=%" PRId64 " universe=%d idx=%s val=%s",
                Seed, N, Universe, idxPatternName(Idx), valPatternName(Val));
  return Buf;
}

//===----------------------------------------------------------------------===//
// Index streams
//===----------------------------------------------------------------------===//

static AlignedVector<int32_t> genIdx(const CaseSpec &S) {
  const int64_t N = S.N;
  const int32_t U = S.Universe;
  Xoshiro256 Rng(S.Seed ^ 0x1d7a9F4bULL);
  AlignedVector<int32_t> Idx;

  switch (S.Idx) {
  case IdxPattern::Uniform:
    return workload::genKeys(workload::KeyDist::Uniform, N, U, S.Seed);
  case IdxPattern::Zipf:
    return workload::genKeys(workload::KeyDist::Zipf, N, U, S.Seed);
  case IdxPattern::HeavyHitter:
    return workload::genKeys(workload::KeyDist::HeavyHitter, N, U, S.Seed);
  case IdxPattern::MovingCluster:
    return workload::genKeys(workload::KeyDist::MovingCluster, N, U, S.Seed);

  case IdxPattern::AllConflict: {
    const int32_t Hot = static_cast<int32_t>(Rng.nextBounded(U));
    Idx.assign(static_cast<size_t>(N), Hot);
    return Idx;
  }
  case IdxPattern::AlternatingPair: {
    const int32_t A = static_cast<int32_t>(Rng.nextBounded(U));
    int32_t B = static_cast<int32_t>(Rng.nextBounded(U));
    if (U > 1 && B == A)
      B = (A + 1) % U;
    Idx.resize(static_cast<size_t>(N));
    for (int64_t I = 0; I < N; ++I)
      Idx[static_cast<size_t>(I)] = (I & 1) ? B : A;
    return Idx;
  }
  case IdxPattern::Monotone: {
    // Sorted with duplicate runs: the run length varies so conflicts land
    // both inside one vector and across a block boundary.
    Idx.resize(static_cast<size_t>(N));
    int32_t Cur = 0;
    int64_t I = 0;
    while (I < N) {
      int64_t Run = 1 + static_cast<int64_t>(Rng.nextBounded(7));
      for (; Run > 0 && I < N; --Run, ++I)
        Idx[static_cast<size_t>(I)] = Cur;
      if (U > 1)
        Cur = std::min<int32_t>(U - 1, Cur + 1 +
                                           static_cast<int32_t>(
                                               Rng.nextBounded(3)));
    }
    return Idx;
  }
  case IdxPattern::HotBucket: {
    const int32_t Hot = static_cast<int32_t>(Rng.nextBounded(U));
    Idx.resize(static_cast<size_t>(N));
    for (int64_t I = 0; I < N; ++I) {
      const bool TakeHot = Rng.nextBounded(10) < 9;
      Idx[static_cast<size_t>(I)] =
          TakeHot ? Hot : static_cast<int32_t>(Rng.nextBounded(U));
    }
    return Idx;
  }
  case IdxPattern::DistinctRoundRobin: {
    const int32_t Start = static_cast<int32_t>(Rng.nextBounded(U));
    Idx.resize(static_cast<size_t>(N));
    for (int64_t I = 0; I < N; ++I)
      Idx[static_cast<size_t>(I)] =
          static_cast<int32_t>((Start + I) % U);
    return Idx;
  }
  case IdxPattern::SmallAlphabet: {
    // Random draws from a <= 16-value alphabet: conflicts in most
    // windows, no order, no majority -- the register-resident
    // accumulator's home turf.  The alphabet size varies 2..16 (capped
    // by the universe) so the boundary against HotBucket/General is
    // exercised too.
    const int ASize = static_cast<int>(
        std::min<int64_t>(U, 2 + static_cast<int64_t>(Rng.nextBounded(15))));
    int32_t Alpha[16];
    int Have = 0;
    while (Have < ASize) {
      const int32_t X = static_cast<int32_t>(Rng.nextBounded(U));
      bool Seen = false;
      for (int J = 0; J < Have; ++J)
        Seen = Seen || Alpha[J] == X;
      if (!Seen)
        Alpha[Have++] = X;
    }
    Idx.resize(static_cast<size_t>(N));
    for (int64_t I = 0; I < N; ++I)
      Idx[static_cast<size_t>(I)] =
          Alpha[Rng.nextBounded(static_cast<uint64_t>(ASize))];
    return Idx;
  }
  }
  return Idx;
}

//===----------------------------------------------------------------------===//
// Value streams
//===----------------------------------------------------------------------===//

static AlignedVector<float> genVal(const CaseSpec &S) {
  const int64_t N = S.N;
  Xoshiro256 Rng(S.Seed ^ 0xbeefF00dULL);
  AlignedVector<float> Val(static_cast<size_t>(N));

  for (int64_t I = 0; I < N; ++I) {
    float V = 0.0f;
    switch (S.Val) {
    case ValPattern::UnitRange:
      V = Rng.nextFloat() - 0.5f;
      break;
    case ValPattern::MixedMagnitude: {
      // Magnitude 2^-20 .. 2^20 with random sign: large cancellation and
      // absorption, the regime where the ULP budget must earn its keep.
      const int Exp = static_cast<int>(Rng.nextBounded(41)) - 20;
      V = std::ldexp(0.5f + Rng.nextFloat(), Exp);
      if (Rng.nextBounded(2))
        V = -V;
      break;
    }
    case ValPattern::Denormal: {
      // Subnormals (exponent below -126) with a sprinkle of exact zeros.
      if (Rng.nextBounded(8) == 0) {
        V = Rng.nextBounded(2) ? 0.0f : -0.0f;
      } else {
        const int Exp = -127 - static_cast<int>(Rng.nextBounded(22));
        V = std::ldexp(0.5f + Rng.nextFloat(), Exp);
        if (Rng.nextBounded(2))
          V = -V;
      }
      break;
    }
    case ValPattern::HugeMagnitude: {
      // ~2^100: any sum of < 2^27 such terms stays finite in float, so the
      // pipelines never overflow transiently yet sit 3 ULP-decades from
      // FLT_MAX.  (True +-inf is excluded by design: inf - inf = NaN would
      // make cross-order agreement undefined.)
      const int Exp = 95 + static_cast<int>(Rng.nextBounded(6));
      V = std::ldexp(0.5f + Rng.nextFloat(), Exp);
      if (Rng.nextBounded(2))
        V = -V;
      break;
    }
    case ValPattern::SignedZeroOnes: {
      static const float Pool[4] = {-0.0f, 0.0f, 1.0f, -1.0f};
      V = Pool[Rng.nextBounded(4)];
      break;
    }
    }
    Val[static_cast<size_t>(I)] = V;
  }
  return Val;
}

//===----------------------------------------------------------------------===//
// Reference classifier
//===----------------------------------------------------------------------===//

pattern::TileClass expectedClass(const int32_t *Idx, int64_t N) {
  if (N <= 0)
    return pattern::TileClass::ConflictFree;

  // Conflict-free: every aligned 16-window holds pairwise-distinct
  // targets (the certification the no-conflict kernel relies on).
  bool CF = true;
  for (int64_t Base = 0; Base < N && CF; Base += pattern::kClassifyWindow) {
    const int64_t End = std::min<int64_t>(N, Base + pattern::kClassifyWindow);
    std::set<int32_t> Win;
    for (int64_t I = Base; I < End; ++I)
      if (!Win.insert(Idx[I]).second)
        CF = false;
  }
  if (CF)
    return pattern::TileClass::ConflictFree;

  bool Mono = true;
  for (int64_t I = 1; I < N && Mono; ++I)
    Mono = Idx[I] >= Idx[I - 1];
  if (Mono)
    return pattern::TileClass::Monotone;

  std::map<int32_t, int64_t> Hist;
  for (int64_t I = 0; I < N; ++I)
    ++Hist[Idx[I]];
  if (static_cast<int>(Hist.size()) <= pattern::kMaxAlphabet)
    return pattern::TileClass::SmallAlphabet;

  for (const auto &E : Hist)
    if (E.second * 2 > N) // strict majority, pattern::kHotShareMin
      return pattern::TileClass::HotBucket;
  return pattern::TileClass::General;
}

Workload genWorkload(const CaseSpec &Spec) {
  Workload W;
  W.Spec = Spec;
  if (Spec.N > 0) {
    W.Idx = genIdx(Spec);
    W.Val = genVal(Spec);
  }
  W.Expected = expectedClass(W.Idx.data(), Spec.N);
  return W;
}

//===----------------------------------------------------------------------===//
// Case enumeration
//===----------------------------------------------------------------------===//

CaseSpec specForCase(uint64_t Seed, uint64_t CaseNo) {
  // SplitMix64 folds (Seed, CaseNo) into an independent per-case stream so
  // neighbouring cases share nothing.
  SplitMix64 Mix(Seed ^ (CaseNo * 0x9E3779B97F4A7C15ULL + 1));
  const uint64_t R0 = Mix.next();
  const uint64_t R1 = Mix.next();
  const uint64_t R2 = Mix.next();

  CaseSpec S;
  S.Seed = Mix.next();
  S.Idx = static_cast<IdxPattern>(CaseNo % kNumIdxPatterns);
  S.Val = static_cast<ValPattern>((CaseNo / kNumIdxPatterns) %
                                  kNumValPatterns);

  // Length schedule: every residue mod 16 appears early and repeatedly,
  // plus block-boundary straddlers and longer random streams.
  static const int64_t Tails[] = {0,  1,  2,  3,  4,  5,  6,  7,  8,  9,
                                  10, 11, 12, 13, 14, 15, 16, 17, 31, 33};
  const uint64_t Slot = CaseNo % 28;
  if (Slot < 20)
    S.N = Tails[Slot];
  else
    S.N = 48 + static_cast<int64_t>(R0 % 208); // 48 .. 255

  static const int32_t Universes[] = {1, 2, 3, 8, 15, 16, 17, 64, 509};
  S.Universe = Universes[R1 % (sizeof(Universes) / sizeof(Universes[0]))];
  (void)R2;
  return S;
}

AlignedVector<int32_t> intPayload(const Workload &W) {
  // Hash the float bits into [-500, 500]: bounded so integer sums cannot
  // overflow for any generated stream length, independent of magnitude.
  AlignedVector<int32_t> P(W.Val.size());
  for (size_t I = 0; I < W.Val.size(); ++I) {
    uint32_t Bits;
    std::memcpy(&Bits, &W.Val[I], sizeof(Bits));
    Bits ^= Bits >> 16;
    Bits *= 0x7feb352dU;
    P[I] = static_cast<int32_t>(Bits % 1001U) - 500;
  }
  return P;
}

graph::EdgeList toEdgeList(const Workload &W, bool Weighted) {
  graph::EdgeList E;
  E.NumNodes = W.Spec.Universe;
  const int64_t N = W.Spec.N;
  E.Src.resize(static_cast<size_t>(N));
  E.Dst.resize(static_cast<size_t>(N));
  if (Weighted)
    E.Weight.resize(static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I) {
    E.Src[static_cast<size_t>(I)] =
        static_cast<int32_t>(I % W.Spec.Universe);
    E.Dst[static_cast<size_t>(I)] = W.Idx[static_cast<size_t>(I)];
    if (Weighted) {
      float A = std::fabs(W.Val[static_cast<size_t>(I)]);
      if (!std::isfinite(A) || A > 63.0f)
        A = 63.0f;
      E.Weight[static_cast<size_t>(I)] = 1.0f + A;
    }
  }
  return E;
}

//===----------------------------------------------------------------------===//
// Corpus files
//===----------------------------------------------------------------------===//

Status writeCorpus(const std::string &Path, const Workload &W) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return Status::error(ErrorCode::IoError,
                         "cannot open corpus file for writing: " + Path);
  std::fprintf(F, "# cfv-corpus v1\n");
  std::fprintf(F, "# spec %s\n", W.Spec.toString().c_str());
  std::fprintf(F, "# src\tdst\tvalue\n");
  for (int64_t I = 0; I < W.Spec.N; ++I)
    std::fprintf(F, "%" PRId64 "\t%d\t%a\n", I % W.Spec.Universe,
                 W.Idx[static_cast<size_t>(I)],
                 static_cast<double>(W.Val[static_cast<size_t>(I)]));
  if (std::fclose(F) != 0)
    return Status::error(ErrorCode::IoError, "write failed: " + Path);
  return Status();
}

static bool parseSpecLine(const char *Line, CaseSpec &S) {
  char IdxName[48] = {0};
  char ValName[48] = {0};
  if (std::sscanf(Line,
                  "# spec seed=%" SCNu64 " n=%" SCNd64
                  " universe=%d idx=%47s val=%47s",
                  &S.Seed, &S.N, &S.Universe, IdxName, ValName) != 5)
    return false;
  bool FoundIdx = false, FoundVal = false;
  for (int I = 0; I < kNumIdxPatterns; ++I)
    if (std::strcmp(IdxName, idxPatternName(static_cast<IdxPattern>(I))) ==
        0) {
      S.Idx = static_cast<IdxPattern>(I);
      FoundIdx = true;
    }
  for (int I = 0; I < kNumValPatterns; ++I)
    if (std::strcmp(ValName, valPatternName(static_cast<ValPattern>(I))) ==
        0) {
      S.Val = static_cast<ValPattern>(I);
      FoundVal = true;
    }
  return FoundIdx && FoundVal;
}

Expected<Workload> readCorpus(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return Status::error(ErrorCode::IoError,
                         "cannot open corpus file: " + Path);
  Workload W;
  bool SawMagic = false, SawSpec = false;
  char Line[512];
  int LineNo = 0;
  auto fail = [&](const std::string &Msg) -> Status {
    std::fclose(F);
    return Status::error(ErrorCode::ParseError,
                         Path + ":" + std::to_string(LineNo) + ": " + Msg);
  };
  while (std::fgets(Line, sizeof(Line), F)) {
    ++LineNo;
    if (Line[0] == '\n')
      continue;
    if (Line[0] == '#') {
      if (!SawMagic) {
        if (std::strncmp(Line, "# cfv-corpus v1", 15) != 0)
          return fail("missing '# cfv-corpus v1' magic");
        SawMagic = true;
      } else if (!SawSpec && std::strncmp(Line, "# spec ", 7) == 0) {
        if (!parseSpecLine(Line, W.Spec))
          return fail("malformed spec line");
        SawSpec = true;
      }
      continue;
    }
    if (!SawMagic || !SawSpec)
      return fail("data row before corpus header");
    long long Src = 0;
    int Dst = 0;
    double V = 0.0;
    char *End = nullptr;
    // "src\tdst\tvalue" with a hexfloat value (strtod parses %a output).
    Src = std::strtoll(Line, &End, 10);
    (void)Src;
    Dst = static_cast<int>(std::strtol(End, &End, 10));
    V = std::strtod(End, &End);
    if (End == Line)
      return fail("malformed data row");
    if (Dst < 0 || Dst >= W.Spec.Universe)
      return fail("index out of range for declared universe");
    W.Idx.push_back(Dst);
    W.Val.push_back(static_cast<float>(V));
  }
  std::fclose(F);
  if (!SawMagic || !SawSpec)
    return Status::error(ErrorCode::ParseError,
                         Path + ": missing corpus header");
  if (static_cast<int64_t>(W.Idx.size()) != W.Spec.N)
    return Status::error(ErrorCode::ParseError,
                         Path + ": row count does not match spec n");
  W.Expected = expectedClass(W.Idx.data(), W.Spec.N);
  return W;
}

} // namespace verify
} // namespace cfv
