//===- graph/Prepared.cpp - Shareable dataset + derived schedules ---------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "graph/Prepared.h"

#include "pattern/Classify.h"

using namespace cfv;
using namespace cfv::graph;

namespace {

int64_t edgeListBytes(const EdgeList &E) {
  return static_cast<int64_t>(E.Src.capacity() * sizeof(int32_t) +
                              E.Dst.capacity() * sizeof(int32_t) +
                              E.Weight.capacity() * sizeof(float));
}

int64_t csrBytes(const Csr &C) {
  return static_cast<int64_t>(C.RowBegin.capacity() * sizeof(int64_t) +
                              C.Col.capacity() * sizeof(int32_t) +
                              C.Weight.capacity() * sizeof(float));
}

} // namespace

PreparedGraph::PreparedGraph(EdgeList G) : Edges(std::move(G)) {
  BaseBytes = edgeListBytes(Edges);
}

const Csr &PreparedGraph::csr() const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!CsrPtr) {
    CsrPtr = std::make_unique<Csr>(buildCsr(Edges));
    ArtifactBytes.fetch_add(csrBytes(*CsrPtr), std::memory_order_relaxed);
  }
  return *CsrPtr;
}

const AlignedVector<int32_t> &PreparedGraph::outDegrees() const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Degrees) {
    Degrees = std::make_unique<AlignedVector<int32_t>>(
        graph::outDegrees(Edges));
    ArtifactBytes.fetch_add(
        static_cast<int64_t>(Degrees->capacity() * sizeof(int32_t)),
        std::memory_order_relaxed);
  }
  return *Degrees;
}

const inspector::TilingResult &PreparedGraph::tiling(int BlockBits) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Tilings.find(BlockBits);
  if (It == Tilings.end()) {
    auto T = std::make_unique<inspector::TilingResult>(
        inspector::tileByDestination(Edges.Dst.data(), Edges.numEdges(),
                                     Edges.NumNodes, BlockBits));
    // Classify each tile's destination stream while the schedule is still
    // private to this thread; once published via the map the TilingResult
    // is immutable.  Skipped entirely under CFV_PATTERN=off so the knob
    // also disables the inspector-side cost.
    if (pattern::envMode() != pattern::Mode::Off) {
      auto P = std::make_shared<pattern::PatternResult>(
          pattern::classifyTiling(*T, Edges.Dst.data()));
      ArtifactBytes.fetch_add(P->approxBytes(), std::memory_order_relaxed);
      T->Pattern = std::move(P);
    }
    ArtifactBytes.fetch_add(T->approxBytes(), std::memory_order_relaxed);
    It = Tilings.emplace(BlockBits, std::move(T)).first;
  }
  return *It->second;
}

const pattern::PatternResult &PreparedGraph::streamPattern() const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!StreamPattern) {
    StreamPattern = std::make_unique<pattern::PatternResult>(
        pattern::classifyStream(Edges.Src.data(), Edges.numEdges()));
    ArtifactBytes.fetch_add(StreamPattern->approxBytes(),
                            std::memory_order_relaxed);
  }
  return *StreamPattern;
}
