//===- core/CostModel.h - Instruction-cost model of §3.3/3.4 ----*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's analytical overhead model for the two in-vector reduction
/// variants: Algorithm 1 costs about 2 + 8*D1 instructions and Algorithm 2
/// about 7 + 8*D2, where D1/D2 count the distinct conflicting lanes each
/// variant must merge.  Algorithm 2 wins when 2 + 8*D1 > 7 + 8*D2, i.e.
/// D1 > D2 + 0.625; §3.4 simplifies the runtime policy to "use Algorithm 2
/// when D1 > 1".  The ablation bench validates this model empirically.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_CORE_COSTMODEL_H
#define CFV_CORE_COSTMODEL_H

#include "simd/Backend.h"

namespace cfv {
namespace core {

/// Estimated instruction count of one Algorithm 1 invocation with
/// \p D1 distinct conflicting lanes.
constexpr double alg1Cost(double D1) { return 2.0 + 8.0 * D1; }

/// Estimated instruction count of one Algorithm 2 invocation with
/// \p D2 distinct conflicting lanes in the conflicting subset.
constexpr double alg2Cost(double D2) { return 7.0 + 8.0 * D2; }

/// Worst-case D1: every index occurs exactly twice (8 distinct
/// conflicting lanes in a 16-lane vector, §3.4).  The model is stated
/// for the paper's 16-lane machine; narrower backends only improve on
/// these bounds, so the policy constants stay width-independent.
constexpr int kWorstD1 = simd::kMaxLanes / 2;

/// Worst-case D2: each distinct index occurs three times or more,
/// D2 <= floor(16/3) (§3.4).
constexpr int kWorstD2 = simd::kMaxLanes / 3;

/// The paper's exact crossover: Algorithm 2 is profitable when
/// D1 > D2 + 0.625.
constexpr bool alg2Profitable(double D1, double D2) {
  return alg1Cost(D1) > alg2Cost(D2);
}

/// The simplified runtime policy of §3.4: switch to Algorithm 2 when the
/// sampled mean D1 exceeds 1.
constexpr bool preferAlg2(double MeanD1) { return MeanD1 > 1.0; }

//===----------------------------------------------------------------------===//
// Cross-core privatization (core/ParallelEngine.h)
//===----------------------------------------------------------------------===//

/// Touches a dense replica costs per element: one identity fill before
/// the sweep plus one read during the merge.
constexpr long long kDensePrivatizeCostPerElem = 2;

/// Touches a sparse spill list costs per update: one append during the
/// sweep plus one apply during the merge.
constexpr long long kSpillCostPerUpdate = 2;

/// Dense replication of a privatized accumulator array pays O(elements)
/// per thread regardless of how many updates land in it; a sparse spill
/// list pays O(updates) regardless of the array size.  Dense wins when
/// the array is small relative to one thread's share of the updates --
/// the cross-core analogue of the Algorithm 1/2 trade-off above.
constexpr bool privatizeDense(long long Elems, long long UpdatesPerThread) {
  return kDensePrivatizeCostPerElem * Elems <=
         kSpillCostPerUpdate * UpdatesPerThread;
}

} // namespace core
} // namespace cfv

#endif // CFV_CORE_COSTMODEL_H
