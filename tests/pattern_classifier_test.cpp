//===- tests/pattern_classifier_test.cpp - Pattern classifier --------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The per-tile index-stream classifier (src/pattern/): intended classes
// for handcrafted streams, agreement with the verify harness's naive
// reference over every generator family and tail residue, pseudo-tile
// segmentation, mode resolution, and the per-tile statistics the
// dispatcher's cost model reads.
//
//===----------------------------------------------------------------------===//

#include "pattern/Classify.h"
#include "verify/Gen.h"

#include "gtest/gtest.h"

#include <vector>

using namespace cfv;
using pattern::TileClass;

namespace {

AlignedVector<int32_t> conflictFreeStream(int64_t N) {
  AlignedVector<int32_t> Idx(static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I)
    Idx[static_cast<size_t>(I)] = static_cast<int32_t>(I % 16);
  return Idx;
}

AlignedVector<int32_t> monotoneStream(int64_t N, int Run) {
  AlignedVector<int32_t> Idx(static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I)
    Idx[static_cast<size_t>(I)] = static_cast<int32_t>(I / Run);
  return Idx;
}

AlignedVector<int32_t> smallAlphabetStream(int64_t N) {
  static const int32_t Alpha[5] = {3, 9, 1, 7, 5};
  AlignedVector<int32_t> Idx(static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I)
    Idx[static_cast<size_t>(I)] = Alpha[I % 5];
  return Idx;
}

AlignedVector<int32_t> hotBucketStream(int64_t N) {
  // 60% one target, the rest spread over ~30 cold ones (> 16 distinct,
  // so the small-alphabet rule cannot claim it first).
  AlignedVector<int32_t> Idx(static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I)
    Idx[static_cast<size_t>(I)] =
        (I % 5 < 3) ? 7 : static_cast<int32_t>(20 + (I * 7) % 60);
  return Idx;
}

AlignedVector<int32_t> generalStream(int64_t N) {
  // Duplicate pairs over a 24-value cycle: conflicts in every window,
  // unsorted, 24 distinct targets, no majority.
  AlignedVector<int32_t> Idx(static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I)
    Idx[static_cast<size_t>(I)] = static_cast<int32_t>((I / 2 * 7) % 24);
  return Idx;
}

} // namespace

TEST(PatternClassifier, IntendedClasses) {
  const int64_t N = 160;
  EXPECT_EQ(pattern::classifyRange(conflictFreeStream(N).data(), N).Class,
            TileClass::ConflictFree);
  EXPECT_EQ(pattern::classifyRange(monotoneStream(N, 3).data(), N).Class,
            TileClass::Monotone);
  EXPECT_EQ(pattern::classifyRange(smallAlphabetStream(N).data(), N).Class,
            TileClass::SmallAlphabet);
  EXPECT_EQ(pattern::classifyRange(hotBucketStream(N).data(), N).Class,
            TileClass::HotBucket);
  EXPECT_EQ(pattern::classifyRange(generalStream(N).data(), N).Class,
            TileClass::General);
}

TEST(PatternClassifier, EmptyTileIsConflictFree) {
  EXPECT_EQ(pattern::classifyRange(nullptr, 0).Class,
            TileClass::ConflictFree);
}

TEST(PatternClassifier, PrecedenceConflictFreeBeatsEverything) {
  // A strictly increasing stream is sorted AND window-distinct: the
  // cheaper conflict-free kernel must win over monotone.
  AlignedVector<int32_t> Idx(64);
  for (int I = 0; I < 64; ++I)
    Idx[static_cast<size_t>(I)] = I;
  EXPECT_EQ(pattern::classifyRange(Idx.data(), 64).Class,
            TileClass::ConflictFree);
}

TEST(PatternClassifier, TailResiduesEveryIntendedClass) {
  // Every residue mod 8 and mod 16 (0..16 covers both lane widths),
  // plus straddlers: the classifier must place partial windows in the
  // same class the full-length stream gets.
  for (int64_t N : {0,  1,  2,  3,  4,  5,  6,  7,  8,  9, 10, 11,
                    12, 13, 14, 15, 16, 17, 24, 31, 33, 48}) {
    SCOPED_TRACE(N);
    const auto CF = conflictFreeStream(N);
    EXPECT_EQ(pattern::classifyRange(CF.data(), N).Class,
              TileClass::ConflictFree);
    EXPECT_EQ(pattern::classifyRange(CF.data(), N).Class,
              verify::expectedClass(CF.data(), N));
    for (const auto &Idx :
         {monotoneStream(N, 3), smallAlphabetStream(N), hotBucketStream(N),
          generalStream(N)})
      // Short prefixes legitimately fall into cheaper classes (a 4-run
      // monotone prefix of length 3 is conflict-free); what must hold
      // for every length is agreement with the naive reference.
      EXPECT_EQ(pattern::classifyRange(Idx.data(), N).Class,
                verify::expectedClass(Idx.data(), N));
  }
}

TEST(PatternClassifier, AgreesWithReferenceOnEveryGenFamily) {
  // The generator tags each workload via verify::expectedClass; the
  // production single-scan classifier must agree across every index
  // family, value family, and tail residue the enumerator emits.
  for (uint64_t CaseNo = 0; CaseNo < 600; ++CaseNo) {
    const verify::Workload W =
        verify::genWorkload(verify::specForCase(0xC1A55, CaseNo));
    SCOPED_TRACE(W.Spec.toString());
    EXPECT_EQ(pattern::classifyRange(W.Idx.data(), W.Spec.N).Class,
              W.Expected);
  }
}

TEST(PatternClassifier, SmallAlphabetGenFamilyLandsInClass) {
  // The dedicated generator family must actually produce the class it
  // was added to stress (for lengths long enough to rule out CF).
  verify::CaseSpec S;
  S.Seed = 42;
  S.N = 256;
  S.Universe = 509;
  S.Idx = verify::IdxPattern::SmallAlphabet;
  const verify::Workload W = verify::genWorkload(S);
  EXPECT_EQ(W.Expected, TileClass::SmallAlphabet);
  EXPECT_EQ(pattern::classifyRange(W.Idx.data(), W.Spec.N).Class,
            TileClass::SmallAlphabet);
}

TEST(PatternClassifier, StreamSegmentation) {
  // Three 64-element pseudo-tiles with different shapes, plus a 17-
  // element tail tile: per-tile classes and the count summary.
  AlignedVector<int32_t> Idx;
  const auto Append = [&](const AlignedVector<int32_t> &S) {
    Idx.insert(Idx.end(), S.begin(), S.end());
  };
  Append(conflictFreeStream(64));
  Append(monotoneStream(64, 3));
  Append(generalStream(64));
  Append(conflictFreeStream(17));

  const pattern::PatternResult P =
      pattern::classifyStream(Idx.data(), static_cast<int64_t>(Idx.size()),
                              /*TileLen=*/64);
  ASSERT_EQ(P.numTiles(), 4);
  EXPECT_EQ(P.TileLen, 64);
  EXPECT_EQ(P.Tiles[0].Class, TileClass::ConflictFree);
  EXPECT_EQ(P.Tiles[1].Class, TileClass::Monotone);
  EXPECT_EQ(P.Tiles[2].Class, TileClass::General);
  EXPECT_EQ(P.Tiles[3].Class, TileClass::ConflictFree);
  EXPECT_EQ(P.Counts[static_cast<int>(TileClass::ConflictFree)], 2);
  EXPECT_EQ(P.Counts[static_cast<int>(TileClass::Monotone)], 1);
  EXPECT_EQ(P.Counts[static_cast<int>(TileClass::General)], 1);
}

TEST(PatternClassifier, StreamTileLenRoundsToWindow) {
  // Pseudo-tile starts must stay window-aligned (the certification
  // contract), so odd lengths round up to a multiple of 16.
  const auto Idx = conflictFreeStream(128);
  const pattern::PatternResult P =
      pattern::classifyStream(Idx.data(), 128, /*TileLen=*/50);
  EXPECT_EQ(P.TileLen, 64);
  EXPECT_EQ(P.numTiles(), 2);
}

TEST(PatternClassifier, TileStatistics) {
  const int64_t N = 160;
  const auto Mono = monotoneStream(N, 4);
  const pattern::TileInfo M = pattern::classifyRange(Mono.data(), N);
  EXPECT_EQ(M.MaxRun, 4);
  EXPECT_GT(M.D1Estimate, 0.0f);

  const auto Alpha = smallAlphabetStream(N);
  const pattern::TileInfo A = pattern::classifyRange(Alpha.data(), N);
  ASSERT_EQ(A.Class, TileClass::SmallAlphabet);
  EXPECT_EQ(A.AlphabetSize, 5);
  // The stored alphabet is sorted and matches the distinct targets.
  const int32_t Want[5] = {1, 3, 5, 7, 9};
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(A.Alphabet[I], Want[I]);

  const auto Hot = hotBucketStream(N);
  const pattern::TileInfo H = pattern::classifyRange(Hot.data(), N);
  ASSERT_EQ(H.Class, TileClass::HotBucket);
  EXPECT_EQ(H.HotIdx, 7);
  EXPECT_NEAR(H.HotShare, 0.6f, 0.01f);

  const pattern::TileInfo C =
      pattern::classifyRange(conflictFreeStream(N).data(), N);
  EXPECT_EQ(C.D1Estimate, 0.0f);
}

TEST(PatternClassifier, ModeResolution) {
  EXPECT_EQ(pattern::resolveMode(core::PatternMode::Off),
            pattern::Mode::Off);
  EXPECT_EQ(pattern::resolveMode(core::PatternMode::ClassifyOnly),
            pattern::Mode::ClassifyOnly);
  EXPECT_EQ(pattern::resolveMode(core::PatternMode::On), pattern::Mode::On);
  // Env defers to CFV_PATTERN (cached); whatever it resolves to must be
  // one of the three concrete modes.
  const pattern::Mode M = pattern::resolveMode(core::PatternMode::Env);
  EXPECT_TRUE(M == pattern::Mode::Off || M == pattern::Mode::ClassifyOnly ||
              M == pattern::Mode::On);
}

TEST(PatternClassifier, ClassNamesAreStable) {
  // Metric label / JSON field names: renames break dashboards.
  EXPECT_STREQ(pattern::tileClassName(TileClass::ConflictFree),
               "conflict_free");
  EXPECT_STREQ(pattern::tileClassName(TileClass::Monotone), "monotone");
  EXPECT_STREQ(pattern::tileClassName(TileClass::SmallAlphabet),
               "small_alphabet");
  EXPECT_STREQ(pattern::tileClassName(TileClass::HotBucket), "hot_bucket");
  EXPECT_STREQ(pattern::tileClassName(TileClass::General), "general");
  EXPECT_STREQ(pattern::modeName(pattern::Mode::Off), "off");
  EXPECT_STREQ(pattern::modeName(pattern::Mode::ClassifyOnly),
               "classify-only");
  EXPECT_STREQ(pattern::modeName(pattern::Mode::On), "on");
}
