//===- tests/wcc_test.cpp - Weakly connected components -------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Note: the paper's WCC (Figure 2 context, §2.2) propagates labels along
// *directed* edges ("sends the index of the incoming vertex to the
// outgoing vertex"); we validate against a union-find over the same
// directed reachability semantics by symmetrizing the graph before
// running the engine, which makes label regions true weakly connected
// components.
//
//===----------------------------------------------------------------------===//

#include "apps/frontier/FrontierEngine.h"

#include "graph/Generators.h"

#include "gtest/gtest.h"

#include <functional>
#include <numeric>

using namespace cfv;
using namespace cfv::apps;
using namespace cfv::graph;

namespace {

/// Adds the reverse of every edge so min-label propagation computes
/// weakly connected components.
EdgeList symmetrize(const EdgeList &G) {
  EdgeList S;
  S.NumNodes = G.NumNodes;
  for (int64_t E = 0; E < G.numEdges(); ++E) {
    S.Src.push_back(G.Src[E]);
    S.Dst.push_back(G.Dst[E]);
    S.Src.push_back(G.Dst[E]);
    S.Dst.push_back(G.Src[E]);
  }
  return S;
}

/// Union-find reference components.
std::vector<int32_t> unionFind(const EdgeList &G) {
  std::vector<int32_t> Parent(G.NumNodes);
  std::iota(Parent.begin(), Parent.end(), 0);
  std::function<int32_t(int32_t)> Find = [&](int32_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };
  for (int64_t E = 0; E < G.numEdges(); ++E) {
    const int32_t A = Find(G.Src[E]);
    const int32_t B = Find(G.Dst[E]);
    if (A != B)
      Parent[std::max(A, B)] = std::min(A, B);
  }
  std::vector<int32_t> Root(G.NumNodes);
  for (int32_t V = 0; V < G.NumNodes; ++V)
    Root[V] = Find(V);
  return Root;
}

void expectComponentsMatch(const AlignedVector<float> &Labels,
                           const std::vector<int32_t> &Root) {
  // Same component <=> same label; and the label of a component is its
  // minimum vertex id (min-propagation from self-initialization).
  for (std::size_t V = 0; V < Labels.size(); ++V)
    ASSERT_EQ(Labels[V], static_cast<float>(Root[V])) << "vertex " << V;
}

constexpr FrVersion kAllVersions[] = {
    FrVersion::NontilingSerial, FrVersion::NontilingMask,
    FrVersion::NontilingInvec, FrVersion::TilingGrouping};

} // namespace

class WccVersions : public ::testing::TestWithParam<FrVersion> {};

TEST_P(WccVersions, MatchesUnionFindOnSparseGraph) {
  // Sparse: many components.
  const EdgeList G = symmetrize(genUniform(10, 600, 21));
  const auto Root = unionFind(G);
  const FrontierResult R = runFrontier(G, FrApp::Wcc, GetParam());
  expectComponentsMatch(R.Value, Root);
}

TEST_P(WccVersions, MatchesUnionFindOnDenseGraph) {
  // Dense: a giant component emerges.
  const EdgeList G = symmetrize(genRmat(9, 8000, 22));
  const auto Root = unionFind(G);
  const FrontierResult R = runFrontier(G, FrApp::Wcc, GetParam());
  expectComponentsMatch(R.Value, Root);
}

TEST_P(WccVersions, IsolatedVerticesKeepOwnLabel) {
  EdgeList G;
  G.NumNodes = 8;
  G.Src = {1, 2};
  G.Dst = {2, 1};
  const FrontierResult R = runFrontier(G, FrApp::Wcc, GetParam());
  EXPECT_EQ(R.Value[0], 0.0f);
  EXPECT_EQ(R.Value[1], 1.0f);
  EXPECT_EQ(R.Value[2], 1.0f);
  EXPECT_EQ(R.Value[7], 7.0f);
}

TEST_P(WccVersions, LongChainNeedsManyWaves) {
  // A path graph: the label of vertex 0 must travel the whole chain.
  constexpr int32_t N = 300;
  EdgeList G;
  G.NumNodes = N;
  for (int32_t V = 0; V + 1 < N; ++V) {
    G.Src.push_back(V);
    G.Dst.push_back(V + 1);
    G.Src.push_back(V + 1);
    G.Dst.push_back(V);
  }
  const FrontierResult R = runFrontier(G, FrApp::Wcc, GetParam());
  for (int32_t V = 0; V < N; ++V)
    ASSERT_EQ(R.Value[V], 0.0f);
  EXPECT_GT(R.Iterations, 100) << "wavefront must sweep the chain";
}

INSTANTIATE_TEST_SUITE_P(AllVersions, WccVersions,
                         ::testing::ValuesIn(kAllVersions),
                         [](const auto &Info) {
                           return versionName(Info.param);
                         });

TEST(Wcc, AllVersionsBitIdentical) {
  const EdgeList G = symmetrize(genRmat(9, 5000, 23));
  const FrontierResult Ref =
      runFrontier(G, FrApp::Wcc, FrVersion::NontilingSerial);
  for (const FrVersion V :
       {FrVersion::NontilingMask, FrVersion::NontilingInvec,
        FrVersion::TilingGrouping}) {
    const FrontierResult R = runFrontier(G, FrApp::Wcc, V);
    EXPECT_EQ(R.Value, Ref.Value) << versionName(V);
    EXPECT_EQ(R.Iterations, Ref.Iterations) << versionName(V);
  }
}
