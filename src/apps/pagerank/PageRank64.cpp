//===- apps/pagerank/PageRank64.cpp - Double-precision PageRank ----------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/pagerank/PageRank64.h"

#include "core/Backends.h"
#include "core/InvecReduce.h"
#include "core/ParallelEngine.h"
#include "core/Variant.h"
#include "simd/Traits.h"
#include "simd/Vec64.h"
#include "util/Stats.h"
#include "util/Timer.h"

#include <cmath>
#include <vector>

using namespace cfv;
using namespace cfv::apps;

using B = simd::NativeBackend;
using LVec = simd::VecI64<B>;
using DVec = simd::VecF64<B>;
using simd::Mask16;
constexpr int kLanes64 = B::kLanes64;
constexpr Mask16 kAllLanes64 = simd::BackendTraits<B>::kFullMask64;

namespace {

struct Pr64State {
  int32_t N;
  int64_t M;
  AlignedVector<double> Rank, Sum, DegF;
  /// Destination indices widened once to 64-bit for the gather/scatter
  /// and conflict units of the 8-lane path.
  AlignedVector<int64_t> Src64, Dst64;
};

Pr64State makeState(const graph::EdgeList &G) {
  Pr64State S;
  S.N = G.NumNodes;
  S.M = G.numEdges();
  S.Rank.assign(S.N, 1.0 / static_cast<double>(S.N));
  S.Sum.assign(S.N, 0.0);
  S.DegF.resize(S.N);
  const AlignedVector<int32_t> Deg = graph::outDegrees(G);
  for (int32_t V = 0; V < S.N; ++V)
    S.DegF[V] = static_cast<double>(Deg[V]);
  S.Src64.resize(S.M);
  S.Dst64.resize(S.M);
  for (int64_t E = 0; E < S.M; ++E) {
    S.Src64[E] = G.Src[E];
    S.Dst64[E] = G.Dst[E];
  }
  return S;
}

double applyDampingAndReset(Pr64State &S, double Damping) {
  const double Base = (1.0 - Damping) / static_cast<double>(S.N);
  double Delta = 0.0;
  for (int32_t V = 0; V < S.N; ++V) {
    const double NewRank = Base + Damping * S.Sum[V];
    Delta += std::fabs(NewRank - S.Rank[V]);
    S.Rank[V] = NewRank;
    S.Sum[V] = 0.0;
  }
  return Delta;
}

void edgePhaseSerial(const Pr64State &S, int64_t Lo, int64_t Hi,
                     double *Sum) {
  for (int64_t J = Lo; J < Hi; ++J)
    Sum[S.Dst64[J]] += S.Rank[S.Src64[J]] / S.DegF[S.Src64[J]];
}

void edgePhaseInvec(const Pr64State &S, int64_t Lo, int64_t Hi, double *Sum,
                    ConflictCounter &MeanD1) {
  for (int64_t J = Lo; J < Hi; J += kLanes64) {
    const int64_t Left = Hi - J;
    const Mask16 Active =
        Left >= kLanes64 ? kAllLanes64
                         : static_cast<Mask16>((1u << Left) - 1u);
    const LVec Vnx = LVec::maskLoad(LVec::zero(), Active, S.Src64.data() + J);
    const LVec Vny = LVec::maskLoad(LVec::zero(), Active, S.Dst64.data() + J);
    const DVec Vrank = DVec::maskGather(DVec::zero(), Active, S.Rank.data(),
                                        Vnx);
    const DVec Vdeg = DVec::maskGather(DVec::broadcast(1.0), Active,
                                       S.DegF.data(), Vnx);
    DVec Vadd = Vrank / Vdeg;
    const core::InvecResult R =
        core::invecReduce<simd::OpAdd>(Active, Vny, Vadd);
    MeanD1.add(R.Distinct);
    core::accumulateScatter<simd::OpAdd>(R.Ret, Vny, Vadd, Sum);
  }
}

} // namespace

// Compiled once per backend variant; the public apps::runPageRank64
// forwards here through core::dispatch().
PageRank64Result apps::CFV_VARIANT_NS::runPageRank64(
    const graph::EdgeList &G, Pr64Version V, const PageRankOptions &O) {
  PageRank64Result R;
  Pr64State S = makeState(G);

  // Double-precision replicas are always dense: the Sum array is the
  // same size as the rank vector, and the 8-lane spill path would need a
  // dedicated 64-bit spill list for little gain.
  const int NumThreads = core::resolveThreads(O.Threads);
  const std::vector<int64_t> Bounds =
      core::chunkBounds(S.M, NumThreads, kLanes64);
  std::vector<AlignedVector<double>> Parts(NumThreads > 1 ? NumThreads - 1
                                                          : 0);
  for (auto &P : Parts)
    P.assign(S.N, 0.0);
  std::vector<ConflictCounter> D1s(NumThreads);

  core::ParallelEngine &Engine = core::ParallelEngine::instance();
  const auto EdgeBody = [&](int Tid) {
    double *Sum = Tid == 0 ? S.Sum.data() : Parts[Tid - 1].data();
    if (V == Pr64Version::Serial)
      edgePhaseSerial(S, Bounds[Tid], Bounds[Tid + 1], Sum);
    else
      edgePhaseInvec(S, Bounds[Tid], Bounds[Tid + 1], Sum, D1s[Tid]);
  };

  WallTimer Compute;
  for (int Iter = 0; Iter < O.MaxIterations; ++Iter) {
    Engine.run(NumThreads, EdgeBody);
    core::mergeTreeAdd(S.Sum.data(), Parts, S.N);
    const double Delta = applyDampingAndReset(S, O.Damping);
    ++R.Iterations;
    if (Delta < O.Tolerance)
      break;
  }
  R.ComputeSeconds = Compute.seconds();
  R.Rank = std::move(S.Rank);
  ConflictCounter MeanD1;
  for (const ConflictCounter &D : D1s)
    MeanD1.merge(D);
  R.MeanD1 = MeanD1.count() ? MeanD1.mean() : 0.0;
  R.D1Hist = MeanD1.histogram();
  return R;
}
