//===- apps/agg/Aggregation.cpp - Hash-based group-by aggregation --------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/agg/Aggregation.h"

#include "core/Backends.h"
#include "core/CostModel.h"
#include "core/InvecReduce.h"
#include "core/ParallelEngine.h"
#include "core/Variant.h"
#include "simd/Traits.h"
#include "obs/Kernel.h"
#include "pattern/Classify.h"
#include "util/Stats.h"
#include "util/Timer.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <map>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <vector>

using namespace cfv;
using namespace cfv::apps;

using B = simd::NativeBackend;
using IVec = simd::VecI32<B>;
using FVec = simd::VecF32<B>;
using simd::Mask16;
constexpr int kLanes = B::kLanes;
constexpr int kLanesLog2 = std::countr_zero(static_cast<unsigned>(kLanes));
constexpr Mask16 kAllLanes = simd::BackendTraits<B>::kFullMask;

#if CFV_VARIANT_PRIMARY
const char *apps::versionName(AggVersion V) {
  switch (V) {
  case AggVersion::LinearSerial:
    return "linear_serial";
  case AggVersion::LinearMask:
    return "linear_mask";
  case AggVersion::BucketMask:
    return "bucket_mask";
  case AggVersion::LinearInvec:
    return "linear_invec";
  case AggVersion::BucketInvec:
    return "bucket_invec";
  }
  return "unknown";
}
#endif // CFV_VARIANT_PRIMARY

namespace {

constexpr int32_t kEmptyKey = -1;
/// Gather default that matches neither a real key nor the empty marker.
constexpr int32_t kNeverKey = -2;

/// Capacity cap: 2^27 slots keeps the largest table (bucketized, four
/// payload arrays) under 10 GiB even at the sweep's extremes and, more
/// importantly, keeps the power-of-two arithmetic inside 32 bits.
constexpr uint64_t kMaxSlots = uint64_t(1) << 27;

uint32_t nextPow2(uint64_t X) {
  assert(X <= kMaxSlots && "aggregation table over the size cap; shrink "
                           "the cardinality hint");
  if (X > kMaxSlots)
    X = kMaxSlots; // release builds saturate instead of looping
  uint32_t P = 1;
  while (P < X)
    P <<= 1;
  return P;
}

/// Fibonacci multiply hash.
inline uint32_t hashKey(int32_t K) {
  return static_cast<uint32_t>(K) * 2654435761u;
}

inline IVec hashVec(IVec K) {
  return K * IVec::broadcast(static_cast<int32_t>(2654435761u));
}

//===----------------------------------------------------------------------===//
// Linear-probing table
//===----------------------------------------------------------------------===//

struct LinearTable {
  uint32_t Capacity;
  uint32_t SlotMask;
  int Shift; ///< 32 - log2(Capacity), for the multiply-shift hash
  AlignedVector<int32_t> Key;
  AlignedVector<float> Cnt, Sum, Sq;

  explicit LinearTable(int64_t Cardinality) {
    // Load factor <= 1/4 so probe chains stay short even at the sweep's
    // largest cardinality.
    Capacity = nextPow2(std::max<int64_t>(4 * Cardinality, 1024));
    SlotMask = Capacity - 1;
    Shift = 32 - std::countr_zero(Capacity);
    Key.assign(Capacity, kEmptyKey);
    Cnt.assign(Capacity, 0.0f);
    Sum.assign(Capacity, 0.0f);
    Sq.assign(Capacity, 0.0f);
  }

  uint32_t slotOf(int32_t K) const { return hashKey(K) >> Shift; }

  void updateSerial(int32_t K, float V) {
    assert(K >= 0 && "keys must be non-negative");
    uint32_t H = slotOf(K);
    while (Key[H] != K && Key[H] != kEmptyKey)
      H = (H + 1) & SlotMask;
    Key[H] = K;
    Cnt[H] += 1.0f;
    Sum[H] += V;
    Sq[H] += V * V;
  }

  void collect(std::vector<GroupAgg> &Out) const {
    for (uint32_t S = 0; S < Capacity; ++S)
      if (Key[S] != kEmptyKey)
        Out.push_back({Key[S], Cnt[S], Sum[S], Sq[S]});
  }
};

/// Vector hash matching LinearTable::slotOf.
inline IVec slotVec(const LinearTable &T, IVec K) {
  return hashVec(K).shrl(T.Shift);
}

//===----------------------------------------------------------------------===//
// Bucketized table (16 slots per bucket, slot = SIMD lane)
//===----------------------------------------------------------------------===//

struct BucketTable {
  uint32_t NumBuckets;
  uint32_t BucketMask;
  int Shift;
  AlignedVector<int32_t> Key;
  AlignedVector<float> Cnt, Sum, Sq;

  explicit BucketTable(int64_t Cardinality) {
    // Slot l of every bucket belongs to SIMD lane l, and any key can show
    // up in any lane, so each lane's private sub-table (one slot per
    // bucket) must itself hold the full cardinality: NumBuckets >= 2*C
    // keeps every lane's load factor at most 1/2.  The table is therefore
    // much larger than the linear one for the same cardinality, yet its
    // *hashing range* (bucket count) stays small -- exactly the probing
    // disadvantage at high cardinality that §4.4 describes.
    NumBuckets = nextPow2(std::max<int64_t>(2 * Cardinality, 128));
    BucketMask = NumBuckets - 1;
    Shift = 32 - std::countr_zero(NumBuckets);
    const std::size_t Slots = static_cast<std::size_t>(NumBuckets) * kLanes;
    Key.assign(Slots, kEmptyKey);
    Cnt.assign(Slots, 0.0f);
    Sum.assign(Slots, 0.0f);
    Sq.assign(Slots, 0.0f);
  }

  void collect(std::vector<GroupAgg> &Out) const {
    // Per-lane partial aggregates of one key merge here.
    std::unordered_map<int32_t, GroupAgg> Merge;
    for (std::size_t S = 0; S < Key.size(); ++S) {
      if (Key[S] == kEmptyKey)
        continue;
      GroupAgg &G = Merge[Key[S]];
      G.Key = Key[S];
      G.Cnt += Cnt[S];
      G.Sum += Sum[S];
      G.SumSq += Sq[S];
    }
    for (const auto &[K, G] : Merge)
      Out.push_back(G);
  }
};

/// Bucket id vector matching the multiply-shift hash.
inline IVec bucketVec(const BucketTable &T, IVec K) {
  return hashVec(K).shrl(T.Shift);
}

//===----------------------------------------------------------------------===//
// Build kernels
//===----------------------------------------------------------------------===//

void buildLinearSerial(LinearTable &T, const int32_t *Keys,
                       const float *Vals, int64_t N) {
  for (int64_t I = 0; I < N; ++I)
    T.updateSerial(Keys[I], Vals[I]);
}

/// Accumulates the three aggregate payloads at pairwise-distinct slots.
void accumulateAggregates(Mask16 M, IVec Slot, FVec C1, FVec S, FVec Q,
                          LinearTable &T) {
  core::accumulateScatter<simd::OpAdd>(M, Slot, C1, T.Cnt.data());
  core::accumulateScatter<simd::OpAdd>(M, Slot, S, T.Sum.data());
  core::accumulateScatter<simd::OpAdd>(M, Slot, Q, T.Sq.data());
}

void buildLinearMask(LinearTable &T, const int32_t *Keys, const float *Vals,
                     int64_t N, SimdUtilCounter &Util) {
  if (N <= 0)
    return;
  IVec Pos = IVec::iota();
  int64_t Next = kLanes;
  const IVec Limit = IVec::broadcast(static_cast<int32_t>(N));
  Mask16 Active = Pos.lt(Limit);

  IVec K = IVec::maskGather(IVec::zero(), Active, Keys, Pos);
  FVec V = FVec::maskGather(FVec::zero(), Active, Vals, Pos);
  IVec H = slotVec(T, K);

  const IVec One = IVec::broadcast(1);
  const IVec SlotMaskV = IVec::broadcast(static_cast<int32_t>(T.SlotMask));

  while (Active) {
    const IVec TK = IVec::maskGather(IVec::broadcast(kNeverKey), Active,
                                     T.Key.data(), H);
    const Mask16 MatchM = TK.maskEq(Active, K);
    const Mask16 EmptyM = TK.maskEq(Active, IVec::broadcast(kEmptyKey));
    // Claim empty slots; the conflict-free subset prevents two lanes from
    // claiming the same slot in one pass (this is the gather-after-
    // scatter problem the vpconflict instruction solves directly).
    const Mask16 InsM = simd::conflictFreeSubset(EmptyM, H);
    K.maskScatter(InsM, T.Key.data(), H);
    // Lanes whose slot now holds their key; identical keys in multiple
    // lanes would all match the same slot, so conflict-mask them again.
    const Mask16 UpdM = static_cast<Mask16>(MatchM | InsM);
    const Mask16 SafeM = simd::conflictFreeSubset(UpdM, H);
    accumulateAggregates(SafeM, H, FVec::broadcast(1.0f), V, V * V, T);
    Util.recordPass(simd::popcount(SafeM), simd::popcount(Active));

    // Occupied-by-another-key lanes move to the next probe slot.
    const Mask16 MismatchM =
        static_cast<Mask16>(Active & ~MatchM & ~EmptyM);
    H = IVec::blend(MismatchM, H, (H + One) & SlotMaskV);

    // Refill the committed lanes with fresh rows.
    if (SafeM) {
      IVec Fresh =
          IVec::broadcast(static_cast<int32_t>(Next)) + IVec::iota();
      Fresh = IVec::expand(SafeM, Fresh);
      Pos = IVec::blend(SafeM, Pos, Fresh);
      Next += simd::popcount(SafeM);
      Active = Pos.lt(Limit);
      const Mask16 Reload = static_cast<Mask16>(SafeM & Active);
      K = IVec::maskGather(K, Reload, Keys, Pos);
      V = FVec::maskGather(V, Reload, Vals, Pos);
      H = IVec::blend(Reload, H, slotVec(T, K));
    }
  }
}

/// Probes the linear table for the \p Todo lanes (which may contain up to
/// two lanes per key when Algorithm 2 split them) and accumulates their
/// payloads.  Same-key lanes matching the same slot are serialized by one
/// extra conflict-free-subset step.
void probeAndAccumulate(LinearTable &T, Mask16 Todo, IVec K, FVec C1,
                        FVec S, FVec Q) {
  const IVec One = IVec::broadcast(1);
  const IVec SlotMaskV = IVec::broadcast(static_cast<int32_t>(T.SlotMask));
  IVec H = slotVec(T, K);
  while (Todo) {
    const IVec TK = IVec::maskGather(IVec::broadcast(kNeverKey), Todo,
                                     T.Key.data(), H);
    const Mask16 MatchM = TK.maskEq(Todo, K);
    const Mask16 EmptyM = TK.maskEq(Todo, IVec::broadcast(kEmptyKey));
    // Distinct keys can still collide on a slot: guard the claims.
    const Mask16 InsM = simd::conflictFreeSubset(EmptyM, H);
    K.maskScatter(InsM, T.Key.data(), H);
    const Mask16 UpdM = static_cast<Mask16>(MatchM | InsM);
    // With Algorithm 1 all Todo keys are distinct and this is the
    // identity; with Algorithm 2's two subsets a key's pair of lanes
    // serializes over two passes.
    const Mask16 SafeM = simd::conflictFreeSubset(UpdM, H);
    accumulateAggregates(SafeM, H, C1, S, Q, T);
    Todo = static_cast<Mask16>(Todo & ~SafeM);
    const Mask16 MismatchM =
        static_cast<Mask16>(Todo & ~MatchM & ~EmptyM);
    H = IVec::blend(MismatchM, H, (H + One) & SlotMaskV);
  }
}

/// \p Base is the chunk's offset into the globally classified key stream
/// and \p Pat its pattern classification (src/pattern/), or nullptr: a
/// vector inside a ConflictFree pseudo-tile holds pairwise-distinct keys
/// by certification, so the in-register pre-reduction is skipped outright
/// (probeAndAccumulate still serializes distinct keys whose *slots*
/// collide).  Vectors never straddle pseudo-tiles: Base and the tile
/// length are both lane-aligned.
void buildLinearInvec(LinearTable &T, const int32_t *Keys, const float *Vals,
                      int64_t N, ConflictCounter &MeanD1,
                      InvecPolicy Policy, int64_t Base = 0,
                      const pattern::PatternResult *Pat = nullptr) {
  // §3.4 sampling window for the adaptive policy.
  constexpr int kWindow = 64;
  bool UseAlg2 = Policy == InvecPolicy::Alg2;
  int Sampled = 0;

  for (int64_t I = 0; I < N; I += kLanes) {
    const int64_t Left = N - I;
    const Mask16 Active =
        Left >= kLanes ? kAllLanes
                       : static_cast<Mask16>((1u << Left) - 1u);
    const IVec K = IVec::maskLoad(IVec::broadcast(kNeverKey), Active,
                                  Keys + I);
    const FVec V = FVec::maskLoad(FVec::zero(), Active, Vals + I);

    // Pre-aggregate the duplicate keys of this vector in-register; only
    // lanes holding partial results touch the table at all.
    FVec C1 = FVec::broadcast(1.0f), S = V, Q = V * V;
    if (Pat && Pat->Tiles[(Base + I) / Pat->TileLen].Class ==
                   pattern::TileClass::ConflictFree) {
      probeAndAccumulate(T, Active, K, C1, S, Q);
      continue;
    }
    Mask16 Todo;
    if (UseAlg2) {
      // Algorithm 2: at most one merge per third-and-later occurrence;
      // both conflict-free subsets probe (the table plays the role of
      // both reduction arrays, serialized by probeAndAccumulate).
      const core::Invec2Result R =
          core::invecReduce2<simd::OpAdd>(Active, K, C1, S, Q);
      Todo = static_cast<Mask16>(R.Ret1 | R.Ret2);
    } else {
      const core::InvecResult R =
          core::invecReduce<simd::OpAdd>(Active, K, C1, S, Q);
      MeanD1.add(R.Distinct);
      Todo = R.Ret;
      if (Policy == InvecPolicy::Adaptive && Sampled < kWindow &&
          ++Sampled == kWindow) {
        UseAlg2 = core::preferAlg2(MeanD1.mean());
        obs::recordAdaptiveDecision(UseAlg2, MeanD1.mean());
      }
    }
    probeAndAccumulate(T, Todo, K, C1, S, Q);
  }
}

template <bool PreReduce>
void buildBucket(BucketTable &T, const int32_t *Keys, const float *Vals,
                 int64_t N, SimdUtilCounter &Util, ConflictCounter &MeanD1) {
  const IVec One = IVec::broadcast(1);
  const IVec BMaskV = IVec::broadcast(static_cast<int32_t>(T.BucketMask));
  const IVec LaneIota = IVec::iota();

  for (int64_t I = 0; I < N; I += kLanes) {
    const int64_t Left = N - I;
    const Mask16 Active =
        Left >= kLanes ? kAllLanes
                       : static_cast<Mask16>((1u << Left) - 1u);
    const IVec K = IVec::maskLoad(IVec::broadcast(kNeverKey), Active,
                                  Keys + I);
    const FVec V = FVec::maskLoad(FVec::zero(), Active, Vals + I);

    FVec C1 = FVec::broadcast(1.0f), S = V, Q = V * V;
    Mask16 Todo = Active;
    if constexpr (PreReduce) {
      const core::InvecResult R =
          core::invecReduce<simd::OpAdd>(Active, K, C1, S, Q);
      MeanD1.add(R.Distinct);
      Todo = R.Ret;
    }

    IVec Hb = bucketVec(T, K);
    [[maybe_unused]] uint32_t Probes = 0;
    while (Todo) {
      assert(++Probes <= T.NumBuckets &&
             "bucket table over capacity: a lane wrapped its sub-table");
      // Lane l owns slot l of its bucket, so the kLanes slot addresses
      // are distinct by construction -- no conflict handling is needed;
      // this is the table's whole point.  Buckets hold kLanes slots, so
      // the bucket base is Hb * kLanes.
      const IVec Slot = Hb.shl(kLanesLog2) + LaneIota;
      const IVec TK = IVec::maskGather(IVec::broadcast(kNeverKey), Todo,
                                       T.Key.data(), Slot);
      const Mask16 MatchM = TK.maskEq(Todo, K);
      const Mask16 EmptyM = TK.maskEq(Todo, IVec::broadcast(kEmptyKey));
      K.maskScatter(EmptyM, T.Key.data(), Slot);
      const Mask16 UpdM = static_cast<Mask16>(MatchM | EmptyM);
      core::accumulateScatter<simd::OpAdd>(UpdM, Slot, C1, T.Cnt.data());
      core::accumulateScatter<simd::OpAdd>(UpdM, Slot, S, T.Sum.data());
      core::accumulateScatter<simd::OpAdd>(UpdM, Slot, Q, T.Sq.data());
      Util.recordPass(simd::popcount(UpdM), kLanes);
      Todo = static_cast<Mask16>(Todo & ~UpdM);
      // The rest hit a slot owned by a different key: next bucket.
      Hb = IVec::blend(Todo, Hb, (Hb + One) & BMaskV);
    }
  }
}

} // namespace

namespace {

/// Builds one table over one row chunk with this variant's kernel.
template <typename Table>
void buildChunk(Table &T, const int32_t *Keys, const float *Vals, int64_t Lo,
                int64_t Hi, AggVersion V, InvecPolicy Policy,
                SimdUtilCounter &Util, ConflictCounter &MeanD1,
                const pattern::PatternResult *Pat = nullptr) {
  switch (V) {
  case AggVersion::LinearSerial:
    if constexpr (std::is_same_v<Table, LinearTable>)
      buildLinearSerial(T, Keys + Lo, Vals + Lo, Hi - Lo);
    break;
  case AggVersion::LinearMask:
    if constexpr (std::is_same_v<Table, LinearTable>)
      buildLinearMask(T, Keys + Lo, Vals + Lo, Hi - Lo, Util);
    break;
  case AggVersion::LinearInvec:
    if constexpr (std::is_same_v<Table, LinearTable>)
      buildLinearInvec(T, Keys + Lo, Vals + Lo, Hi - Lo, MeanD1, Policy,
                       Lo, Pat);
    break;
  case AggVersion::BucketMask:
    if constexpr (std::is_same_v<Table, BucketTable>)
      buildBucket<false>(T, Keys + Lo, Vals + Lo, Hi - Lo, Util, MeanD1);
    break;
  case AggVersion::BucketInvec:
    if constexpr (std::is_same_v<Table, BucketTable>)
      buildBucket<true>(T, Keys + Lo, Vals + Lo, Hi - Lo, Util, MeanD1);
    break;
  }
}

/// Multi-core path: hash tables do not privatize by index range, so each
/// worker builds a full table replica over its row chunk and the per-key
/// partial aggregates are merged in thread-id order afterwards (sum of
/// sums; the groupwise aggregates are associative).  The merge is part of
/// the timed region -- it is the price of cross-core conflict freedom.
template <typename Table>
void runParallel(AggResult &R, const int32_t *Keys, const float *Vals,
                 int64_t N, int64_t Cardinality, AggVersion V,
                 InvecPolicy Policy, int NumThreads,
                 std::vector<SimdUtilCounter> &Utils,
                 std::vector<ConflictCounter> &D1s,
                 const pattern::PatternResult *Pat) {
  const std::vector<int64_t> Bounds =
      core::chunkBounds(N, NumThreads, kLanes);
  std::vector<Table> Tables;
  Tables.reserve(NumThreads);
  for (int T = 0; T < NumThreads; ++T)
    Tables.emplace_back(Cardinality);

  WallTimer W;
  core::ParallelEngine::instance().run(NumThreads, [&](int Tid) {
    buildChunk(Tables[Tid], Keys, Vals, Bounds[Tid], Bounds[Tid + 1], V,
               Policy, Utils[Tid], D1s[Tid], Pat);
  });
  std::map<int32_t, GroupAgg> Merge;
  std::vector<GroupAgg> Part;
  for (int T = 0; T < NumThreads; ++T) {
    Part.clear();
    Tables[T].collect(Part);
    for (const GroupAgg &G : Part) {
      GroupAgg &A = Merge[G.Key];
      A.Key = G.Key;
      A.Cnt += G.Cnt;
      A.Sum += G.Sum;
      A.SumSq += G.SumSq;
    }
  }
  R.Seconds = W.seconds();
  R.Groups.reserve(Merge.size());
  for (const auto &[K, G] : Merge)
    R.Groups.push_back(G);
}

AggResult runAggregationImpl(const int32_t *Keys, const float *Vals,
                             int64_t N, int64_t Cardinality, AggVersion V,
                             const core::RunOptions &O) {
  AggResult R;
  const InvecPolicy Policy = O.Policy;
  const int NumThreads = core::resolveThreads(O.Threads);
  std::vector<SimdUtilCounter> Utils(NumThreads);
  std::vector<ConflictCounter> D1s(NumThreads);
  SimdUtilCounter &Util = Utils[0];
  ConflictCounter &MeanD1 = D1s[0];

  const bool Linear = V == AggVersion::LinearSerial ||
                      V == AggVersion::LinearMask ||
                      V == AggVersion::LinearInvec;

  // Pattern classification of the key stream (src/pattern/): under mode
  // On, the invec build skips the in-register pre-reduction inside
  // certified ConflictFree pseudo-tiles.  Classification runs outside
  // the timed build (it is inspector work, amortized like tiling).
  const pattern::Mode PMode = pattern::resolveMode(O.Pattern);
  std::unique_ptr<pattern::PatternResult> PatOwner;
  if (V == AggVersion::LinearInvec && PMode != pattern::Mode::Off && N > 0)
    PatOwner = std::make_unique<pattern::PatternResult>(
        pattern::classifyStream(Keys, N));
  const pattern::PatternResult *Pat =
      PMode == pattern::Mode::On ? PatOwner.get() : nullptr;

  if (NumThreads > 1) {
    if (Linear)
      runParallel<LinearTable>(R, Keys, Vals, N, Cardinality, V, Policy,
                               NumThreads, Utils, D1s, Pat);
    else
      runParallel<BucketTable>(R, Keys, Vals, N, Cardinality, V, Policy,
                               NumThreads, Utils, D1s, Pat);
  } else if (Linear) {
    LinearTable T(Cardinality);
    WallTimer W;
    switch (V) {
    case AggVersion::LinearSerial:
      buildLinearSerial(T, Keys, Vals, N);
      break;
    case AggVersion::LinearMask:
      buildLinearMask(T, Keys, Vals, N, Util);
      break;
    case AggVersion::LinearInvec:
      buildLinearInvec(T, Keys, Vals, N, MeanD1, Policy, 0, Pat);
      break;
    default:
      break;
    }
    R.Seconds = W.seconds();
    T.collect(R.Groups);
  } else {
    BucketTable T(Cardinality);
    WallTimer W;
    if (V == AggVersion::BucketMask)
      buildBucket<false>(T, Keys, Vals, N, Util, MeanD1);
    else
      buildBucket<true>(T, Keys, Vals, N, Util, MeanD1);
    R.Seconds = W.seconds();
    T.collect(R.Groups);
  }

  for (std::size_t T = 1; T < Utils.size(); ++T) {
    Util.merge(Utils[T]);
    MeanD1.merge(D1s[T]);
  }
  std::sort(R.Groups.begin(), R.Groups.end(),
            [](const GroupAgg &A, const GroupAgg &Bx) {
              return A.Key < Bx.Key;
            });
  R.MRowsPerSec = R.Seconds > 0.0
                      ? static_cast<double>(N) / R.Seconds / 1e6
                      : 0.0;
  R.SimdUtil = Util.utilization();
  R.UtilHist = Util.laneHistogram();
  R.MeanD1 = MeanD1.count() ? MeanD1.mean() : 0.0;
  R.D1Hist = MeanD1.histogram();
  if (PatOwner)
    for (int C = 0; C < pattern::kNumTileClasses; ++C)
      R.PatternTiles[C] = PatOwner->Counts[C];
  return R;
}

} // namespace

// Compiled once per backend variant; the public apps::runAggregation and
// apps::runAggregationWithPolicy forward here through core::dispatch().
AggResult apps::CFV_VARIANT_NS::runAggregation(const int32_t *Keys,
                                               const float *Vals, int64_t N,
                                               int64_t Cardinality,
                                               AggVersion V,
                                               const core::RunOptions &O) {
  return runAggregationImpl(Keys, Vals, N, Cardinality, V, O);
}
